"""Quickstart: simulate SPES on a synthetic Azure-like workload.

Generates a small 14-day workload, trains SPES on the first 12 days,
simulates the final 2 days, and prints the headline metrics next to the
fixed 10-minute keep-alive baseline.

Run from a clean checkout (no install needed)::

    PYTHONPATH=src python examples/quickstart.py

or, after an editable install (``pip install -e .``), simply::

    python examples/quickstart.py
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # clean checkout: put <repo>/src on the path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import ExperimentConfig, ExperimentRunner, PolicySpec


def main() -> None:
    # 1. Configure a workload: 120 functions, 14 days of per-minute
    #    invocations, split into the paper's 12-day training / 2-day
    #    simulation windows.  The runner generates and splits it lazily.
    config = ExperimentConfig(n_functions=120, seed=7)
    runner = ExperimentRunner(config)
    trace = runner.trace
    print(f"workload: {len(trace)} functions, {trace.duration_days:.0f} days, "
          f"{trace.total_invocations():,} invocations")

    # 2. Simulate SPES and the fixed keep-alive baseline.  run_specs() takes
    #    picklable policy descriptions, memoizes each result, and — with
    #    ExperimentRunner(config, workers=N) — fans out across processes.
    results = runner.run_specs({
        "spes": PolicySpec.of("spes", config=config.spes_config),
        "fixed-10min": PolicySpec.of("fixed-keepalive", keep_alive_minutes=10),
    })

    # 3. Compare the headline metrics.
    print(f"\n{'metric':<32}{'SPES':>12}{'fixed-10min':>14}")
    rows = [
        ("75th-percentile cold-start rate", "q3_csr"),
        ("functions with no cold start", "never_cold_fraction"),
        ("always-cold functions", "always_cold_fraction"),
        ("wasted memory time (min)", "wasted_memory_time"),
        ("average memory (instances)", "avg_memory"),
        ("effective memory consumption", "emcr"),
    ]
    spes_summary = results["spes"].summary()
    fixed_summary = results["fixed-10min"].summary()
    for label, key in rows:
        print(f"{label:<32}{spes_summary[key]:>12.3f}{fixed_summary[key]:>14.3f}")


if __name__ == "__main__":
    main()
