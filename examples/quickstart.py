"""Quickstart: simulate SPES on a synthetic Azure-like workload.

Generates a small 14-day workload, trains SPES on the first 12 days,
simulates the final 2 days, and prints the headline metrics next to the
fixed 10-minute keep-alive baseline.

Run with:  python examples/quickstart.py
"""

from repro import AzureTraceGenerator, GeneratorProfile, SpesPolicy, simulate_policy, split_trace
from repro.baselines import FixedKeepAlivePolicy


def main() -> None:
    # 1. Build a workload: 120 functions, 14 days of per-minute invocations.
    profile = GeneratorProfile(n_functions=120, seed=7)
    trace = AzureTraceGenerator(profile).generate()
    print(f"workload: {len(trace)} functions, {trace.duration_days:.0f} days, "
          f"{trace.total_invocations():,} invocations")

    # 2. Split into the paper's 12-day training / 2-day simulation windows.
    split = split_trace(trace, training_days=12.0)

    # 3. Simulate SPES and the fixed keep-alive baseline.
    spes_result = simulate_policy(SpesPolicy(), split.simulation, split.training)
    fixed_result = simulate_policy(
        FixedKeepAlivePolicy(keep_alive_minutes=10), split.simulation, split.training
    )

    # 4. Compare the headline metrics.
    print(f"\n{'metric':<32}{'SPES':>12}{'fixed-10min':>14}")
    rows = [
        ("75th-percentile cold-start rate", "q3_csr"),
        ("functions with no cold start", "never_cold_fraction"),
        ("always-cold functions", "always_cold_fraction"),
        ("wasted memory time (min)", "wasted_memory_time"),
        ("average memory (instances)", "avg_memory"),
        ("effective memory consumption", "emcr"),
    ]
    spes_summary, fixed_summary = spes_result.summary(), fixed_result.summary()
    for label, key in rows:
        print(f"{label:<32}{spes_summary[key]:>12.3f}{fixed_summary[key]:>14.3f}")


if __name__ == "__main__":
    main()
