"""Write and evaluate your own provisioning policy — both APIs.

The simulator accepts two kinds of policy:

* the **dict API** (:class:`repro.simulation.ProvisioningPolicy`): simplest
  to write — per minute you receive ``{function_id: count}`` and return the
  set of ids to keep resident.  :class:`AdaptiveGapPolicy` below keeps each
  function warm for twice its recently observed median inter-invocation gap.
* the **indexed API** (:class:`repro.simulation.VectorizedPolicy`): for hot
  policies — you receive numpy arrays of invoked *function indices* and
  answer with a boolean residency mask.  :class:`IndexedAdaptiveGapPolicy`
  is the same decision rule in array form; the engine runs it several times
  faster, and because both carry the same ``name`` their results are
  directly comparable (fingerprint-identical when the rules agree exactly).

Run with:  PYTHONPATH=src python examples/custom_policy.py
(or plain ``python`` after ``pip install -e .``)
"""

from __future__ import annotations

import statistics
import sys
from pathlib import Path
from typing import Dict, Mapping, Set

try:
    import repro  # noqa: F401
except ImportError:  # clean checkout: put <repo>/src on the path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import AzureTraceGenerator, GeneratorProfile, SpesPolicy, simulate_policy, split_trace
from repro.baselines import FixedKeepAlivePolicy
from repro.simulation import ProvisioningPolicy, VectorizedPolicy


class AdaptiveGapPolicy(ProvisioningPolicy):
    """Keep each function warm for twice its median observed inter-invocation gap.

    A tiny, self-contained example of the policy interface: it tracks the
    recent gaps of every function online and keeps instances resident for an
    adaptive window (bounded to at most ``max_keep_alive`` minutes).
    """

    name = "adaptive-gap"

    def __init__(self, default_keep_alive: int = 10, max_keep_alive: int = 120) -> None:
        self.default_keep_alive = default_keep_alive
        self.max_keep_alive = max_keep_alive
        self._last_seen: Dict[str, int] = {}
        self._gaps: Dict[str, list[int]] = {}
        self._expiry: Dict[str, int] = {}

    def on_minute(self, minute: int, invocations: Mapping[str, int]) -> Set[str]:
        for function_id in invocations:
            last = self._last_seen.get(function_id)
            if last is not None and minute - last > 0:
                self._gaps.setdefault(function_id, []).append(minute - last)
            self._last_seen[function_id] = minute
            self._expiry[function_id] = minute + self._window_for(function_id)

        expired = [fid for fid, expiry in self._expiry.items() if expiry <= minute]
        for function_id in expired:
            del self._expiry[function_id]
        return set(self._expiry)

    def _window_for(self, function_id: str) -> int:
        gaps = self._gaps.get(function_id)
        if not gaps:
            return self.default_keep_alive
        window = 2 * int(statistics.median(gaps[-20:]))
        return max(1, min(window, self.max_keep_alive))


class IndexedAdaptiveGapPolicy(VectorizedPolicy):
    """The same adaptive-gap rule on the indexed (vectorized) contract.

    State lives in per-function arrays allocated when the simulator binds the
    policy to the trace's function-index space (:meth:`on_bind`); a minute
    costs a few scatters and one vectorized comparison instead of dict/set
    churn.  The median window is approximated by an exponential moving
    average of gaps — close to, but deliberately not exactly, the dict
    policy's median-of-last-20, to show the two APIs are independent
    implementations rather than wrappers.
    """

    name = "adaptive-gap-idx"

    def __init__(self, default_keep_alive: int = 10, max_keep_alive: int = 120) -> None:
        self.default_keep_alive = default_keep_alive
        self.max_keep_alive = max_keep_alive

    def on_bind(self, index) -> None:
        n = index.n_functions
        self._last_seen = np.full(n, -(2**62), dtype=np.int64)
        self._gap_ema = np.zeros(n, dtype=np.float64)
        self._expiry = np.full(n, -(2**62), dtype=np.int64)

    def on_minute_indexed(self, minute: int, invoked: np.ndarray, counts: np.ndarray) -> np.ndarray:
        if invoked.size:
            gaps = minute - self._last_seen[invoked]
            seen_before = gaps < 2**61
            updating = invoked[seen_before & (gaps > 0)]
            if updating.size:
                gap = (minute - self._last_seen[updating]).astype(np.float64)
                ema = self._gap_ema[updating]
                self._gap_ema[updating] = np.where(ema > 0, 0.7 * ema + 0.3 * gap, gap)
            self._last_seen[invoked] = minute
            window = np.where(
                self._gap_ema[invoked] > 0,
                np.clip(2.0 * self._gap_ema[invoked], 1, self.max_keep_alive),
                float(self.default_keep_alive),
            ).astype(np.int64)
            self._expiry[invoked] = minute + window
        return self._expiry > minute


def main() -> None:
    trace = AzureTraceGenerator(GeneratorProfile(n_functions=150, seed=11)).generate()
    split = split_trace(trace, training_days=12.0)

    policies = [
        SpesPolicy(),
        AdaptiveGapPolicy(),
        IndexedAdaptiveGapPolicy(),
        FixedKeepAlivePolicy(10),
    ]
    print(f"{'policy':<16}{'q3_csr':>10}{'wmt':>12}{'avg_mem':>10}{'emcr':>8}")
    for policy in policies:
        result = simulate_policy(policy, split.simulation, split.training)
        summary = result.summary()
        print(
            f"{summary['policy']:<16}{summary['q3_csr']:>10.3f}"
            f"{summary['wasted_memory_time']:>12.0f}{summary['avg_memory']:>10.1f}"
            f"{summary['emcr']:>8.3f}"
        )


if __name__ == "__main__":
    main()
