"""Write and evaluate your own provisioning policy.

The simulator accepts any object implementing
:class:`repro.simulation.ProvisioningPolicy`.  This example implements a
small custom policy -- "keep a function warm for twice its recently observed
median gap" -- and benchmarks it against SPES and the fixed keep-alive
baseline on the same workload.

Run with:  PYTHONPATH=src python examples/custom_policy.py
(or plain ``python`` after ``pip install -e .``)
"""

from __future__ import annotations

import statistics
import sys
from pathlib import Path
from typing import Dict, Mapping, Set

try:
    import repro  # noqa: F401
except ImportError:  # clean checkout: put <repo>/src on the path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AzureTraceGenerator, GeneratorProfile, SpesPolicy, simulate_policy, split_trace
from repro.baselines import FixedKeepAlivePolicy
from repro.simulation import ProvisioningPolicy


class AdaptiveGapPolicy(ProvisioningPolicy):
    """Keep each function warm for twice its median observed inter-invocation gap.

    A tiny, self-contained example of the policy interface: it tracks the
    recent gaps of every function online and keeps instances resident for an
    adaptive window (bounded to at most ``max_keep_alive`` minutes).
    """

    name = "adaptive-gap"

    def __init__(self, default_keep_alive: int = 10, max_keep_alive: int = 120) -> None:
        self.default_keep_alive = default_keep_alive
        self.max_keep_alive = max_keep_alive
        self._last_seen: Dict[str, int] = {}
        self._gaps: Dict[str, list[int]] = {}
        self._expiry: Dict[str, int] = {}

    def on_minute(self, minute: int, invocations: Mapping[str, int]) -> Set[str]:
        for function_id in invocations:
            last = self._last_seen.get(function_id)
            if last is not None and minute - last > 0:
                self._gaps.setdefault(function_id, []).append(minute - last)
            self._last_seen[function_id] = minute
            self._expiry[function_id] = minute + self._window_for(function_id)

        expired = [fid for fid, expiry in self._expiry.items() if expiry <= minute]
        for function_id in expired:
            del self._expiry[function_id]
        return set(self._expiry)

    def _window_for(self, function_id: str) -> int:
        gaps = self._gaps.get(function_id)
        if not gaps:
            return self.default_keep_alive
        window = 2 * int(statistics.median(gaps[-20:]))
        return max(1, min(window, self.max_keep_alive))


def main() -> None:
    trace = AzureTraceGenerator(GeneratorProfile(n_functions=150, seed=11)).generate()
    split = split_trace(trace, training_days=12.0)

    policies = [SpesPolicy(), AdaptiveGapPolicy(), FixedKeepAlivePolicy(10)]
    print(f"{'policy':<16}{'q3_csr':>10}{'wmt':>12}{'avg_mem':>10}{'emcr':>8}")
    for policy in policies:
        result = simulate_policy(policy, split.simulation, split.training)
        summary = result.summary()
        print(
            f"{summary['policy']:<16}{summary['q3_csr']:>10.3f}"
            f"{summary['wasted_memory_time']:>12.0f}{summary['avg_memory']:>10.1f}"
            f"{summary['emcr']:>8.3f}"
        )


if __name__ == "__main__":
    main()
