"""Reproduce the paper's Section III workload analysis on a synthetic trace.

Prints the invocation-count distribution (Fig. 3), trigger proportions
(Fig. 5), the trigger-conditioned pattern tests (Sec. III-B1), the
co-occurrence study (Sec. III-B2), temporal locality (Fig. 6) and concept
drift (Fig. 4), then shows how SPES's offline categorizer labels the same
population.

The same analyses run on the real Azure Functions 2019 dataset via the
``azure2019`` scenario (``spes-repro azure fetch``, then ``sweep
--azure-dir``); that path also joins the dataset's app-memory files into
per-function measured footprints, so simulations can account memory in
megabytes (``--memory-mode mb``) instead of abstract instance units.

Run with:  PYTHONPATH=src python examples/workload_analysis.py
(or plain ``python`` after ``pip install -e .``)
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # clean checkout: put <repo>/src on the path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AzureTraceGenerator, GeneratorProfile, split_trace
from repro.analysis import (
    cooccurrence_study,
    drift_study,
    http_poisson_test,
    invocation_count_summary,
    temporal_locality_study,
    timer_periodicity_test,
    trigger_proportions,
)
from repro.core import OfflineCategorizer


def main() -> None:
    trace = AzureTraceGenerator(GeneratorProfile(n_functions=200, seed=3)).generate()

    print("== Invocation-count distribution (Fig. 3) ==")
    for key, value in invocation_count_summary(trace).items():
        print(f"  {key:<20}{value:>12.2f}")

    print("\n== Trigger proportions (Fig. 5) ==")
    for trigger, share in sorted(trigger_proportions(trace).items(), key=lambda kv: -kv[1]):
        print(f"  {trigger:<16}{100 * share:>7.2f}%")

    print("\n== Pattern tests (Sec. III-B1) ==")
    timer = timer_periodicity_test(trace)
    http = http_poisson_test(trace)
    print(f"  timer functions (quasi-)periodic: {100 * timer.matching_fraction:.1f}%")
    print(f"  HTTP functions Poisson:           {100 * http.matching_fraction:.1f}%")

    print("\n== Co-occurrence study (Sec. III-B2) ==")
    cor = cooccurrence_study(trace, seed=1)
    print(f"  candidate COR:        {cor.candidate_cor:.4f}")
    print(f"  negative-sample COR:  {cor.negative_cor:.4f}")
    print(f"  ratio:                {cor.candidate_to_negative_ratio:.1f}x")

    print("\n== Temporal locality (Fig. 6) ==")
    locality = temporal_locality_study(trace)
    print(f"  infrequent functions analysed: {locality.functions_considered}")
    print(f"  bursty fraction:               {100 * locality.bursty_fraction:.1f}%")

    print("\n== Concept drift (Fig. 4) ==")
    drift = drift_study(trace)
    print(f"  active functions analysed: {drift.functions_considered}")
    print(f"  drifting fraction:         {100 * drift.drifting_fraction:.1f}%")

    print("\n== SPES offline categorization of the 12-day training window ==")
    split = split_trace(trace, training_days=12.0)
    result = OfflineCategorizer().categorize(split.training)
    total = len(result.profiles)
    for category, count in result.category_counts().most_common():
        print(f"  {category.value:<16}{count:>5}  ({100 * count / total:.1f}%)")


if __name__ == "__main__":
    main()
