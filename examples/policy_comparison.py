"""Compare SPES against every baseline of the paper on one or more workloads.

This is the programmatic equivalent of ``spes-repro sweep``: it builds one
Azure-like workload per seed, runs SPES plus the five baselines (fixed
keep-alive, Hybrid-Function, Hybrid-Application, Defuse, FaaSCache) through
the parallel experiment suite, and prints the RQ1 / RQ2 tables (Q3-CSR
reduction, normalized memory, WMT, EMCR and overhead).

Run from a clean checkout (no install needed)::

    PYTHONPATH=src python examples/policy_comparison.py [n_functions] [seed] [workers]

or, after an editable install (``pip install -e .``), simply::

    python examples/policy_comparison.py 200 2024 4
"""

import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # clean checkout: put <repo>/src on the path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import ExperimentConfig, ExperimentSuite, rq1_coldstart, rq2_memory
from repro.metrics import build_comparison


def main() -> None:
    n_functions = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2024
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else 0

    config = ExperimentConfig(n_functions=n_functions, seed=seed)
    suite = ExperimentSuite(config, seeds=[seed], workers=workers)
    mode = f"{workers} workers" if workers > 1 else "serially"
    print(f"simulating {n_functions} functions over "
          f"{config.duration_days - config.training_days:.0f} days "
          f"(training on {config.training_days:.0f} days, {mode})...")

    outcome = suite.run()
    results = outcome.results[seed]
    print(f"done in {outcome.wall_seconds:.1f}s")

    print()
    print(build_comparison(results, title="SPES vs. baselines").render())
    for table in rq1_coldstart.report(results):
        print()
        print(table.render())
    for table in rq2_memory.report(results):
        print()
        print(table.render(float_format="{:.6f}"))


if __name__ == "__main__":
    main()
