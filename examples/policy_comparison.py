"""Compare SPES against every baseline of the paper on one workload.

This is the programmatic equivalent of ``spes-repro compare``: it builds an
Azure-like workload, runs SPES plus the five baselines (fixed keep-alive,
Hybrid-Function, Hybrid-Application, Defuse, FaaSCache), and prints the RQ1 /
RQ2 tables (Q3-CSR reduction, normalized memory, WMT, EMCR and overhead).

Run with:  python examples/policy_comparison.py [n_functions] [seed]
"""

import sys

from repro.experiments import ExperimentConfig, ExperimentRunner, rq1_coldstart, rq2_memory
from repro.metrics import build_comparison


def main() -> None:
    n_functions = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2024

    config = ExperimentConfig(n_functions=n_functions, seed=seed)
    runner = ExperimentRunner(config)
    print(f"simulating {n_functions} functions over "
          f"{config.duration_days - config.training_days:.0f} days "
          f"(training on {config.training_days:.0f} days)...")

    results = runner.run_all()

    print()
    print(build_comparison(results, title="SPES vs. baselines").render())
    print()
    print(rq1_coldstart.headline_improvements(results).render())
    print()
    print(rq1_coldstart.memory_and_always_cold(results).render())
    print()
    print(rq2_memory.wmt_and_emcr_table(results).render())
    print()
    print(rq1_coldstart.per_category_csr_table(runner.spes_policy(), results["spes"]).render())


if __name__ == "__main__":
    main()
