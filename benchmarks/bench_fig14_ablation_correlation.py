"""Fig. 14 / RQ4 -- impact of the inter-function correlation designs.

The paper removes (a) the offline "correlated" category and (b) the online
correlation of unseen functions, and shows both raise the Q3-CSR, with the
offline design contributing more because it affects more functions.
"""

from repro.experiments.rq4_ablation import ablation_table, correlation_ablation

from .conftest import save_and_print


def test_fig14_correlation_ablation(benchmark, runner, output_dir):
    results = benchmark.pedantic(correlation_ablation, args=(runner,), rounds=1, iterations=1)
    table = ablation_table(results, "Fig. 14 - correlation ablation")
    save_and_print(output_dir, "fig14_ablation_correlation", table.render())

    full = results["spes"]
    without_corr = results["w/o-corr"]
    without_online = results["w/o-online-corr"]
    # Removing the correlation designs must not improve cold starts.
    assert full.q3_cold_start_rate <= without_corr.q3_cold_start_rate + 0.05
    assert full.q3_cold_start_rate <= without_online.q3_cold_start_rate + 0.05
    # Removing them must not increase always-cold coverage either.
    assert full.always_cold_fraction <= without_corr.always_cold_fraction + 0.05
