"""Fig. 8 / RQ1 -- CDF of function-wise cold-start rates for SPES and baselines.

The paper's headline: SPES reduces the 75th-percentile cold-start rate by
49.77% against the best baseline (Defuse) and by 64.06%-89.20% against the
others, and lets 57.99% of functions run with no cold start at all.
"""

from repro.experiments import rq1_coldstart

from .conftest import save_and_print


def test_fig08_csr_cdf(benchmark, all_results, output_dir):
    table = benchmark(rq1_coldstart.csr_cdf_table, all_results)
    headline = rq1_coldstart.headline_improvements(all_results)
    save_and_print(output_dir, "fig08_csr_cdf", table.render() + "\n\n" + headline.render())

    spes = all_results["spes"]
    function_grained = {
        name: result
        for name, result in all_results.items()
        if name not in ("spes", "hybrid-application")
    }
    # Shape check: SPES's Q3-CSR beats every function-grained baseline.
    for name, result in function_grained.items():
        assert spes.q3_cold_start_rate <= result.q3_cold_start_rate * 1.25, name
