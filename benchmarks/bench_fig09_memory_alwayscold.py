"""Fig. 9 / RQ1 -- normalized memory usage and always-cold function percentage.

The paper reports SPES's memory usage is only 8.08% above the fixed
keep-alive policy (the most frugal baseline) while 36-56% below the others,
and that SPES keeps the always-cold population below 8%, with
Hybrid-Application the closest baseline.
"""

from repro.experiments import rq1_coldstart

from .conftest import save_and_print


def test_fig09_memory_and_always_cold(benchmark, all_results, output_dir):
    table = benchmark(rq1_coldstart.memory_and_always_cold, all_results)
    save_and_print(output_dir, "fig09_memory_alwayscold", table.render())

    spes = all_results["spes"]
    fixed = all_results["fixed-10min"]
    hybrid_app = all_results["hybrid-application"]
    # Memory shape: SPES stays close to the fixed keep-alive policy and far
    # below the application-grained hybrid.
    assert spes.average_memory_usage <= fixed.average_memory_usage * 1.25
    assert hybrid_app.average_memory_usage > spes.average_memory_usage * 1.2
    # Always-cold shape: SPES is (close to) the lowest.
    assert spes.always_cold_fraction <= fixed.always_cold_fraction
