"""Engine throughput: simulated-minutes/second, before vs. after vectorization.

The "before" is the ``reference`` engine — the original pure-Python
minute loop over sets and dicts, which also re-scans the trace on every run.
The "after" is the default ``vectorized`` engine, which runs residency and
memory accounting on numpy masks over the trace's cached invocation index.

Throughput is measured on the paper's default workload shape (400 functions,
14 days, 2-day simulation window) with engine-bound policies, so the numbers
isolate the engine's accounting cost rather than any policy's decision cost.
A ≥3x speedup is asserted for the policy sweep scenario (several policies
over one shared window — the shape the parallel experiment runner fans out).

Also reported: wall-clock of a small policy suite executed serially vs.
through the ``ParallelRunner`` process pool (informative only — the ratio
depends on the machine's core count).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.experiments import ExperimentConfig, ExperimentSuite
from repro.simulation import AlwaysWarmPolicy, NoKeepAlivePolicy, Simulator
from repro.baselines import (
    FixedKeepAlivePolicy,
    HybridFunctionPolicy,
    IndexedFixedKeepAlivePolicy,
    IndexedHybridFunctionPolicy,
)

from .conftest import save_and_print

#: The default workload of the paper's evaluation (ISSUE/acceptance shape).
THROUGHPUT_CONFIG = ExperimentConfig(
    n_functions=400,
    seed=2024,
    duration_days=14.0,
    training_days=12.0,
    warmup_minutes=0,
)

#: Engine-bound policies: near-zero decision cost, so the measured time is
#: dominated by the engine's own accounting work.
ENGINE_BOUND_POLICIES = (
    ("no-keepalive", NoKeepAlivePolicy),
    ("always-warm", AlwaysWarmPolicy),
    ("fixed-10min", lambda: FixedKeepAlivePolicy(10)),
)


@pytest.fixture(scope="module")
def throughput_split():
    from repro.experiments import ExperimentRunner

    return ExperimentRunner(THROUGHPUT_CONFIG).split


def _sweep_seconds(split, engine: str) -> float:
    """Wall-clock of one policy sweep (all engine-bound policies) per engine."""
    started = time.perf_counter()
    for _, factory in ENGINE_BOUND_POLICIES:
        simulator = Simulator(split.simulation, warmup_minutes=0, engine=engine)
        simulator.run(factory())
    return time.perf_counter() - started


def test_engine_throughput_vectorized_vs_reference(throughput_split, output_dir):
    split = throughput_split
    minutes = split.simulation.duration_minutes
    sweep_minutes = minutes * len(ENGINE_BOUND_POLICIES)

    # Warm both paths once (imports, numpy, the trace's invocation index).
    _sweep_seconds(split, "vectorized")
    _sweep_seconds(split, "reference")

    reference_seconds = min(_sweep_seconds(split, "reference") for _ in range(3))
    vectorized_seconds = min(_sweep_seconds(split, "vectorized") for _ in range(3))
    speedup = reference_seconds / vectorized_seconds

    lines = [
        "Engine throughput - 400 functions, 14-day workload, 2-day window",
        f"policies per sweep: {', '.join(name for name, _ in ENGINE_BOUND_POLICIES)}",
        f"reference engine:  {sweep_minutes / reference_seconds:>12.0f} sim-min/s"
        f"  ({reference_seconds:.3f}s per sweep)",
        f"vectorized engine: {sweep_minutes / vectorized_seconds:>12.0f} sim-min/s"
        f"  ({vectorized_seconds:.3f}s per sweep)",
        f"speedup: {speedup:.2f}x",
    ]
    save_and_print(output_dir, "engine_throughput", "\n".join(lines))
    assert speedup >= 3.0, f"vectorized engine only {speedup:.2f}x over reference"


#: (bench key, dict-API factory, index-native twin factory).  The pairs are
#: decision-identical (fingerprint-equal, see
#: tests/simulation/test_equivalence_random.py), so the ratio isolates the
#: cost of the policy-stepping contract itself.
INDEXED_POLICY_PAIRS = (
    ("fixed-10min", lambda: FixedKeepAlivePolicy(10), lambda: IndexedFixedKeepAlivePolicy(10)),
    ("hybrid-function", HybridFunctionPolicy, IndexedHybridFunctionPolicy),
)


def _end_to_end_seconds(split, factory, repeats: int) -> float:
    """Best-of-N wall-clock of one full simulation (prepare + minute loop)."""
    best = float("inf")
    for _ in range(repeats):
        simulator = Simulator(split.simulation, split.training, warmup_minutes=0)
        started = time.perf_counter()
        simulator.run(factory())
        best = min(best, time.perf_counter() - started)
    return best


def test_indexed_policy_speedup(throughput_split, output_dir):
    """Indexed policy ports vs their dict twins, end to end (PR 2 criterion).

    The acceptance bar is a >=1.5x end-to-end speedup for at least one ported
    policy on the default workload.  The measured numbers are also published
    as ``BENCH_pr2.json`` so CI can archive the perf trajectory per PR.
    """
    split = throughput_split
    minutes = split.simulation.duration_minutes

    lines = ["Indexed policy contract - 400 functions, 14-day workload, 2-day window"]
    payload = {
        "workload": {
            "n_functions": THROUGHPUT_CONFIG.n_functions,
            "duration_days": THROUGHPUT_CONFIG.duration_days,
            "simulation_minutes": minutes,
        },
        "policies": {},
    }
    speedups = {}
    for name, dict_factory, indexed_factory in INDEXED_POLICY_PAIRS:
        repeats = 3 if name == "fixed-10min" else 1  # hybrid runs are heavy
        dict_seconds = _end_to_end_seconds(split, dict_factory, repeats)
        indexed_seconds = _end_to_end_seconds(split, indexed_factory, repeats)
        speedup = dict_seconds / indexed_seconds
        speedups[name] = speedup
        payload["policies"][name] = {
            "dict_seconds": round(dict_seconds, 4),
            "indexed_seconds": round(indexed_seconds, 4),
            "speedup": round(speedup, 3),
            "indexed_sim_minutes_per_second": round(minutes / indexed_seconds, 1),
        }
        lines.append(
            f"{name:16s} dict {dict_seconds:8.3f}s   indexed {indexed_seconds:8.3f}s"
            f"   speedup {speedup:5.2f}x"
        )

    save_and_print(output_dir, "indexed_policy_speedup", "\n".join(lines))
    (output_dir / "BENCH_pr2.json").write_text(json.dumps(payload, indent=2) + "\n")
    best = max(speedups.values())
    assert best >= 1.5, f"no ported policy reached 1.5x (best {best:.2f}x): {speedups}"


def test_event_engine_throughput(throughput_split, output_dir):
    """Event engine vs the minute-granular engines (PR 3 criterion).

    The event engine layers per-event expansion and latency tracking on top
    of the vectorized minute loop, so it cannot be faster — the bench bounds
    the *cost* of the extra temporal resolution and records it, per engine,
    as the ``BENCH_pr3.json`` artifact.  Equivalence (identical deterministic
    fingerprints, latency block present only on the event run) is asserted on
    the same workload the timings come from.
    """
    split = throughput_split
    minutes = split.simulation.duration_minutes
    sweep_minutes = minutes * len(ENGINE_BOUND_POLICIES)

    engines = ("vectorized", "event", "reference")
    for engine in engines:  # warm imports, index, jitter machinery
        _sweep_seconds(split, engine)
    seconds = {
        engine: min(_sweep_seconds(split, engine) for _ in range(3))
        for engine in engines
    }

    vectorized = Simulator(split.simulation, warmup_minutes=0).run(
        FixedKeepAlivePolicy(10)
    )
    event = Simulator(split.simulation, warmup_minutes=0, engine="event").run(
        FixedKeepAlivePolicy(10)
    )
    assert vectorized.deterministic_fingerprint() == event.deterministic_fingerprint()
    assert vectorized.latency is None and event.latency is not None
    assert event.latency.cold_start_events == event.total_cold_starts

    payload = {
        "workload": {
            "n_functions": THROUGHPUT_CONFIG.n_functions,
            "duration_days": THROUGHPUT_CONFIG.duration_days,
            "simulation_minutes": minutes,
        },
        "engines": {
            engine: {
                "sweep_seconds": round(seconds[engine], 4),
                "sim_minutes_per_second": round(sweep_minutes / seconds[engine], 1),
            }
            for engine in engines
        },
        "event_overhead_vs_vectorized": round(
            seconds["event"] / seconds["vectorized"], 3
        ),
        "latency_events": {
            "total": event.latency.total_events,
            "cold_start": event.latency.cold_start_events,
            "p99_ms": round(event.latency.p99_ms, 2),
        },
    }
    lines = [
        "Engine throughput with the event layer - 400 functions, 2-day window",
    ] + [
        f"{engine:11s} {sweep_minutes / seconds[engine]:>12.0f} sim-min/s"
        f"  ({seconds[engine]:.3f}s per sweep)"
        for engine in engines
    ] + [
        f"event-layer overhead: {payload['event_overhead_vs_vectorized']:.2f}x"
        " over vectorized",
    ]
    save_and_print(output_dir, "event_engine_throughput", "\n".join(lines))
    (output_dir / "BENCH_pr3.json").write_text(json.dumps(payload, indent=2) + "\n")
    # The event layer must stay cheaper than falling back to the reference
    # loop: sub-minute resolution may not cost more than losing vectorization.
    assert seconds["event"] < seconds["reference"], payload


def test_event_cpu_engine_throughput(throughput_split, output_dir):
    """Cost of the intra-node CPU scheduling stage (PR 8 criterion).

    With ``EventConfig.cpu`` set, every minute's warm events are expanded
    into timestamped arrivals and pushed through the configured
    :class:`~repro.simulation.scheduling.InvocationScheduler` — ``srtf`` is
    measured here as the most expensive discipline (a full event-driven
    preemptive loop, no quantum batching).  The bench times one end-to-end
    ``fixed-10min`` run with a 2-core pool against the CPU-free event run,
    asserts the observer property on the bench workload itself (identical
    minute-granular fingerprints), and publishes the ``engine/event-cpu``
    row in ``BENCH_pr8.json`` for ``compare_bench.py``'s floor gate.
    """
    from repro.simulation import CpuConfig, EventConfig

    split = throughput_split
    minutes = split.simulation.duration_minutes
    cpu_events = EventConfig(
        cpu=CpuConfig(cores_per_node=2, scheduler="srtf"), slo_ms=500.0
    )

    def run_seconds(events) -> tuple[float, object]:
        best, result = float("inf"), None
        for _ in range(3):
            simulator = Simulator(
                split.simulation, warmup_minutes=0, engine="event", events=events
            )
            started = time.perf_counter()
            result = simulator.run(FixedKeepAlivePolicy(10))
            best = min(best, time.perf_counter() - started)
        return best, result

    run_seconds(None)  # warm imports, index, jitter machinery
    event_seconds, event = run_seconds(None)
    cpu_seconds, contended = run_seconds(cpu_events)

    # The CPU stage is a pure observer: minute aggregates are bit-identical.
    assert (
        contended.deterministic_fingerprint() == event.deterministic_fingerprint()
    )
    latency = contended.latency
    assert latency.cpu_scheduled_events == latency.total_events
    assert latency.slo_checked_events == latency.total_events

    payload = {
        "workload": {
            "n_functions": THROUGHPUT_CONFIG.n_functions,
            "duration_days": THROUGHPUT_CONFIG.duration_days,
            "simulation_minutes": minutes,
            "cpu": {"cores_per_node": 2, "scheduler": "srtf", "slo_ms": 500.0},
        },
        "engines": {
            "event-cpu": {
                "sweep_seconds": round(cpu_seconds, 4),
                "sim_minutes_per_second": round(minutes / cpu_seconds, 1),
            },
        },
        "cpu_overhead_vs_event": round(cpu_seconds / event_seconds, 3),
        "cpu_stats": {
            "scheduled_events": latency.cpu_scheduled_events,
            "delayed_events": latency.cpu_delayed_events,
            "slowdown_p99": round(latency.slowdown_p99, 3),
            "slo_violation_rate": round(latency.slo_violation_rate, 5),
        },
    }
    lines = [
        "Intra-node CPU stage - 400 functions, 2-day window, 2 cores, srtf",
        f"event (no cpu): {minutes / event_seconds:>12.0f} sim-min/s"
        f"  ({event_seconds:.3f}s per run)",
        f"event-cpu:      {minutes / cpu_seconds:>12.0f} sim-min/s"
        f"  ({cpu_seconds:.3f}s per run)",
        f"cpu-stage overhead: {payload['cpu_overhead_vs_event']:.2f}x over event",
        f"slowdown p99 {latency.slowdown_p99:.2f}, "
        f"SLO violations {latency.slo_violation_rate:.2%}",
    ]
    save_and_print(output_dir, "event_cpu_engine_throughput", "\n".join(lines))
    (output_dir / "BENCH_pr8.json").write_text(json.dumps(payload, indent=2) + "\n")
    # The scheduling stage is pure numpy-plus-heap bookkeeping per minute; it
    # may cost a multiple of the bare event layer but must stay interactive.
    assert minutes / cpu_seconds > 100.0, payload


def test_feedback_engine_overhead(throughput_split, output_dir):
    """Cost of closing the latency feedback loop (PR 5 criterion).

    The ``event-feedback`` engine adds, per minute, the rolling-window
    bookkeeping (aggregate, expire, snapshot) and one ``on_feedback`` call.
    The bench measures all event-capable engines on the same engine-bound
    sweep, plus one end-to-end run of the latency-aware consumer, and
    publishes the consolidated ``BENCH_pr5.json`` artifact: the ``engines``
    rows feed ``compare_bench.py``'s absolute throughput floor for
    ``engine/event-feedback``, and the ``feedback`` block records the
    relative overhead ratios for inspection.
    """
    from repro.baselines import LatencyAwareKeepAlivePolicy

    split = throughput_split
    minutes = split.simulation.duration_minutes
    sweep_minutes = minutes * len(ENGINE_BOUND_POLICIES)

    engines = ("vectorized", "event", "event-feedback")
    for engine in engines:  # warm imports, index, jitter machinery
        _sweep_seconds(split, engine)
    seconds = {
        engine: min(_sweep_seconds(split, engine) for _ in range(3))
        for engine in engines
    }

    # The no-op-hook guarantee, asserted on the bench workload itself.
    event = Simulator(split.simulation, warmup_minutes=0, engine="event").run(
        FixedKeepAlivePolicy(10)
    )
    feedback = Simulator(
        split.simulation, warmup_minutes=0, engine="event-feedback"
    ).run(FixedKeepAlivePolicy(10))
    assert event.deterministic_fingerprint() == feedback.deterministic_fingerprint()
    assert feedback.latency is not None

    # One consumer run: the policy that actually reads the window.
    started = time.perf_counter()
    consumer = Simulator(
        split.simulation, warmup_minutes=0, engine="event-feedback"
    ).run(LatencyAwareKeepAlivePolicy())
    consumer_seconds = time.perf_counter() - started

    payload = {
        "workload": {
            "n_functions": THROUGHPUT_CONFIG.n_functions,
            "duration_days": THROUGHPUT_CONFIG.duration_days,
            "simulation_minutes": minutes,
        },
        "engines": {
            engine: {
                "sweep_seconds": round(seconds[engine], 4),
                "sim_minutes_per_second": round(sweep_minutes / seconds[engine], 1),
            }
            for engine in engines
        },
        "feedback": {
            "overhead_vs_event": round(
                seconds["event-feedback"] / seconds["event"], 3
            ),
            "overhead_vs_vectorized": round(
                seconds["event-feedback"] / seconds["vectorized"], 3
            ),
            "latency_keepalive_seconds": round(consumer_seconds, 4),
            "latency_keepalive_sim_minutes_per_second": round(
                minutes / consumer_seconds, 1
            ),
            "latency_keepalive_p99_ms": round(consumer.latency.p99_ms, 2),
        },
    }
    lines = [
        "Feedback-loop overhead - 400 functions, 2-day window",
    ] + [
        f"{engine:16s} {sweep_minutes / seconds[engine]:>12.0f} sim-min/s"
        f"  ({seconds[engine]:.3f}s per sweep)"
        for engine in engines
    ] + [
        f"feedback overhead: {payload['feedback']['overhead_vs_event']:.2f}x over"
        " event",
        f"latency-keepalive end-to-end: {minutes / consumer_seconds:>10.0f}"
        " sim-min/s",
    ]
    save_and_print(output_dir, "feedback_engine_overhead", "\n".join(lines))
    (output_dir / "BENCH_pr5.json").write_text(json.dumps(payload, indent=2) + "\n")
    # Closing the loop must stay an incremental cost on top of the event
    # layer (measured ~1.7x), not a multiple of it.
    assert seconds["event-feedback"] < 3.0 * seconds["event"], payload


#: Placement strategies measured by the cluster-mode overhead bench.
PLACEMENTS = ("hash", "least-loaded", "correlation-aware")


def test_placement_overhead(throughput_split, output_dir):
    """Cluster-mode cost per placement strategy, vs. the uncapped engine.

    The placement subsystem sits on the per-minute hot path (per-node trim
    passes, lazy assignment, migration checks), so its overhead is measured
    end to end on the default workload and published — together with a fresh
    engine-throughput row — as the consolidated ``BENCH_pr4.json`` artifact
    that ``benchmarks/compare_bench.py`` gates against
    ``benchmarks/baselines.json``.
    """
    from repro.simulation import ClusterModel
    import numpy as np

    split = throughput_split
    minutes = split.simulation.duration_minutes

    # The capacity-squeeze recipe: real eviction pressure, not a no-op cap.
    index = split.simulation.invocation_index()
    mean_active = float(np.diff(index.indptr).mean())
    capacity = max(8, int(round(mean_active * 2.5)))

    def run_seconds(cluster) -> float:
        best = float("inf")
        for _ in range(2):
            simulator = Simulator(
                split.simulation, warmup_minutes=0, cluster=cluster
            )
            started = time.perf_counter()
            simulator.run(IndexedFixedKeepAlivePolicy(10))
            best = min(best, time.perf_counter() - started)
        return best

    uncapped = run_seconds(None)
    placements = {}
    for name in PLACEMENTS:
        cluster = ClusterModel(memory_capacity=capacity, n_nodes=4, placement=name)
        placements[name] = run_seconds(cluster)
    migrating = run_seconds(
        ClusterModel(
            memory_capacity=capacity, n_nodes=4, placement="least-loaded",
            pressure_threshold=0.8, pressure_minutes=3,
        )
    )

    # One quick engine-throughput row per engine, so BENCH_pr4 is a
    # self-contained snapshot (single sweep each; the dedicated tests above
    # publish the best-of-3 numbers).
    sweep_minutes = minutes * len(ENGINE_BOUND_POLICIES)
    engine_seconds = {
        engine: _sweep_seconds(split, engine)
        for engine in ("vectorized", "event", "reference")
    }

    payload = {
        "workload": {
            "n_functions": THROUGHPUT_CONFIG.n_functions,
            "duration_days": THROUGHPUT_CONFIG.duration_days,
            "simulation_minutes": minutes,
            "cluster": {"memory_capacity": capacity, "n_nodes": 4},
        },
        "engines": {
            engine: {
                "sweep_seconds": round(seconds, 4),
                "sim_minutes_per_second": round(sweep_minutes / seconds, 1),
            }
            for engine, seconds in engine_seconds.items()
        },
        "placement": {
            "uncapped": {
                "seconds": round(uncapped, 4),
                "sim_minutes_per_second": round(minutes / uncapped, 1),
            },
            **{
                name: {
                    "seconds": round(seconds, 4),
                    "sim_minutes_per_second": round(minutes / seconds, 1),
                    "overhead_vs_uncapped": round(seconds / uncapped, 3),
                }
                for name, seconds in placements.items()
            },
            "least-loaded+migration": {
                "seconds": round(migrating, 4),
                "sim_minutes_per_second": round(minutes / migrating, 1),
                "overhead_vs_uncapped": round(migrating / uncapped, 3),
            },
        },
    }
    lines = [
        "Placement overhead - 400 functions, 2-day window, cap "
        f"{capacity} units over 4 nodes",
        f"uncapped                 {minutes / uncapped:>10.0f} sim-min/s",
    ] + [
        f"{name:24s} {minutes / seconds:>10.0f} sim-min/s"
        f"  ({seconds / uncapped:.2f}x uncapped)"
        for name, seconds in {**placements, "least-loaded+migration": migrating}.items()
    ]
    save_and_print(output_dir, "placement_overhead", "\n".join(lines))
    (output_dir / "BENCH_pr4.json").write_text(json.dumps(payload, indent=2) + "\n")
    # The placement machinery may not dominate the engine: even the most
    # expensive strategy must stay within an order of magnitude of uncapped.
    worst = max(*placements.values(), migrating)
    assert worst / uncapped < 10.0, payload["placement"]


#: Full Azure 2019 population and span for the sharded-scale row.
SHARD_SCALE_FUNCTIONS = 83_000
SHARD_SCALE_DAYS = 14
#: The ``paper_scale`` population (83,137 functions) times this multiplier is
#: the ROADMAP's first million-function scale-trajectory entry.
PAPER_SCALE_MULTIPLIER = 12


def test_sharded_scale_throughput(output_dir):
    """Sharded execution at dataset scale (PR 7 criterion).

    Runs the full Azure-population workload (83k functions, 14 sparse CSR
    days — the recipe behind ``BENCH_pr6``'s engine row, stretched to the
    dataset's span and split 12 + 2 days as in the paper) once through the
    single-process vectorized engine and once sharded across the
    ``ParallelRunner`` process pool, asserting the merged result is
    fingerprint-identical.  The measured policy is the shard-safe
    ``hybrid-function-indexed`` port: its per-function histogram training is
    the kind of work sharding exists to spread — with a trivial policy the
    trace-shipping cost of the pool dominates and the comparison measures
    pickling, not simulation.  Also records the first million-function
    scale-trajectory entry: one vectorized run over a
    ``GeneratorProfile.paper_scale()``-derived population times
    ``PAPER_SCALE_MULTIPLIER``.

    The ``engines`` rows feed ``compare_bench.py``'s ``engine/sharded-83k``
    floor.  The >= 2x wall-clock acceptance bar needs enough cores for the
    shards to actually overlap, so it is asserted at four CPUs and up (a
    two-core box tops out around the pool's break-even, which is asserted
    instead); the measured ``cpu_count`` ships in the payload either way, so
    a CI row is never mistaken for a single-core one.
    """
    import os

    from repro.experiments.parallel import ParallelRunner, PolicySpec
    from repro.traces import GeneratorProfile, split_trace
    from repro.traces.schema import MINUTES_PER_DAY

    from .bench_azure2019_ingest import _synthetic_sparse_day

    cpus = os.cpu_count() or 1
    shards = min(8, max(2, cpus))
    trace = _synthetic_sparse_day(SHARD_SCALE_FUNCTIONS, days=SHARD_SCALE_DAYS)
    split = split_trace(trace, training_days=12.0)
    minutes = split.simulation.duration_minutes

    # Single-process vectorized baseline at the same population.  Indexes are
    # built up front: steady-state sweeps reuse them, and the workers rebuild
    # only their own shard's — which the sharded wall-clock below includes.
    split.simulation.invocation_index()
    split.training.invocation_index()
    started = time.perf_counter()
    single_result = Simulator(
        split.simulation, training_trace=split.training, warmup_minutes=0
    ).run(IndexedHybridFunctionPolicy())
    single_seconds = time.perf_counter() - started

    # Sharded sweep: one cell split into per-shard pool tasks; the measured
    # wall-clock includes partitioning, pool startup, the shared-trace pickle
    # and the merge — the cost a real sweep actually pays.
    runner = ParallelRunner(
        {"scale": split}, workers=shards, warmup_minutes=0, shards=shards
    )
    spec = PolicySpec.of("hybrid-function-indexed")
    cell = runner.cell("sharded-83k", spec, "scale")
    started = time.perf_counter()
    sharded_result = runner.run_cells([cell])["sharded-83k"]
    sharded_seconds = time.perf_counter() - started
    assert (
        sharded_result.deterministic_fingerprint()
        == single_result.deterministic_fingerprint()
    )
    speedup = single_seconds / sharded_seconds

    # The million-function scale-trajectory entry (one run; the trace build
    # itself is excluded — the row measures the engine, not the generator).
    million_functions = PAPER_SCALE_MULTIPLIER * GeneratorProfile.paper_scale().n_functions
    million_trace = _synthetic_sparse_day(million_functions, days=1)
    started = time.perf_counter()
    million_result = Simulator(million_trace, warmup_minutes=0).run(
        IndexedFixedKeepAlivePolicy(10)
    )
    million_seconds = time.perf_counter() - started
    assert million_result.total_invocations > 0

    payload = {
        "workload": {
            "n_functions": SHARD_SCALE_FUNCTIONS,
            "duration_days": SHARD_SCALE_DAYS,
            "training_days": 12.0,
            "simulation_minutes": minutes,
            "policy": "hybrid-function-indexed",
            "million_row_functions": million_functions,
        },
        "hardware": {"cpu_count": cpus, "workers": shards, "shards": shards},
        "engines": {
            "vectorized-83k-singleproc": {
                "sweep_seconds": round(single_seconds, 3),
                "sim_minutes_per_second": round(minutes / single_seconds, 1),
            },
            "sharded-83k": {
                "sweep_seconds": round(sharded_seconds, 3),
                "sim_minutes_per_second": round(minutes / sharded_seconds, 1),
                "speedup_vs_single_process": round(speedup, 3),
            },
            "vectorized-1m": {
                "sweep_seconds": round(million_seconds, 3),
                "sim_minutes_per_second": round(
                    MINUTES_PER_DAY / million_seconds, 1
                ),
            },
        },
    }
    lines = [
        f"Sharded scale - {SHARD_SCALE_FUNCTIONS:,} functions x "
        f"{SHARD_SCALE_DAYS} days (12 + 2 split), hybrid-function-indexed, "
        f"{shards} shards on {cpus} CPU(s)",
        f"single-process vectorized: {single_seconds:8.2f}s "
        f"({minutes / single_seconds:>10,.1f} sim-min/s)",
        f"sharded ({shards} workers):      {sharded_seconds:8.2f}s "
        f"({minutes / sharded_seconds:>10,.1f} sim-min/s)",
        f"speedup: {speedup:.2f}x",
        f"{million_functions:,} functions x 1 day: {million_seconds:8.2f}s "
        f"({MINUTES_PER_DAY / million_seconds:,.0f} sim-min/s)",
    ]
    save_and_print(output_dir, "sharded_scale_throughput", "\n".join(lines))
    (output_dir / "BENCH_pr7.json").write_text(json.dumps(payload, indent=2) + "\n")
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"sharded run only {speedup:.2f}x over single-process "
            f"vectorized on {cpus} CPUs: {payload}"
        )
    elif cpus >= 2:
        assert speedup >= 1.0, (
            f"the sharded pool failed to pay for itself on {cpus} CPUs "
            f"({speedup:.2f}x): {payload}"
        )


def test_parallel_suite_vs_serial(output_dir):
    """Wall-clock of the policy suite, serial vs. fanned out over workers.

    On multi-core machines ``--workers 4`` beats serial; on constrained CI
    boxes the pool overhead can dominate, so only result *equality* is
    asserted here and the timings are recorded for inspection.
    """
    config = ExperimentConfig(
        n_functions=60, seed=2024, duration_days=4.0, training_days=3.0,
        warmup_minutes=360,
    )
    policies = ("spes", "fixed-10min", "hybrid-function", "defuse")

    started = time.perf_counter()
    serial = ExperimentSuite(config, policies=policies, workers=0).run()
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = ExperimentSuite(config, policies=policies, workers=4).run()
    parallel_seconds = time.perf_counter() - started

    seed = config.seed
    for name in policies:
        assert (
            serial.results[seed][name].deterministic_fingerprint()
            == parallel.results[seed][name].deterministic_fingerprint()
        ), name

    lines = [
        "Policy suite wall-clock - 60 functions, 4-day workload",
        f"policies: {', '.join(policies)}",
        f"serial:     {serial_seconds:8.2f}s",
        f"workers=4:  {parallel_seconds:8.2f}s",
        f"ratio: {serial_seconds / parallel_seconds:.2f}x",
    ]
    save_and_print(output_dir, "parallel_suite_wallclock", "\n".join(lines))


def test_mb_accounting_throughput(throughput_split, output_dir):
    """Cost of measured-memory (MB-mode) accounting (PR 9 criterion).

    ``memory_mode="mb"`` adds a footprint-weighted accounting pass on top of
    the count-based one: a per-function integer-KB vector, a second
    per-minute usage series and KB-exact WMT/EMCR totals.  The bench times
    one end-to-end ``fixed-10min`` run per engine in both modes, asserts
    that every count-based aggregate is untouched by the extra pass, and
    publishes ``engine/vectorized-mb`` and ``engine/event-mb`` rows in
    ``BENCH_pr9.json`` for ``compare_bench.py``'s floor gate.
    """
    import numpy as np

    split = throughput_split
    minutes = split.simulation.duration_minutes

    def run_seconds(engine: str, memory_mode: str) -> tuple[float, object]:
        best, result = float("inf"), None
        for _ in range(3):
            simulator = Simulator(
                split.simulation, warmup_minutes=0, engine=engine,
                memory_mode=memory_mode,
            )
            started = time.perf_counter()
            result = simulator.run(FixedKeepAlivePolicy(10))
            best = min(best, time.perf_counter() - started)
        return best, result

    run_seconds("vectorized", "unit")  # warm imports, index, footprint vector
    seconds: dict[tuple[str, str], float] = {}
    results: dict[tuple[str, str], object] = {}
    for engine in ("vectorized", "event"):
        for memory_mode in ("unit", "mb"):
            seconds[engine, memory_mode], results[engine, memory_mode] = (
                run_seconds(engine, memory_mode)
            )

    # MB mode is additive: the count-based numbers never move.
    for engine in ("vectorized", "event"):
        unit, mb = results[engine, "unit"], results[engine, "mb"]
        np.testing.assert_array_equal(mb.memory_usage, unit.memory_usage)
        assert mb.total_wasted_memory_time == unit.total_wasted_memory_time
        assert mb.memory_usage_kb is not None

    payload = {
        "workload": {
            "n_functions": THROUGHPUT_CONFIG.n_functions,
            "duration_days": THROUGHPUT_CONFIG.duration_days,
            "simulation_minutes": minutes,
        },
        "engines": {
            f"{engine}-mb": {
                "sweep_seconds": round(seconds[engine, "mb"], 4),
                "sim_minutes_per_second": round(
                    minutes / seconds[engine, "mb"], 1
                ),
            }
            for engine in ("vectorized", "event")
        },
        "mb_overhead_vs_unit": {
            engine: round(seconds[engine, "mb"] / seconds[engine, "unit"], 3)
            for engine in ("vectorized", "event")
        },
    }
    lines = [
        "MB-mode accounting - 400 functions, 2-day window, fixed-10min",
    ]
    for engine in ("vectorized", "event"):
        lines.append(
            f"{engine + ' (unit):':<20}{minutes / seconds[engine, 'unit']:>12.0f}"
            f" sim-min/s  ({seconds[engine, 'unit']:.3f}s per run)"
        )
        lines.append(
            f"{engine + ' (mb):':<20}{minutes / seconds[engine, 'mb']:>12.0f}"
            f" sim-min/s  ({seconds[engine, 'mb']:.3f}s per run)"
        )
    lines.append(
        "mb overhead: "
        + ", ".join(
            f"{engine} {payload['mb_overhead_vs_unit'][engine]:.2f}x"
            for engine in ("vectorized", "event")
        )
    )
    save_and_print(output_dir, "mb_accounting_throughput", "\n".join(lines))
    (output_dir / "BENCH_pr9.json").write_text(json.dumps(payload, indent=2) + "\n")
    # The weighted pass is one extra vectorized reduction per minute: it may
    # cost a fraction over unit mode but must stay the same order.
    assert minutes / seconds["event", "mb"] > 100.0, payload
