"""§III-B2 -- co-occurrence rates between related and unrelated functions.

The paper reports a mean COR of 0.2312 for candidate functions (sharing an
application or user) against 0.0504 for negative samples (~4.6x), and 0.2710
vs 0.1307 for same-trigger vs different-trigger candidates.
"""

from repro.analysis import cooccurrence_study
from repro.metrics.summary import ComparisonTable

from .conftest import save_and_print


def test_sec3_cooccurrence(benchmark, trace, output_dir):
    report = benchmark.pedantic(
        cooccurrence_study, args=(trace,), kwargs={"seed": 7}, rounds=1, iterations=1
    )

    table = ComparisonTable(
        title="Sec. III-B2 - co-occurrence rates (measured vs. paper)",
        columns=("pair_type", "measured_cor", "paper_cor"),
    )
    table.add_row(pair_type="candidate (same app/user)", measured_cor=report.candidate_cor, paper_cor=0.2312)
    table.add_row(pair_type="negative sample", measured_cor=report.negative_cor, paper_cor=0.0504)
    table.add_row(pair_type="candidate, same trigger", measured_cor=report.same_trigger_cor, paper_cor=0.2710)
    table.add_row(pair_type="candidate, different trigger", measured_cor=report.different_trigger_cor, paper_cor=0.1307)
    table.add_row(pair_type="candidate / negative ratio", measured_cor=report.candidate_to_negative_ratio, paper_cor=4.6)
    save_and_print(output_dir, "sec3_cooccurrence", table.render())

    # Candidates must be substantially more correlated than negative samples.
    assert report.candidate_cor > report.negative_cor
