"""Table I -- the categorization itself: population and coverage per category.

The paper's Table I defines the five deterministic categories; §IV-B adds the
three supplementary assignments.  This bench times the full offline
categorization of the 12-day training window and reports how many functions
land in each category, plus the fraction left unknown (the paper notes only
functions without usable history stay unknown).
"""

from repro.core import OfflineCategorizer
from repro.metrics.summary import ComparisonTable

from .conftest import save_and_print


def test_table1_offline_categorization(benchmark, runner, output_dir):
    training = runner.split.training
    categorizer = OfflineCategorizer(runner.config.spes_config)

    result = benchmark.pedantic(categorizer.categorize, args=(training,), rounds=1, iterations=1)

    counts = result.category_counts()
    total = sum(counts.values())
    table = ComparisonTable(
        title="Table I - offline categorization of the training window",
        columns=("category", "functions", "share_pct"),
    )
    for category, count in sorted(counts.items(), key=lambda item: -item[1]):
        table.add_row(
            category=category.value, functions=count, share_pct=100.0 * count / total
        )
    save_and_print(output_dir, "table1_categorization", table.render())

    from repro.core.categories import FunctionCategory

    unknown_share = counts.get(FunctionCategory.UNKNOWN, 0) / total
    # Most functions must be categorized; unknown is reserved for functions
    # with no usable training history.
    assert unknown_share < 0.3
    assert len(counts) >= 5
