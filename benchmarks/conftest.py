"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation.
The underlying simulations are expensive, so they run once per benchmark
session in the fixtures below; the timed portion of each benchmark is the
derivation of the reported rows/series from the cached simulation results.
Each benchmark also writes its table to ``benchmarks/output/`` so the numbers
can be inspected after the run (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig, ExperimentRunner

#: Workload used by every benchmark: 14 days, 12-day training window, a few
#: hundred functions so the whole suite completes in minutes on a laptop.
BENCHMARK_CONFIG = ExperimentConfig(
    n_functions=250,
    seed=2024,
    duration_days=14.0,
    training_days=12.0,
    warmup_minutes=1440,
)

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """The shared experiment runner (workload generated lazily)."""
    return ExperimentRunner(BENCHMARK_CONFIG)


@pytest.fixture(scope="session")
def trace(runner):
    """The full 14-day synthetic workload."""
    return runner.trace


@pytest.fixture(scope="session")
def all_results(runner):
    """Simulation results of SPES and every baseline (computed once)."""
    return runner.run_all()


@pytest.fixture(scope="session")
def spes_policy(runner):
    """The prepared SPES policy behind the cached SPES result."""
    runner.run_spes()
    return runner.spes_policy()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    """Directory collecting the rendered tables."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def save_and_print(output_dir: Path, name: str, text: str) -> None:
    """Print a rendered table and persist it under ``benchmarks/output``."""
    print()
    print(text)
    (output_dir / f"{name}.txt").write_text(text + "\n")
