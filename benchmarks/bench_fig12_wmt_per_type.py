"""Fig. 12 / RQ2 -- wasted-memory-time ratio per SPES category.

The paper observes that "possible" functions generate the highest WMT ratio:
SPES deliberately predicts aggressively for them, accepting extra wasted
memory to suppress their cold starts.
"""

from repro.core.categories import FunctionCategory
from repro.experiments import rq2_memory

from .conftest import save_and_print


def test_fig12_wmt_ratio_per_type(benchmark, spes_policy, all_results, output_dir):
    spes_result = all_results["spes"]
    table = benchmark(rq2_memory.wmt_ratio_per_type_table, spes_policy, spes_result)
    save_and_print(output_dir, "fig12_wmt_per_type", table.render())

    ratios = rq2_memory.wmt_ratio_per_type(spes_policy, spes_result)
    assert ratios
    # Successive / always-warm functions should waste less per invocation
    # than the aggressively predicted "possible" functions.
    if FunctionCategory.POSSIBLE in ratios and FunctionCategory.SUCCESSIVE in ratios:
        assert ratios[FunctionCategory.POSSIBLE] >= ratios[FunctionCategory.SUCCESSIVE]
