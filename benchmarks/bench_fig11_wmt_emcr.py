"""Fig. 11 / RQ2 -- normalized wasted memory time and EMCR per policy.

The paper reports SPES wastes 10.89%-63.50% less memory time than every
baseline and reaches the highest effective memory consumption ratio (46.32%).
"""

from repro.experiments import rq2_memory

from .conftest import save_and_print


def test_fig11_wmt_and_emcr(benchmark, all_results, output_dir):
    table = benchmark(rq2_memory.wmt_and_emcr_table, all_results)
    save_and_print(output_dir, "fig11_wmt_emcr", table.render())

    spes = all_results["spes"]
    others = {name: result for name, result in all_results.items() if name != "spes"}
    # Shape check: SPES's WMT is the lowest (small tolerance for ties) and its
    # EMCR the highest.
    for name, result in others.items():
        assert spes.total_wasted_memory_time <= result.total_wasted_memory_time * 1.1, name
    assert spes.emcr >= max(result.emcr for result in others.values()) * 0.9
