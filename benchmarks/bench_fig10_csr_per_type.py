"""Fig. 10 / RQ1 -- average cold-start rate of each SPES category.

The paper shows that unknown and pulsed functions contribute the most cold
starts (by design SPES tolerates them there), while the predictable
categories (always-warm, regular, appro-regular, dense, correlated, possible)
stay low.
"""

from repro.core.categories import FunctionCategory
from repro.experiments import rq1_coldstart

from .conftest import save_and_print


def test_fig10_csr_per_type(benchmark, spes_policy, all_results, output_dir):
    spes_result = all_results["spes"]
    table = benchmark(rq1_coldstart.per_category_csr_table, spes_policy, spes_result)
    save_and_print(output_dir, "fig10_csr_per_type", table.render())

    rates = rq1_coldstart.per_category_csr(spes_policy, spes_result)
    predictable = [
        rates[category]
        for category in (
            FunctionCategory.ALWAYS_WARM,
            FunctionCategory.REGULAR,
            FunctionCategory.APPRO_REGULAR,
            FunctionCategory.DENSE,
        )
        if category in rates
    ]
    hard = [
        rates[category]
        for category in (FunctionCategory.UNKNOWN, FunctionCategory.PULSED)
        if category in rates
    ]
    assert predictable, "predictable categories must be populated"
    # Shape check: the hard categories dominate the cold starts.
    if hard:
        assert max(hard) >= max(predictable)
