"""Fig. 13 / RQ3 -- trading memory for cold-start latency.

The paper sweeps ``theta_prewarm`` (1, 2, 3, 5, 10) and a multiplier on
``theta_givenup`` (1-5) and shows an approximately linear relationship
between normalized memory usage and Q3-CSR, with larger give-up thresholds
yielding diminishing returns.
"""

from repro.experiments.rq3_tradeoff import givenup_sweep, linear_fit, prewarm_sweep, sweep_table

from .conftest import save_and_print


def test_fig13a_prewarm_sweep(benchmark, runner, output_dir):
    points = benchmark.pedantic(
        prewarm_sweep, args=(runner,), kwargs={"values": (1, 2, 3, 5, 10)}, rounds=1, iterations=1
    )
    slope, intercept = linear_fit(points)
    table = sweep_table(points, "theta_prewarm", "Fig. 13a - theta_prewarm sweep")
    text = table.render() + f"\nlinear fit: q3_csr = {slope:.4f} * memory + {intercept:.4f}"
    save_and_print(output_dir, "fig13a_prewarm_sweep", text)

    # Larger pre-warm windows must not use less memory, and the fitted slope
    # must be negative (more memory buys fewer cold starts), as in the paper.
    assert points[-1].normalized_memory >= points[0].normalized_memory * 0.99
    assert slope < 0


def test_fig13b_givenup_sweep(benchmark, runner, output_dir):
    points = benchmark.pedantic(
        givenup_sweep, args=(runner,), kwargs={"scales": (1, 2, 3, 4, 5)}, rounds=1, iterations=1
    )
    slope, intercept = linear_fit(points)
    table = sweep_table(points, "givenup_scale", "Fig. 13b - theta_givenup sweep")
    text = table.render() + f"\nlinear fit: q3_csr = {slope:.4f} * memory + {intercept:.4f}"
    save_and_print(output_dir, "fig13b_givenup_sweep", text)

    # Memory grows with the give-up threshold while the Q3-CSR does not get
    # worse: keeping idle functions longer trades memory for cold starts.
    assert points[-1].normalized_memory >= points[0].normalized_memory
    assert points[-1].q3_csr <= points[0].q3_csr + 0.02
