"""Fig. 3 -- distribution of per-function invocation counts.

The paper shows that most functions are rarely invoked while a small minority
accounts for almost all invocations.  This bench regenerates the histogram of
per-function invocation counts (log-scale buckets) for the synthetic
workload.
"""

from repro.analysis import invocation_count_histogram, invocation_count_summary
from repro.metrics.summary import ComparisonTable

from .conftest import save_and_print


def test_fig03_invocation_distribution(benchmark, trace, output_dir):
    histogram = benchmark(invocation_count_histogram, trace)

    table = ComparisonTable(
        title="Fig. 3 - per-function invocation-count distribution",
        columns=("invocation_range", "functions"),
    )
    for label, count in histogram.items():
        table.add_row(invocation_range=label, functions=count)
    summary = invocation_count_summary(trace)
    extra = ComparisonTable(
        title="Fig. 3 - summary statistics",
        columns=("statistic", "value"),
    )
    for key, value in summary.items():
        extra.add_row(statistic=key, value=value)
    save_and_print(output_dir, "fig03_invocation_distribution", table.render() + "\n\n" + extra.render())

    # The heavy tail must be visible: more functions in the lowest decade
    # than in the highest non-empty one.
    assert summary["skewness_ratio"] > 1.0
