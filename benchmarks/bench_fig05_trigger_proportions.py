"""Fig. 5 -- proportion of trigger types among functions.

The paper reports HTTP 41.19%, timer 26.64%, queue 14.40%, orchestration
7.76%, others 2.72%, combination 2.60%, event 2.52%, storage 2.19%.  The
synthetic workload assigns triggers per archetype, so the exact mix differs,
but HTTP and timer triggers should dominate just as in the paper.
"""

from repro.analysis import trigger_proportions
from repro.metrics.summary import ComparisonTable
from repro.traces import TriggerType

from .conftest import save_and_print


def test_fig05_trigger_proportions(benchmark, trace, output_dir):
    proportions = benchmark(trigger_proportions, trace)

    paper = {trigger.value: share for trigger, share in TriggerType.paper_proportions().items()}
    table = ComparisonTable(
        title="Fig. 5 - trigger-type proportions (measured vs. paper)",
        columns=("trigger", "measured_pct", "paper_pct"),
    )
    for trigger, share in sorted(proportions.items(), key=lambda item: -item[1]):
        table.add_row(
            trigger=trigger,
            measured_pct=100.0 * share,
            paper_pct=100.0 * paper.get(trigger, 0.0),
        )
    save_and_print(output_dir, "fig05_trigger_proportions", table.render())

    dominant = max(proportions, key=proportions.get)
    assert dominant in ("http", "timer")
