"""§III-B1 -- trigger-conditioned invocation-pattern tests.

The paper reports that 68.12% of timer-triggered functions are invoked
(quasi-)periodically and 45.02% of HTTP-triggered functions follow a Poisson
arrival process (excluding functions with too few samples).
"""

from repro.analysis import http_poisson_test, timer_periodicity_test
from repro.metrics.summary import ComparisonTable

from .conftest import save_and_print


def test_sec3_pattern_tests(benchmark, trace, output_dir):
    def run_both():
        return timer_periodicity_test(trace), http_poisson_test(trace)

    timer_report, http_report = benchmark(run_both)

    table = ComparisonTable(
        title="Sec. III-B1 - invocation-pattern tests (measured vs. paper)",
        columns=("test", "matching_pct", "insufficient_pct", "paper_pct"),
    )
    table.add_row(
        test="timer functions (quasi-)periodic",
        matching_pct=100.0 * timer_report.matching_fraction,
        insufficient_pct=100.0 * timer_report.insufficient_fraction,
        paper_pct=68.12,
    )
    table.add_row(
        test="HTTP functions Poisson",
        matching_pct=100.0 * http_report.matching_fraction,
        insufficient_pct=100.0 * http_report.insufficient_fraction,
        paper_pct=45.02,
    )
    save_and_print(output_dir, "sec3_pattern_tests", table.render())

    # A meaningful share of timer functions must look periodic.
    assert timer_report.matching_fraction > 0.3
