"""RQ2 -- scheduler decision overhead.

The paper measures the extra latency each scheduler adds per simulated
minute: the fixed keep-alive policy is cheapest (0.024 s/min on their
machine), SPES adds 0.44 s/min, below FaaSCache.  Absolute numbers depend on
the machine and workload size; the bench reports the same comparison and
additionally times one SPES decision step directly.
"""

from repro.core import SpesPolicy
from repro.experiments import rq2_memory
from repro.simulation import Simulator

from .conftest import save_and_print


def test_rq2_overhead_table(benchmark, all_results, output_dir):
    table = benchmark(rq2_memory.overhead_comparison, all_results)
    save_and_print(output_dir, "rq2_overhead", table.render(float_format="{:.6f}"))
    for result in all_results.values():
        assert result.overhead_per_minute >= 0.0


def test_rq2_spes_decision_throughput(benchmark, runner):
    """Time a full SPES simulation minute-loop over the 2-day window."""
    split = runner.split

    def run_spes_once():
        simulator = Simulator(
            simulation_trace=split.simulation,
            training_trace=split.training,
            warmup_minutes=0,
        )
        return simulator.run(SpesPolicy(runner.config.spes_config))

    result = benchmark.pedantic(run_spes_once, rounds=1, iterations=1)
    assert result.total_invocations > 0
