#!/usr/bin/env python
"""CI benchmark-regression gate: compare BENCH_pr*.json against floors.

Usage (exactly what the CI step runs)::

    python benchmarks/compare_bench.py \
        --bench-dir benchmarks/output --baselines benchmarks/baselines.json

The script collects every throughput metric published by the benchmark runs
(``BENCH_pr2.json`` indexed-policy rows, ``BENCH_pr3.json``/``BENCH_pr4.json``
engine rows, ``BENCH_pr4.json`` placement rows) and compares each against the
checked-in floor in ``baselines.json``.  A metric FAILS when its measured
throughput drops more than ``--tolerance`` (default 30%) below its floor; the
exit code is 1 if anything failed, which the workflow surfaces as a distinct
``continue-on-error`` annotated step — shared-runner noise can dip below a
floor without any regression in the code, so the gate warns loudly instead of
blocking merges.

Floors are deliberately conservative (roughly a fifth of the throughput a
quiet development machine reaches): tripping the gate means the engine got
*several times* slower, not that a noisy neighbor stole a core.  When a
legitimate change shifts the performance envelope, re-run the benches and
refresh the floors with ``--update``.

Metric naming: ``engine/<name>``, ``policy/<name>``, ``placement/<name>`` and
``ingest/<stage>`` (``BENCH_pr6.json`` Azure-ingestion rows, in function-days
per second rather than sim-minutes per second).
When several BENCH files publish the same engine metric, the best value wins
(the dedicated best-of-3 runs vs. the consolidated single-sweep snapshot).
Metrics present in ``baselines.json`` but missing from the run are reported
as MISSING (a warning, not a failure — partial bench runs stay usable);
metrics measured but not yet in the baselines are listed as UNTRACKED hints.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict


def collect_metrics(bench_dir: Path) -> Dict[str, float]:
    """Throughput metrics of every ``BENCH_pr*.json`` under ``bench_dir``."""
    metrics: Dict[str, float] = {}

    def offer(name: str, value: object) -> None:
        if isinstance(value, (int, float)) and value > 0:
            metrics[name] = max(metrics.get(name, 0.0), float(value))

    for path in sorted(bench_dir.glob("BENCH_pr*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"warning: skipping unreadable {path.name}: {error}", file=sys.stderr)
            continue
        for engine, row in payload.get("engines", {}).items():
            offer(f"engine/{engine}", row.get("sim_minutes_per_second"))
        for policy, row in payload.get("policies", {}).items():
            offer(f"policy/{policy}", row.get("indexed_sim_minutes_per_second"))
        for placement, row in payload.get("placement", {}).items():
            offer(f"placement/{placement}", row.get("sim_minutes_per_second"))
        for stage, row in payload.get("ingest", {}).items():
            offer(f"ingest/{stage}", row.get("function_days_per_second"))
    return metrics


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-dir",
        type=Path,
        default=Path("benchmarks/output"),
        help="directory holding the run's BENCH_pr*.json files",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=Path("benchmarks/baselines.json"),
        help="checked-in floor throughputs (sim-minutes/second)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed drop below the floor before failing (0.30 = 30%%)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baselines file from the current run's metrics",
    )
    args = parser.parse_args(argv)

    metrics = collect_metrics(args.bench_dir)
    if not metrics:
        print(f"warning: no BENCH_pr*.json metrics found under {args.bench_dir}")
        return 0

    if args.update:
        # Merge into the existing floors: a partial bench run (one BENCH
        # file) must not silently delete the floors of unmeasured metrics.
        try:
            floors = dict(json.loads(args.baselines.read_text()))
        except (OSError, json.JSONDecodeError):
            floors = {}
        floors.update(
            {name: round(value / 5.0, 1) for name, value in metrics.items()}
        )
        floors = dict(sorted(floors.items()))
        args.baselines.write_text(json.dumps(floors, indent=2) + "\n")
        print(
            f"updated {args.baselines}: {len(metrics)} floor(s) refreshed "
            f"(current/5), {len(floors) - len(metrics)} kept"
        )
        return 0

    try:
        floors = json.loads(args.baselines.read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot read baselines {args.baselines}: {error}", file=sys.stderr)
        return 1

    width = max(len(name) for name in {*floors, *metrics})
    failed = []
    print(f"benchmark regression gate (tolerance {args.tolerance:.0%} below floor)")
    for name in sorted(floors):
        floor = float(floors[name])
        cutoff = floor * (1.0 - args.tolerance)
        value = metrics.get(name)
        if value is None:
            print(f"  {name:<{width}}  MISSING   (floor {floor:,.0f} sim-min/s)")
            continue
        verdict = "ok" if value >= cutoff else "FAIL"
        if verdict == "FAIL":
            failed.append(name)
        print(
            f"  {name:<{width}}  {verdict:<7} {value:>12,.0f} sim-min/s"
            f"  (floor {floor:,.0f}, cutoff {cutoff:,.0f})"
        )
    for name in sorted(set(metrics) - set(floors)):
        print(f"  {name:<{width}}  UNTRACKED {metrics[name]:>11,.0f} sim-min/s")

    if failed:
        print(
            f"\nFAIL: {len(failed)} metric(s) dropped >{args.tolerance:.0%} below "
            f"their floor: {', '.join(failed)}"
        )
        return 1
    print("\nall tracked metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
