"""Azure 2019 ingestion throughput and full-dataset-scale engine cost.

The streaming ingestion path exists for one reason: the real dataset is ~83k
functions over 14 days, which must never go dense.  This bench measures the
whole pipeline at representative scale and publishes ``BENCH_pr6.json``:

* ``ingest/cold`` — two-pass streaming ingestion of generated fixture CSVs
  at 10,000 functions x 14 days (the acceptance shape), in function-days
  ingested per second, including the duration join and the cache write;
* ``ingest/cached`` — the same load replayed from the on-disk ``.npz``
  cache, which is what every sweep after the first pays;
* an ``engines`` row at full-dataset population: one vectorized engine run
  over a synthetic 83,000-function sparse day, the scale the CSR-backed
  :class:`~repro.traces.trace.SparseTrace` exists to serve.

The CSVs are generated, not downloaded: :func:`write_azure2019_fixture`
emits the exact dataset schema, so the bench is hermetic and CI-safe.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.baselines import IndexedFixedKeepAlivePolicy
from repro.simulation import Simulator
from repro.traces import (
    Azure2019Config,
    Azure2019Dataset,
    FunctionRecord,
    SparseTrace,
    write_azure2019_fixture,
)
from repro.traces.schema import MINUTES_PER_DAY, TraceMetadata

from .conftest import save_and_print

#: The acceptance shape: >= 10k functions x 14 days through the cached path.
INGEST_FUNCTIONS = 10_000
INGEST_DAYS = 14

#: Full-dataset population for the engine-scale row.
ENGINE_FUNCTIONS = 83_000


@pytest.fixture(scope="module")
def bench_root(tmp_path_factory):
    return tmp_path_factory.mktemp("azure2019_ingest")


def _synthetic_sparse_day(
    n_functions: int, seed: int = 2019, days: int = 1
) -> SparseTrace:
    """A dataset-scale sparse trace built directly in CSR form.

    Generating 83k functions through the CSV fixture would measure mostly
    file writing; the engine row wants the *simulation* cost at real-dataset
    population, so the CSR arrays are drawn directly (about nine active
    minutes per function per day, the dataset's heavy-tailed sparsity
    regime).  ``days=1`` reproduces the original single-day draw exactly;
    the sharded-scale bench stretches the same recipe over 14 days.
    """
    rng = np.random.default_rng(seed)
    duration = days * MINUTES_PER_DAY
    per_function = rng.poisson(9 * days, n_functions).astype(np.int64) + 1
    fn_idx = np.repeat(np.arange(n_functions, dtype=np.int64), per_function)
    minute = rng.integers(0, duration, fn_idx.size, dtype=np.int64)
    keys = np.unique(fn_idx * np.int64(duration) + minute)
    fn_minutes = keys % duration
    fn_rows = keys // duration
    fn_indptr = np.zeros(n_functions + 1, dtype=np.int64)
    np.cumsum(np.bincount(fn_rows, minlength=n_functions), out=fn_indptr[1:])
    fn_counts = rng.integers(1, 4, keys.size, dtype=np.int64)
    records = [
        FunctionRecord(
            function_id=f"o{i % 400}:a{i % 2000}:f{i}",
            app_id=f"o{i % 400}:a{i % 2000}",
            owner_id=f"o{i % 400}",
        )
        for i in range(n_functions)
    ]
    metadata = TraceMetadata(
        name=f"azure2019-scale-{n_functions}", duration_minutes=duration
    )
    return SparseTrace(records, fn_indptr, fn_minutes, fn_counts, duration, metadata)


def test_azure2019_ingestion_throughput(bench_root, output_dir):
    """Cold vs. cached ingestion at the acceptance shape (PR 6 criterion)."""
    function_days = INGEST_FUNCTIONS * INGEST_DAYS

    started = time.perf_counter()
    write_azure2019_fixture(
        bench_root, n_functions=INGEST_FUNCTIONS, days=INGEST_DAYS, seed=2019
    )
    write_seconds = time.perf_counter() - started

    config = Azure2019Config(days=tuple(range(1, INGEST_DAYS + 1)))
    started = time.perf_counter()
    cold_trace = Azure2019Dataset(bench_root).load(config)
    cold_seconds = time.perf_counter() - started

    # A fresh handle: nothing carried over but the on-disk cache itself.
    started = time.perf_counter()
    cached_trace = Azure2019Dataset(bench_root).load(config)
    cached_seconds = time.perf_counter() - started

    assert len(cold_trace) == INGEST_FUNCTIONS
    assert cold_trace.duration_minutes == INGEST_DAYS * MINUTES_PER_DAY
    assert cached_trace.fingerprint() == cold_trace.fingerprint()
    assert cached_seconds < cold_seconds, (cached_seconds, cold_seconds)

    # Full-dataset-scale engine row: one sparse day at 83k functions driven
    # through the vectorized engine via the CSR-transposed invocation index.
    scale_trace = _synthetic_sparse_day(ENGINE_FUNCTIONS)
    Simulator(scale_trace, warmup_minutes=0).run(IndexedFixedKeepAlivePolicy(10))
    started = time.perf_counter()
    result = Simulator(scale_trace, warmup_minutes=0).run(
        IndexedFixedKeepAlivePolicy(10)
    )
    engine_seconds = time.perf_counter() - started
    assert result.total_invocations > 0

    payload = {
        "workload": {
            "n_functions": INGEST_FUNCTIONS,
            "days": INGEST_DAYS,
            "function_days": function_days,
            "total_invocations": int(cold_trace.total_invocations()),
            "engine_scale_functions": ENGINE_FUNCTIONS,
        },
        "ingest": {
            "cold": {
                "seconds": round(cold_seconds, 3),
                "function_days_per_second": round(function_days / cold_seconds, 1),
            },
            "cached": {
                "seconds": round(cached_seconds, 4),
                "function_days_per_second": round(
                    function_days / cached_seconds, 1
                ),
                "speedup_vs_cold": round(cold_seconds / cached_seconds, 1),
            },
            "fixture-write": {
                "seconds": round(write_seconds, 3),
                "function_days_per_second": round(
                    function_days / write_seconds, 1
                ),
            },
        },
        "engines": {
            "vectorized-83k": {
                "sweep_seconds": round(engine_seconds, 3),
                "sim_minutes_per_second": round(
                    MINUTES_PER_DAY / engine_seconds, 1
                ),
            },
        },
    }
    lines = [
        f"Azure 2019 ingestion - {INGEST_FUNCTIONS:,} functions x "
        f"{INGEST_DAYS} days ({function_days:,} function-days)",
        f"fixture write: {write_seconds:8.2f}s "
        f"({function_days / write_seconds:>12,.0f} fn-days/s)",
        f"cold ingest:   {cold_seconds:8.2f}s "
        f"({function_days / cold_seconds:>12,.0f} fn-days/s)",
        f"cached replay: {cached_seconds:8.3f}s "
        f"({function_days / cached_seconds:>12,.0f} fn-days/s, "
        f"{cold_seconds / cached_seconds:,.0f}x over cold)",
        f"engine at {ENGINE_FUNCTIONS:,} functions: {engine_seconds:8.2f}s for "
        f"one day ({MINUTES_PER_DAY / engine_seconds:,.0f} sim-min/s)",
    ]
    save_and_print(output_dir, "azure2019_ingest", "\n".join(lines))
    (output_dir / "BENCH_pr6.json").write_text(json.dumps(payload, indent=2) + "\n")
    # The cache must pay for itself by at least an order of magnitude —
    # anything less means sweeps re-ingest in all but name.
    assert cold_seconds / cached_seconds >= 10.0, payload["ingest"]
