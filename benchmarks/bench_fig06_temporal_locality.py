"""Fig. 6 -- temporal locality of infrequently invoked functions.

The paper plots five rarely invoked functions whose invocations cluster in a
few short windows.  This bench measures, across all infrequent functions, how
much of their activity is concentrated in bursts, and lists the five most
bursty examples (the analogue of the five functions plotted in the paper).
"""

from repro.analysis import temporal_locality_study
from repro.metrics.summary import ComparisonTable

from .conftest import save_and_print


def test_fig06_temporal_locality(benchmark, trace, output_dir):
    report = benchmark(temporal_locality_study, trace)

    table = ComparisonTable(
        title="Fig. 6 - temporal locality among infrequent functions",
        columns=("metric", "value"),
    )
    table.add_row(metric="infrequent_functions", value=report.functions_considered)
    table.add_row(metric="bursty_functions", value=report.bursty_functions)
    table.add_row(metric="bursty_fraction", value=report.bursty_fraction)
    table.add_row(metric="mean_burst_concentration", value=report.mean_burst_concentration)
    table.add_row(metric="mean_active_periods", value=report.mean_active_period_count)

    examples = ComparisonTable(
        title="Fig. 6 - five most bursty infrequent functions",
        columns=("function", "burst_concentration"),
    )
    ranked = sorted(
        report.per_function_concentration.items(), key=lambda item: -item[1]
    )[:5]
    for function_id, concentration in ranked:
        examples.add_row(function=function_id, burst_concentration=concentration)

    save_and_print(output_dir, "fig06_temporal_locality", table.render() + "\n\n" + examples.render())
    assert report.functions_considered > 0
