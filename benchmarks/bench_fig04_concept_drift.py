"""Fig. 4 -- concept shifts in function invocation behaviour.

The paper plots three functions whose invocation volume changes regime over
the 14-day window.  This bench detects change points across the workload and
reports the drifting population plus the change points of the three most
active drifting functions (the paper's figure shows three examples).
"""

from repro.analysis import drift_study
from repro.metrics.summary import ComparisonTable

from .conftest import save_and_print


def test_fig04_concept_drift(benchmark, trace, output_dir):
    report = benchmark(drift_study, trace)

    table = ComparisonTable(
        title="Fig. 4 - concept drift across the workload",
        columns=("metric", "value"),
    )
    table.add_row(metric="functions_analysed", value=report.functions_considered)
    table.add_row(metric="drifting_functions", value=report.drifting_functions)
    table.add_row(metric="drifting_fraction", value=report.drifting_fraction)

    examples = ComparisonTable(
        title="Fig. 4 - example drifting functions (change points, minutes)",
        columns=("function", "change_points"),
    )
    ranked = sorted(
        report.change_points.items(),
        key=lambda item: trace.total_invocations(item[0]),
        reverse=True,
    )
    for function_id, points in ranked[:3]:
        examples.add_row(function=function_id, change_points=str(points))

    save_and_print(output_dir, "fig04_concept_drift", table.render() + "\n\n" + examples.render())
    assert report.functions_considered > 0
