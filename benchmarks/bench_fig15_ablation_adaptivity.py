"""Fig. 15 / RQ4 -- impact of the concept-shift (adaptivity) designs.

The paper removes (a) the forgetting strategy (re-categorizing on recent
history) and (b) the online adjusting of predictive values, and shows both
contribute to cold-start reduction, forgetting more so because it affects
more functions.
"""

from repro.experiments.rq4_ablation import ablation_table, adaptivity_ablation

from .conftest import save_and_print


def test_fig15_adaptivity_ablation(benchmark, runner, output_dir):
    results = benchmark.pedantic(adaptivity_ablation, args=(runner,), rounds=1, iterations=1)
    table = ablation_table(results, "Fig. 15 - adaptivity ablation")
    save_and_print(output_dir, "fig15_ablation_adaptivity", table.render())

    full = results["spes"]
    without_forgetting = results["w/o-forgetting"]
    without_adjusting = results["w/o-adjusting"]
    # The adaptive designs must not hurt: full SPES is at least as good on
    # the Q3-CSR as either ablated variant (small tolerance for noise).
    assert full.q3_cold_start_rate <= without_forgetting.q3_cold_start_rate + 0.05
    assert full.q3_cold_start_rate <= without_adjusting.q3_cold_start_rate + 0.05
