"""Named, parameterized workload scenarios.

Experiments used to construct workloads ad hoc: every script assembled its
own :class:`~repro.traces.synthetic.GeneratorProfile` or archetype soup.
This module replaces that with a single registry of *scenarios* — named,
seeded, parameterized workload builders that every entry point
(:class:`~repro.experiments.suite.ExperimentSuite`, the ``spes-repro sweep
--scenario`` CLI, tests, benchmarks) addresses the same way:

>>> from repro.scenarios import build_scenario
>>> workload = build_scenario("bursty", seed=7, n_functions=60, days=3.0,
...                           training_days=2.0)
>>> workload.split.simulation.duration_minutes
1440

A scenario yields a :class:`ScenarioWorkload`: a train/simulation
:class:`~repro.traces.trace.TraceSplit`, an optional
:class:`~repro.simulation.cluster.ClusterModel` when the scenario is
meaningful only under capacity pressure (``capacity-squeeze``), and an
:class:`~repro.simulation.events.EventConfig` carrying the scenario's
duration/jitter parameters for the sub-minute event engine (``sweep --engine
event``).  Builders are deterministic in ``(seed, parameters)``: the same
call always produces the same trace fingerprints (and the same event-jitter
seed), so sweep cells built from scenarios cache cleanly.

Built-in catalog
----------------
``azure``
    The default synthetic Azure-like population (the paper's setting).
``diurnal``
    Human-facing traffic: strongly day/night-modulated Poisson HTTP
    functions over a timer/rare background.
``bursty``
    Temporal-locality heavy: most functions idle for hours, then fire in
    dense bursts (the hardest shape for histogram keep-alives).
``drift``
    A large slice of the population changes behaviour mid-trace, stressing
    the adjusting/forgetting strategies.
``flash-crowd``
    An azure-like base population where a subset of functions is hit by a
    sudden, unpredictable crowd inside the *simulation* window.
``capacity-squeeze``
    A dense population on a sharded cluster whose memory cap is derived
    from the workload itself (a multiple of the mean per-minute active set),
    guaranteeing sustained eviction pressure.
``hot-shard``
    An adversarial placement workload: the function ids of the hottest
    functions are crafted so the default CRC-32 hash placement lands all of
    them on node 0, which melts while the other nodes idle.  The scenario
    exists to measure what ``sweep --placement least-loaded`` (or
    ``correlation-aware``) buys over static sharding.
``rotating-periods``
    Continuous drift: timer-like functions whose periods stretch steadily
    over the whole trace, so any histogram learned from one window is a
    little more wrong every hour — there is no stationary regime to train
    on.
``load-ramp``
    Continuous drift: Poisson traffic whose rates ramp multiplicatively from
    start to end of the trace, so a training window always under-represents
    the load the simulation window carries.
``seasonal-mix``
    Continuous drift: the population is partitioned into seasonal groups
    whose activity envelopes rotate around the clock, so *which* functions
    are hot changes continuously while total load stays roughly level.
``azure2019``
    The **real** Azure Functions 2019 dataset, via the streaming ingestion
    path in :mod:`repro.traces.azure2019`.  Requires the dataset on disk
    (``azure_dir`` parameter / ``sweep --azure-dir``; download with
    ``spes-repro azure fetch``); selects the ``n_functions`` most-invoked
    functions by default and splits the requested day range into
    train/eval windows.  The dataset's app-memory files are joined into
    per-function measured footprints during ingestion, so
    ``memory_mode="mb"`` runs report megabyte-denominated WMT/EMCR instead
    of the paper's abstract one-unit-per-instance accounting.
``azure2019-fixture``
    The same ingestion pipeline end to end — CSV parse, trigger filter,
    selection, CSR assembly, duration *and* app-memory joins — but over
    miniature fixture CSVs generated on the fly in the exact dataset
    schema.  Fully hermetic
    (no dataset, no network), deterministic in ``(seed, parameters)``; this
    is the scenario CI smoke-sweeps.
``cpu-starved``
    Dense heavyweight HTTP traffic on a deliberately small per-node core
    pool (the event engines' intra-node CPU stage): even well-provisioned
    functions queue for CPU, so slowdown and SLO violations — not just
    cold starts — separate the policies and schedulers.
``long-duration-mix``
    Bimodal service times sharing the cores: long batch jobs convoy short
    HTTP requests under ``fifo``, while size-aware schedulers (``srtf``,
    ``las``) protect the short jobs — the scheduler contrast RQ6 measures.

The three continuous-drift scenarios are the intended companions of the
streaming evaluation mode (``ExperimentSuite(streaming=True)`` /
``sweep --streaming``), where policies receive no training window at all
and must adapt online — e.g. from the ``event-feedback`` engine's rolling
latency window.

Every scenario workload can also run under the sharded execution mode
(``sweep --shards N``): the function population splits into per-node
partitions that simulate concurrently on the worker pool and merge back
into one fingerprint-identical result.  The dataset-scale pair
(``azure2019`` / ``azure2019-fixture``) is the intended beneficiary —
sharding is what lets the full 83k-function population use every core —
while scenarios that carry a cluster of their own (``capacity-squeeze``,
``hot-shard``) shard only when the node layout matches the shard layout
(see ``docs/ARCHITECTURE.md`` §7 for the exact fallback triggers).

Custom scenarios register with :func:`register_scenario`.
"""

from __future__ import annotations

import dataclasses
import math
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping

import numpy as np

from repro.simulation.cluster import ClusterModel
from repro.simulation.events import EventConfig
from repro.simulation.scheduling import CpuConfig
from repro.traces import (
    AzureTraceGenerator,
    FunctionRecord,
    GeneratorProfile,
    Trace,
    TraceSplit,
    TriggerType,
    generate_dense_poisson,
    generate_flash_crowd,
    generate_periodic,
    generate_rare,
    split_trace,
)
from repro.traces.schema import MINUTES_PER_DAY, DurationProfile, TraceMetadata

__all__ = [
    "Scenario",
    "ScenarioWorkload",
    "SCENARIO_REGISTRY",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "build_scenario",
]


@dataclass(frozen=True)
class ScenarioWorkload:
    """The materialized outcome of building one scenario.

    Attributes
    ----------
    scenario:
        Name of the scenario that produced this workload.
    split:
        Training/simulation trace split.
    cluster:
        Cluster model the scenario prescribes, or ``None`` for the paper's
        uncapped single-host setting.
    events:
        Sub-minute event-engine configuration (arrival-jitter seed, duration
        scaling) the scenario prescribes.  :meth:`Scenario.build` rebases the
        jitter seed on the workload seed, so event-engine runs are as
        deterministic in ``(seed, parameters)`` as the traces themselves.
    """

    scenario: str
    split: TraceSplit
    cluster: ClusterModel | None = None
    events: EventConfig = EventConfig()

    def run_spec(self, base: "RunSpec | None" = None, **overrides: Any) -> "RunSpec":
        """Bundle this workload's cluster (and events) into a :class:`RunSpec`.

        Starting from ``base`` (or the defaults) with ``overrides`` applied,
        the scenario's prescribed cluster model is attached, and its event
        configuration too when the resulting spec runs an event engine
        (minute-granular engines take no event config, matching how the
        experiment suite wires scenario workloads).  The returned spec is
        validated, so e.g. a reference-engine override against a cluster
        scenario fails here with the shared message instead of mid-run.
        """
        from repro.simulation.spec import EVENT_ENGINES, RunSpec

        spec = base if base is not None else RunSpec()
        engine = overrides.get("engine", spec.engine)
        return spec.override(
            cluster=self.cluster,
            events=self.events if engine in EVENT_ENGINES else None,
            **overrides,
        )


@dataclass(frozen=True)
class Scenario:
    """A named, parameterized workload builder.

    Attributes
    ----------
    name:
        Registry key (also the CLI spelling).
    description:
        One-line human description shown by ``spes-repro scenarios``.
    builder:
        Callable producing the :class:`ScenarioWorkload`.  Receives
        ``seed``, ``n_functions``, ``days``, ``training_days`` plus the
        scenario parameters (defaults merged with caller overrides).
    defaults:
        Scenario-specific parameters and their default values; overridable
        per :meth:`build` call and enumerated by the CLI.
    events:
        Duration/jitter parameters of the sub-minute event engine for this
        scenario's workloads — e.g. ``capacity-squeeze`` models a congested
        image registry with slower provisioning, ``bursty`` ships the heavy
        batch runtimes its archetype mix implies.  Attached to every built
        :class:`ScenarioWorkload` with the jitter seed rebased on the
        workload seed.
    """

    name: str
    description: str
    builder: Callable[..., ScenarioWorkload]
    defaults: Mapping[str, Any] = field(default_factory=dict)
    events: EventConfig = EventConfig()

    def build(
        self,
        seed: int = 2024,
        n_functions: int = 400,
        days: float = 14.0,
        training_days: float = 12.0,
        **overrides: Any,
    ) -> ScenarioWorkload:
        """Materialize the scenario's workload deterministically."""
        unknown = set(overrides) - set(self.defaults)
        if unknown:
            raise KeyError(
                f"unknown parameter(s) {sorted(unknown)} for scenario "
                f"{self.name!r}; accepted: {sorted(self.defaults)}"
            )
        params = {**self.defaults, **overrides}
        workload = self.builder(
            seed=seed,
            n_functions=n_functions,
            days=days,
            training_days=training_days,
            **params,
        )
        # The event layer rides along on every workload.  A builder that set
        # its own (e.g. parameter-dependent) event config keeps it; otherwise
        # the scenario-level duration model applies.  Either way the jitter
        # stream is keyed to this workload's seed, so event runs cache as
        # deterministically as the traces themselves.
        events = workload.events if workload.events != EventConfig() else self.events
        return dataclasses.replace(
            workload, events=dataclasses.replace(events, seed=seed)
        )


#: The global scenario registry, keyed by scenario name.
SCENARIO_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (names must be unique)."""
    if scenario.name in SCENARIO_REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    SCENARIO_REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name."""
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    """Names of every registered scenario, sorted."""
    return sorted(SCENARIO_REGISTRY)


def build_scenario(name: str, **kwargs: Any) -> ScenarioWorkload:
    """Shorthand for ``get_scenario(name).build(**kwargs)``."""
    return get_scenario(name).build(**kwargs)


# --------------------------------------------------------------------- #
# Builder helpers
# --------------------------------------------------------------------- #
def _profile(
    seed: int, n_functions: int, days: float, **changes: Any
) -> GeneratorProfile:
    """A generator profile with the unseen window clamped to short traces."""
    return GeneratorProfile(
        n_functions=n_functions,
        duration_days=days,
        unseen_window_days=min(2.0, days / 4.0),
        seed=seed,
        **changes,
    )


def _assemble(
    name: str,
    seed: int,
    records: List[FunctionRecord],
    counts: Dict[str, np.ndarray],
    duration: int,
    training_days: float,
) -> TraceSplit:
    metadata = TraceMetadata(
        name=f"{name}-{len(records)}f",
        duration_minutes=duration,
        seed=seed,
        extra={"scenario": name},
    )
    return split_trace(Trace(records, counts, metadata), training_days=training_days)


# --------------------------------------------------------------------- #
# Built-in builders
# --------------------------------------------------------------------- #
def _build_azure(
    seed: int, n_functions: int, days: float, training_days: float
) -> ScenarioWorkload:
    trace = AzureTraceGenerator(_profile(seed, n_functions, days)).generate()
    return ScenarioWorkload(
        scenario="azure", split=split_trace(trace, training_days=training_days)
    )


def _build_diurnal(
    seed: int,
    n_functions: int,
    days: float,
    training_days: float,
    diurnal_fraction: float,
    amplitude: float,
) -> ScenarioWorkload:
    rng = np.random.default_rng(seed)
    duration = int(round(days * MINUTES_PER_DAY))
    n_diurnal = max(1, int(round(diurnal_fraction * n_functions)))
    records: List[FunctionRecord] = []
    counts: Dict[str, np.ndarray] = {}
    for i in range(n_functions):
        function_id = f"func-{i:05d}"
        app_id = f"app-{i // 3:05d}"
        owner_id = f"owner-{i // 6:05d}"
        if i < n_diurnal:
            rate = float(rng.uniform(0.05, 1.2))
            series = generate_dense_poisson(
                rng, duration, rate_per_minute=rate,
                diurnal=True, diurnal_amplitude=amplitude,
            )
            trigger = TriggerType.HTTP
            archetype = "diurnal_poisson"
        elif i < n_diurnal + max(1, n_functions // 5):
            series = generate_periodic(rng, duration, period=int(rng.integers(15, 240)))
            trigger = TriggerType.TIMER
            archetype = "periodic"
        else:
            series = generate_rare(rng, duration, invocation_count=int(rng.integers(2, 8)))
            trigger = TriggerType.OTHERS
            archetype = "rare"
        records.append(
            FunctionRecord(function_id, app_id, owner_id, trigger, archetype=archetype)
        )
        counts[function_id] = series
    return ScenarioWorkload(
        scenario="diurnal",
        split=_assemble("diurnal", seed, records, counts, duration, training_days),
    )


def _build_bursty(
    seed: int, n_functions: int, days: float, training_days: float
) -> ScenarioWorkload:
    profile = _profile(
        seed,
        n_functions,
        days,
        archetype_mix={
            "bursty": 0.40,
            "pulsed": 0.28,
            "rare_possible": 0.12,
            "rare_unknown": 0.10,
            "dense_poisson": 0.06,
            "chained": 0.04,
        },
    )
    trace = AzureTraceGenerator(profile).generate()
    return ScenarioWorkload(
        scenario="bursty", split=split_trace(trace, training_days=training_days)
    )


def _build_drift(
    seed: int,
    n_functions: int,
    days: float,
    training_days: float,
    drifting_fraction: float,
) -> ScenarioWorkload:
    profile = _profile(
        seed,
        n_functions,
        days,
        drifting_fraction=drifting_fraction,
        archetype_mix={
            "periodic": 0.35,
            "dense_poisson": 0.25,
            "quasi_periodic": 0.15,
            "bursty": 0.08,
            "pulsed": 0.07,
            "rare_possible": 0.05,
            "rare_unknown": 0.05,
        },
    )
    trace = AzureTraceGenerator(profile).generate()
    return ScenarioWorkload(
        scenario="drift", split=split_trace(trace, training_days=training_days)
    )


def _build_flash_crowd(
    seed: int,
    n_functions: int,
    days: float,
    training_days: float,
    crowd_fraction: float,
    crowd_minutes: int,
    peak_rate: float,
) -> ScenarioWorkload:
    base = AzureTraceGenerator(_profile(seed, n_functions, days)).generate()
    rng = np.random.default_rng(seed + 0x5EED)
    duration = base.duration_minutes
    sim_start = int(round(training_days * MINUTES_PER_DAY))
    function_ids = base.function_ids
    n_crowd = max(1, int(round(crowd_fraction * len(function_ids))))
    crowd_ids = rng.choice(len(function_ids), size=n_crowd, replace=False)

    counts = {fid: np.array(base.series(fid)) for fid in function_ids}
    # All crowds land inside the simulation window — the point is to hit the
    # evaluated policies with traffic their training window never showed.
    latest_start = max(sim_start, duration - crowd_minutes - 1)
    for position in sorted(int(i) for i in crowd_ids):
        function_id = function_ids[position]
        start = int(rng.integers(sim_start, max(sim_start + 1, latest_start)))
        counts[function_id] = counts[function_id] + generate_flash_crowd(
            rng, duration,
            crowd_start=start, crowd_minutes=crowd_minutes,
            peak_rate=peak_rate, base_rate=0.0,
        )
    return ScenarioWorkload(
        scenario="flash-crowd",
        split=_assemble(
            "flash-crowd", seed, base.records(), counts, duration, training_days
        ),
    )


def _build_capacity_squeeze(
    seed: int,
    n_functions: int,
    days: float,
    training_days: float,
    squeeze: float,
    n_nodes: int,
) -> ScenarioWorkload:
    profile = _profile(
        seed,
        n_functions,
        days,
        archetype_mix={
            "always_warm": 0.05,
            "periodic": 0.20,
            "quasi_periodic": 0.15,
            "dense_poisson": 0.30,
            "bursty": 0.10,
            "pulsed": 0.10,
            "rare_possible": 0.05,
            "rare_unknown": 0.05,
        },
    )
    trace = AzureTraceGenerator(profile).generate()
    split = split_trace(trace, training_days=training_days)
    # Capacity derived from the workload itself: a small multiple of the mean
    # per-minute active set.  Keep-alive policies want an order of magnitude
    # more than that, so eviction pressure is sustained, not incidental.
    index = split.simulation.invocation_index()
    active_per_minute = np.diff(index.indptr)
    mean_active = float(active_per_minute.mean()) if active_per_minute.size else 1.0
    capacity = max(n_nodes, int(round(mean_active * squeeze)))
    cluster = ClusterModel(memory_capacity=capacity, n_nodes=n_nodes)
    return ScenarioWorkload(scenario="capacity-squeeze", split=split, cluster=cluster)


def _hot_shard_id(prefix: str, i: int, n_nodes: int) -> str:
    """A function id the CRC-32 shard deterministically maps to node 0.

    Ids are salted until the hash lands on node 0 — the adversarial shape
    real deployments hit when correlated tenants share an id prefix that
    happens to collide.  The salt search is deterministic, so the scenario's
    traces fingerprint stably.
    """
    import zlib

    salt = 0
    while True:
        function_id = f"{prefix}-{i:05d}" if salt == 0 else f"{prefix}-{i:05d}x{salt}"
        if zlib.crc32(function_id.encode()) % n_nodes == 0:
            return function_id
        salt += 1


def _build_hot_shard(
    seed: int,
    n_functions: int,
    days: float,
    training_days: float,
    hot_fraction: float,
    n_nodes: int,
    squeeze: float,
    hot_rate: float,
) -> ScenarioWorkload:
    rng = np.random.default_rng(seed)
    duration = int(round(days * MINUTES_PER_DAY))
    n_hot = max(1, int(round(hot_fraction * n_functions)))
    n_warm = max(1, n_functions // 4)
    records: List[FunctionRecord] = []
    counts: Dict[str, np.ndarray] = {}
    for i in range(n_functions):
        if i < n_hot:
            # The hot set: dense Poisson traffic whose ids all hash to node 0.
            function_id = _hot_shard_id("hot", i, n_nodes)
            series = generate_dense_poisson(
                rng, duration, rate_per_minute=float(rng.uniform(0.5, hot_rate))
            )
            trigger = TriggerType.HTTP
            archetype = "hot_poisson"
        elif i < n_hot + n_warm:
            function_id = f"warm-{i:05d}"
            series = generate_periodic(rng, duration, period=int(rng.integers(20, 180)))
            trigger = TriggerType.TIMER
            archetype = "periodic"
        else:
            function_id = f"bg-{i:05d}"
            series = generate_rare(rng, duration, invocation_count=int(rng.integers(2, 10)))
            trigger = TriggerType.OTHERS
            archetype = "rare"
        records.append(
            FunctionRecord(
                function_id,
                f"app-{i // 3:05d}",
                f"owner-{i // 6:05d}",
                trigger,
                archetype=archetype,
            )
        )
        counts[function_id] = series
    split = _assemble("hot-shard", seed, records, counts, duration, training_days)
    # The capacity-squeeze recipe: enough room for the cluster-wide mean
    # active set times `squeeze`, so a balanced placement is comfortable while
    # the hash-hot node (carrying ~all the traffic) is squeezed hard.
    index = split.simulation.invocation_index()
    active_per_minute = np.diff(index.indptr)
    mean_active = float(active_per_minute.mean()) if active_per_minute.size else 1.0
    capacity = max(n_nodes, int(round(mean_active * squeeze)))
    cluster = ClusterModel(memory_capacity=capacity, n_nodes=n_nodes)
    return ScenarioWorkload(scenario="hot-shard", split=split, cluster=cluster)


def _build_rotating_periods(
    seed: int,
    n_functions: int,
    days: float,
    training_days: float,
    periodic_fraction: float,
    stretch: float,
) -> ScenarioWorkload:
    """Timer-heavy population whose periods stretch continuously.

    Each periodic function ticks whenever its accumulated phase crosses an
    integer; the instantaneous frequency interpolates linearly from
    ``1/period`` down to ``1/(period * stretch)`` across the trace, so
    inter-invocation gaps grow every single day.  A histogram trained on any
    prefix systematically under-estimates the idle times the suffix
    produces — the canonical shape the streaming mode exists to evaluate.
    """
    rng = np.random.default_rng(seed)
    duration = int(round(days * MINUTES_PER_DAY))
    n_periodic = max(1, int(round(periodic_fraction * n_functions)))
    records: List[FunctionRecord] = []
    counts: Dict[str, np.ndarray] = {}
    for i in range(n_functions):
        function_id = f"func-{i:05d}"
        if i < n_periodic:
            period = float(rng.uniform(15.0, 180.0))
            frequency = np.linspace(
                1.0 / period, 1.0 / (period * stretch), duration
            )
            phase = float(rng.uniform(0.0, 1.0)) + np.cumsum(frequency)
            ticks = np.floor(phase)
            series = np.diff(ticks, prepend=np.floor(phase[0] - frequency[0]))
            series = series.astype(np.int64)
            trigger = TriggerType.TIMER
            archetype = "rotating_periodic"
        else:
            series = generate_rare(
                rng, duration, invocation_count=int(rng.integers(2, 8))
            )
            trigger = TriggerType.OTHERS
            archetype = "rare"
        records.append(
            FunctionRecord(
                function_id,
                f"app-{i // 3:05d}",
                f"owner-{i // 6:05d}",
                trigger,
                archetype=archetype,
            )
        )
        counts[function_id] = series
    return ScenarioWorkload(
        scenario="rotating-periods",
        split=_assemble(
            "rotating-periods", seed, records, counts, duration, training_days
        ),
    )


def _build_load_ramp(
    seed: int,
    n_functions: int,
    days: float,
    training_days: float,
    ramp: float,
    ramp_fraction: float,
) -> ScenarioWorkload:
    """Poisson population whose rates multiply by ``ramp`` across the trace.

    Ramping functions start at a low base rate and grow geometrically to
    ``base * ramp`` by the last minute — a service onboarding traffic.  The
    early (training) window therefore always under-represents the load the
    late (simulation) window carries, in volume *and* in which functions are
    worth keeping warm.
    """
    rng = np.random.default_rng(seed)
    duration = int(round(days * MINUTES_PER_DAY))
    n_ramping = max(1, int(round(ramp_fraction * n_functions)))
    multiplier = np.geomspace(1.0, ramp, duration)
    records: List[FunctionRecord] = []
    counts: Dict[str, np.ndarray] = {}
    for i in range(n_functions):
        function_id = f"func-{i:05d}"
        if i < n_ramping:
            base_rate = float(rng.uniform(0.02, 0.25))
            series = rng.poisson(base_rate * multiplier).astype(np.int64)
            trigger = TriggerType.HTTP
            archetype = "ramping_poisson"
        elif i < n_ramping + max(1, n_functions // 6):
            series = generate_periodic(
                rng, duration, period=int(rng.integers(20, 180))
            )
            trigger = TriggerType.TIMER
            archetype = "periodic"
        else:
            series = generate_rare(
                rng, duration, invocation_count=int(rng.integers(2, 8))
            )
            trigger = TriggerType.OTHERS
            archetype = "rare"
        records.append(
            FunctionRecord(
                function_id,
                f"app-{i // 3:05d}",
                f"owner-{i // 6:05d}",
                trigger,
                archetype=archetype,
            )
        )
        counts[function_id] = series
    return ScenarioWorkload(
        scenario="load-ramp",
        split=_assemble("load-ramp", seed, records, counts, duration, training_days),
    )


def _build_seasonal_mix(
    seed: int,
    n_functions: int,
    days: float,
    training_days: float,
    seasons: int,
    season_days: float,
) -> ScenarioWorkload:
    """The hot subset of the population rotates continuously.

    Functions are partitioned into ``seasons`` groups; each group's Poisson
    rate follows a half-sine activity envelope phase-shifted around a
    ``season_days``-long cycle, with a faint off-season trickle.  Total load
    stays roughly level while *which* functions deserve warmth changes all
    the time — keep-alive state earned during one season is pure waste two
    seasons later.
    """
    if seasons < 2:
        raise ValueError("seasons must be >= 2")
    rng = np.random.default_rng(seed)
    duration = int(round(days * MINUTES_PER_DAY))
    minutes = np.arange(duration, dtype=float)
    cycle = season_days * MINUTES_PER_DAY
    records: List[FunctionRecord] = []
    counts: Dict[str, np.ndarray] = {}
    for i in range(n_functions):
        function_id = f"func-{i:05d}"
        group = i % seasons
        envelope = np.clip(
            np.sin(2.0 * np.pi * (minutes / cycle - group / seasons)), 0.0, None
        )
        peak_rate = float(rng.uniform(0.15, 0.9))
        rate = peak_rate * envelope**2 + 0.005
        series = rng.poisson(rate).astype(np.int64)
        records.append(
            FunctionRecord(
                function_id,
                f"app-{group:05d}-{i // (3 * seasons):04d}",
                f"owner-{i // 6:05d}",
                TriggerType.HTTP,
                archetype=f"seasonal_{group}",
            )
        )
        counts[function_id] = series
    return ScenarioWorkload(
        scenario="seasonal-mix",
        split=_assemble(
            "seasonal-mix", seed, records, counts, duration, training_days
        ),
    )


def _azure2019_day_count(days: float) -> int:
    """Whole dataset days needed to cover a possibly fractional span."""
    return max(1, int(math.ceil(days - 1e-9)))


def _azure2019_trim(trace, days: float, training_days: float) -> TraceSplit:
    """Trim a whole-days load to the requested span and split it."""
    duration = int(round(days * MINUTES_PER_DAY))
    if duration < trace.duration_minutes:
        trace = trace.slice(0, duration, name=trace.metadata.name)
    return split_trace(trace, training_days=training_days)


def _build_azure2019(
    seed: int,
    n_functions: int,
    days: float,
    training_days: float,
    azure_dir: str,
    day_start: int,
    selection: str,
    trigger: str,
) -> ScenarioWorkload:
    from repro.traces.azure2019 import Azure2019Config, Azure2019Dataset

    if not azure_dir:
        raise ValueError(
            "the azure2019 scenario needs the real dataset on disk: pass "
            "`sweep --azure-dir PATH` (or --scenario-param azure_dir=PATH); "
            "download it once with `spes-repro azure fetch --dest PATH`"
        )
    triggers = tuple(part for part in str(trigger).split(",") if part) or None
    config = Azure2019Config(
        days=tuple(range(int(day_start), int(day_start) + _azure2019_day_count(days))),
        triggers=triggers,
        selection=selection,
        max_functions=int(n_functions),
        seed=seed,
    )
    trace = Azure2019Dataset(azure_dir).load(config)
    return ScenarioWorkload(
        scenario="azure2019",
        split=_azure2019_trim(trace, days, training_days),
    )


def _build_azure2019_fixture(
    seed: int,
    n_functions: int,
    days: float,
    training_days: float,
    population: int,
    selection: str,
    trigger: str,
) -> ScenarioWorkload:
    from repro.traces.azure2019 import (
        Azure2019Config,
        Azure2019Dataset,
        write_azure2019_fixture,
    )

    day_files = _azure2019_day_count(days)
    population = max(int(population), n_functions)
    triggers = tuple(part for part in str(trigger).split(",") if part) or None
    config = Azure2019Config(
        days=tuple(range(1, day_files + 1)),
        triggers=triggers,
        selection=selection,
        max_functions=n_functions,
        seed=seed,
    )
    with tempfile.TemporaryDirectory(prefix="azure2019-fixture-") as tmp:
        write_azure2019_fixture(
            tmp, n_functions=population, days=day_files, seed=seed
        )
        # No on-disk cache: the source directory is ephemeral, and fixture
        # ingestion is fast enough to redo per build.
        trace = Azure2019Dataset(tmp, cache_dir=None).load(config)
    return ScenarioWorkload(
        scenario="azure2019-fixture",
        split=_azure2019_trim(trace, days, training_days),
    )


def _build_cpu_starved(
    seed: int,
    n_functions: int,
    days: float,
    training_days: float,
    hot_fraction: float,
    hot_rate: float,
    cores: int,
    scheduler: str,
    slo_ms: float,
) -> ScenarioWorkload:
    """Dense HTTP traffic contending for a deliberately small core pool.

    The hot slice fires continuously at rates up to ``hot_rate`` per minute
    with heavyweight handlers (``execution_scale`` 3x), while the scenario
    prescribes only ``cores`` cores per node — so even perfectly provisioned
    functions queue for CPU and keep-alive quality stops being the whole
    latency story.  The background of periodic/rare functions keeps the
    provisioning problem non-trivial at the same time.
    """
    rng = np.random.default_rng(seed)
    duration = int(round(days * MINUTES_PER_DAY))
    n_hot = max(1, int(round(hot_fraction * n_functions)))
    records: List[FunctionRecord] = []
    counts: Dict[str, np.ndarray] = {}
    for i in range(n_functions):
        function_id = f"func-{i:05d}"
        if i < n_hot:
            series = generate_dense_poisson(
                rng, duration, rate_per_minute=float(rng.uniform(1.0, hot_rate))
            )
            trigger = TriggerType.HTTP
            archetype = "dense_poisson"
        elif i < n_hot + max(1, n_functions // 5):
            series = generate_periodic(
                rng, duration, period=int(rng.integers(20, 120))
            )
            trigger = TriggerType.TIMER
            archetype = "periodic"
        else:
            series = generate_rare(
                rng, duration, invocation_count=int(rng.integers(2, 8))
            )
            trigger = TriggerType.OTHERS
            archetype = "rare"
        records.append(
            FunctionRecord(
                function_id,
                f"app-{i // 3:05d}",
                f"owner-{i // 6:05d}",
                trigger,
                archetype=archetype,
            )
        )
        counts[function_id] = series
    return ScenarioWorkload(
        scenario="cpu-starved",
        split=_assemble(
            "cpu-starved", seed, records, counts, duration, training_days
        ),
        events=EventConfig(
            execution_scale=3.0,
            cpu=CpuConfig(cores_per_node=int(cores), scheduler=str(scheduler)),
            slo_ms=float(slo_ms),
        ),
    )


def _build_long_duration_mix(
    seed: int,
    n_functions: int,
    days: float,
    training_days: float,
    long_fraction: float,
    long_exec_ms: float,
    short_exec_ms: float,
    cores: int,
    scheduler: str,
    slo_ms: float,
) -> ScenarioWorkload:
    """Bimodal service times on a shared core pool: scheduler discrimination.

    A slice of long-running batch functions (measured ``long_exec_ms``
    handlers on queue triggers) shares the cores with a majority of short
    HTTP handlers (``short_exec_ms``).  Under ``fifo`` a long job in front
    of the queue convoys every short request behind it; size-aware
    disciplines (``srtf``, ``las``) cut the short jobs' slowdown at the long
    jobs' expense — exactly the contrast RQ6 measures.  Durations ride on
    the records as measured profiles, so the bimodality is exact rather
    than spread-derived.
    """
    rng = np.random.default_rng(seed)
    duration = int(round(days * MINUTES_PER_DAY))
    n_long = max(1, int(round(long_fraction * n_functions)))
    long_profile = DurationProfile(
        cold_start_ms=600.0, execution_ms=float(long_exec_ms)
    )
    short_profile = DurationProfile(
        cold_start_ms=220.0, execution_ms=float(short_exec_ms)
    )
    records: List[FunctionRecord] = []
    counts: Dict[str, np.ndarray] = {}
    for i in range(n_functions):
        function_id = f"func-{i:05d}"
        if i < n_long:
            series = generate_dense_poisson(
                rng, duration, rate_per_minute=float(rng.uniform(0.1, 0.6))
            )
            trigger = TriggerType.QUEUE
            archetype = "bursty"
            profile = long_profile
        else:
            series = generate_dense_poisson(
                rng, duration, rate_per_minute=float(rng.uniform(0.8, 3.0))
            )
            trigger = TriggerType.HTTP
            archetype = "dense_poisson"
            profile = short_profile
        records.append(
            FunctionRecord(
                function_id,
                f"app-{i // 3:05d}",
                f"owner-{i // 6:05d}",
                trigger,
                archetype=archetype,
                duration=profile,
            )
        )
        counts[function_id] = series
    return ScenarioWorkload(
        scenario="long-duration-mix",
        split=_assemble(
            "long-duration-mix", seed, records, counts, duration, training_days
        ),
        events=EventConfig(
            cpu=CpuConfig(cores_per_node=int(cores), scheduler=str(scheduler)),
            slo_ms=float(slo_ms),
        ),
    )


register_scenario(
    Scenario(
        name="azure",
        description="default synthetic Azure-like population (the paper's setting)",
        builder=_build_azure,
        events=EventConfig(),
    )
)
register_scenario(
    Scenario(
        name="diurnal",
        description="day/night-modulated Poisson HTTP traffic over a timer/rare background",
        builder=_build_diurnal,
        defaults={"diurnal_fraction": 0.6, "amplitude": 0.9},
        # Human-facing request/response traffic: light handlers, quick boots.
        events=EventConfig(cold_start_scale=0.8, execution_scale=0.7),
    )
)
register_scenario(
    Scenario(
        name="bursty",
        description="temporal-locality heavy: hours idle, then dense bursts",
        builder=_build_bursty,
        # Batch-shaped population: heavier runtimes, slower provisioning.
        events=EventConfig(cold_start_scale=1.5, execution_scale=2.0),
    )
)
register_scenario(
    Scenario(
        name="drift",
        description="a large population slice changes behaviour mid-trace",
        builder=_build_drift,
        defaults={"drifting_fraction": 0.35},
        events=EventConfig(),
    )
)
register_scenario(
    Scenario(
        name="flash-crowd",
        description="azure base + sudden unpredictable crowds inside the simulation window",
        builder=_build_flash_crowd,
        defaults={"crowd_fraction": 0.12, "crowd_minutes": 120, "peak_rate": 15.0},
        # Crowds pull cold images through an already-busy registry.
        events=EventConfig(cold_start_scale=1.3),
    )
)
register_scenario(
    Scenario(
        name="capacity-squeeze",
        description="dense population on a sharded cluster with a workload-derived memory cap",
        builder=_build_capacity_squeeze,
        defaults={"squeeze": 2.5, "n_nodes": 4},
        # Under sustained eviction pressure node-local image caches thrash,
        # so re-provisioning costs more than a cold-cache boot.
        events=EventConfig(cold_start_scale=2.0),
    )
)
register_scenario(
    Scenario(
        name="hot-shard",
        description="hot functions deliberately hash onto one node; stresses placement",
        builder=_build_hot_shard,
        defaults={"hot_fraction": 0.25, "n_nodes": 4, "squeeze": 3.0, "hot_rate": 2.0},
        # The melting node's image registry is saturated; boots crawl.
        events=EventConfig(cold_start_scale=1.4),
    )
)
register_scenario(
    Scenario(
        name="rotating-periods",
        description="continuous drift: timer periods stretch steadily over the trace",
        builder=_build_rotating_periods,
        defaults={"periodic_fraction": 0.6, "stretch": 3.0},
        # Scheduled batch jobs: heavier runtimes than request/response code.
        events=EventConfig(cold_start_scale=1.2, execution_scale=1.5),
    )
)
register_scenario(
    Scenario(
        name="load-ramp",
        description="continuous drift: Poisson rates ramp multiplicatively across the trace",
        builder=_build_load_ramp,
        defaults={"ramp": 8.0, "ramp_fraction": 0.7},
        # A growing service pulls ever more images through one registry.
        events=EventConfig(cold_start_scale=1.3),
    )
)
register_scenario(
    Scenario(
        name="seasonal-mix",
        description="continuous drift: the hot subset of functions rotates around the clock",
        builder=_build_seasonal_mix,
        defaults={"seasons": 4, "season_days": 1.0},
        events=EventConfig(),
    )
)
register_scenario(
    Scenario(
        name="azure2019",
        description=(
            "the real Azure 2019 dataset (needs --azure-dir; "
            "`spes-repro azure fetch` downloads it)"
        ),
        builder=_build_azure2019,
        defaults={
            "azure_dir": "",
            "day_start": 1,
            "selection": "top",
            "trigger": "",
        },
        # Measured per-function durations ride on the records themselves;
        # the scenario-level config stays neutral.
        events=EventConfig(),
    )
)
register_scenario(
    Scenario(
        name="azure2019-fixture",
        description=(
            "hermetic end-to-end run of the real-trace ingestion pipeline "
            "over generated fixture CSVs"
        ),
        builder=_build_azure2019_fixture,
        defaults={"population": 0, "selection": "all", "trigger": ""},
        events=EventConfig(),
    )
)
register_scenario(
    Scenario(
        name="cpu-starved",
        description="dense heavyweight HTTP traffic contending for a small per-node core pool",
        builder=_build_cpu_starved,
        defaults={
            "hot_fraction": 0.5,
            "hot_rate": 6.0,
            "cores": 2,
            "scheduler": "fifo",
            "slo_ms": 1000.0,
        },
        # The builder attaches the CPU/SLO config itself (it depends on the
        # cores/scheduler/slo_ms parameters); this registry-level default is
        # only the fallback if the builder's is ever bypassed.
        events=EventConfig(execution_scale=3.0, cpu=CpuConfig(cores_per_node=2), slo_ms=1000.0),
    )
)
register_scenario(
    Scenario(
        name="long-duration-mix",
        description="bimodal service times on shared cores: convoys under fifo, relief under srtf/las",
        builder=_build_long_duration_mix,
        defaults={
            "long_fraction": 0.2,
            "long_exec_ms": 2000.0,
            "short_exec_ms": 60.0,
            "cores": 2,
            "scheduler": "fifo",
            "slo_ms": 500.0,
        },
        events=EventConfig(cpu=CpuConfig(cores_per_node=2), slo_ms=500.0),
    )
)
