"""Intra-node CPU scheduling for the event engines.

The event layer (:mod:`repro.simulation.events`) models *queueing for
provisioning*: cold invocations wait for their function's container to come
up.  This module adds the next stage of the pipeline — *queueing for CPU*.
Each node exposes a finite pool of cores, and every invocation that survives
provisioning must be scheduled onto a core before it can execute.  The pool
is driven by a pluggable :class:`InvocationScheduler`; four textbook
disciplines ship in the registry:

``fifo``
    Non-preemptive first-come-first-served over ``M`` cores.  An invocation
    grabs the earliest-free core and runs to completion.
``rr``
    Round-robin: jobs take turns in fixed quanta (:data:`QUANTUM_S`); a job
    that exhausts its quantum rejoins the tail of the ready queue.
``srtf``
    Shortest-remaining-time-first, fully preemptive: at every instant the
    ``M`` jobs with the least remaining service hold the cores.  Exact
    (event-driven), not quantum-approximated.
``las``
    Least-attained-service: the jobs that have received the least CPU so far
    run next, approximated with the same quantum as ``rr``.  Favours short
    jobs without knowing service times in advance.

The contract is deliberately tiny: a scheduler receives per-invocation
arrival and service times (seconds, within one minute of one node) and
returns completion times.  Pools are *memoryless across minutes* — the
minute-granular engines assume executions complete within their minute, and
the CPU layer inherits that assumption rather than leaking backlog across
the observer boundary (which would desynchronise the fingerprinted minute
aggregates).

Determinism: schedulers are pure functions of their inputs (no RNG), so the
only randomness in the CPU layer is the arrival jitter drawn by
:class:`~repro.simulation.events.EventTracker` from its own seeded stream.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "QUANTUM_S",
    "CpuConfig",
    "InvocationScheduler",
    "FifoScheduler",
    "RoundRobinScheduler",
    "SrtfScheduler",
    "LasScheduler",
    "register_scheduler",
    "get_scheduler",
    "scheduler_names",
]

#: Time slice, in seconds, used by the quantum-based disciplines (``rr`` and
#: ``las``).  50 ms matches the order of magnitude of real CFS slices and is
#: short relative to the default 100 ms execution profile, so sharing is
#: visible without making the simulation loop pathological.
QUANTUM_S = 0.05

_EPS = 1e-9


class InvocationScheduler:
    """Base class for intra-node CPU scheduling disciplines.

    Subclasses implement :meth:`schedule`; instances are stateless and
    shared via the module registry, so ``schedule`` must not keep state
    between calls.
    """

    #: Registry key; subclasses override.
    name = "base"

    def schedule(
        self,
        arrival_s: np.ndarray,
        service_s: np.ndarray,
        cores: int,
    ) -> np.ndarray:
        """Return per-invocation completion times.

        Parameters
        ----------
        arrival_s:
            Time (seconds) each invocation becomes ready to run, i.e. after
            any provisioning wait.  Not necessarily sorted.
        service_s:
            CPU service demand of each invocation, in seconds (``>= 0``).
        cores:
            Number of cores in the pool (``>= 1``).

        Returns
        -------
        numpy.ndarray
            ``completion_s[i] >= arrival_s[i] + service_s[i]`` for every
            invocation; the difference beyond service time is CPU queueing
            delay under this discipline.
        """

        raise NotImplementedError


class FifoScheduler(InvocationScheduler):
    """Non-preemptive first-come-first-served over ``M`` cores."""

    name = "fifo"

    def schedule(
        self, arrival_s: np.ndarray, service_s: np.ndarray, cores: int
    ) -> np.ndarray:
        n = arrival_s.size
        completion = np.empty(n, dtype=np.float64)
        if n == 0:
            return completion
        order = np.argsort(arrival_s, kind="stable")
        free = [0.0] * cores
        heapq.heapify(free)
        for i in order:
            core_free = heapq.heappop(free)
            start = core_free if core_free > arrival_s[i] else arrival_s[i]
            done = start + service_s[i]
            completion[i] = done
            heapq.heappush(free, done)
        return completion


def _preemptive_schedule(
    arrival_s: np.ndarray,
    service_s: np.ndarray,
    cores: int,
    discipline: str,
    quantum: float | None,
) -> np.ndarray:
    """Shared event loop for the preemptive disciplines.

    ``discipline`` selects the priority key of each ready job (lower runs
    first, ties broken by admission order):

    - ``"srtf"``: remaining service.
    - ``"las"``: attained service.
    - ``"rr"``: time of last scheduling decision (least-recently-run first),
      which with a quantum reproduces round-robin turn taking.

    ``quantum`` bounds each dispatch; ``None`` runs until the next arrival
    or completion (only sound for ``srtf``, whose priorities are stable
    while a job runs).
    """

    n = arrival_s.size
    completion = np.empty(n, dtype=np.float64)
    if n == 0:
        return completion

    # Zero-service jobs complete the instant they arrive; keeping them out of
    # the loop avoids zero-length dispatch steps.
    runnable = service_s > _EPS
    completion[~runnable] = arrival_s[~runnable] + service_s[~runnable]

    order = np.argsort(arrival_s, kind="stable")
    order = order[runnable[order]]
    n_jobs = order.size
    if n_jobs == 0:
        return completion

    remaining = service_s.astype(np.float64).copy()
    attained = np.zeros(n, dtype=np.float64)
    priority = np.zeros(n, dtype=np.float64)
    seq = np.zeros(n, dtype=np.int64)

    active: list[int] = []
    t = 0.0
    next_arrival = 0  # index into ``order``
    finished = 0
    stamp = 0  # monotonically increasing admission / dispatch counter

    while finished < n_jobs:
        if not active:
            job = int(order[next_arrival])
            t = max(t, float(arrival_s[job]))
        # Admit everything that has arrived by ``t``.
        while next_arrival < n_jobs and arrival_s[order[next_arrival]] <= t + _EPS:
            job = int(order[next_arrival])
            seq[job] = stamp
            priority[job] = float(stamp)  # rr: new arrivals join the tail
            stamp += 1
            active.append(job)
            next_arrival += 1

        if discipline == "srtf":
            key = remaining
        elif discipline == "las":
            key = attained
        else:  # rr
            key = priority
        active.sort(key=lambda j: (key[j], seq[j]))
        run = active[:cores]

        # Length of this dispatch: bounded by the shortest remaining service
        # in the run set, the quantum, and the next arrival (which may
        # preempt under srtf / reorder the queue under rr/las).
        step = min(float(remaining[j]) for j in run)
        if quantum is not None and quantum < step:
            step = quantum
        if next_arrival < n_jobs:
            until_arrival = float(arrival_s[order[next_arrival]]) - t
            if until_arrival < step:
                step = max(until_arrival, 0.0)
        if step <= _EPS:
            # Next arrival is (numerically) simultaneous: admit it and
            # re-evaluate the run set before burning CPU time.
            t = float(arrival_s[order[next_arrival]])
            continue

        t += step
        for j in run:
            remaining[j] -= step
            attained[j] += step
            priority[j] = float(stamp)  # rr: just ran -> back of the queue
            stamp += 1
            if remaining[j] <= _EPS:
                completion[j] = t
                finished += 1
        active = [j for j in active if remaining[j] > _EPS]

    return completion


class RoundRobinScheduler(InvocationScheduler):
    """Quantum-based round-robin (:data:`QUANTUM_S` time slices)."""

    name = "rr"

    def schedule(
        self, arrival_s: np.ndarray, service_s: np.ndarray, cores: int
    ) -> np.ndarray:
        return _preemptive_schedule(arrival_s, service_s, cores, "rr", QUANTUM_S)


class SrtfScheduler(InvocationScheduler):
    """Preemptive shortest-remaining-time-first (exact, event-driven)."""

    name = "srtf"

    def schedule(
        self, arrival_s: np.ndarray, service_s: np.ndarray, cores: int
    ) -> np.ndarray:
        return _preemptive_schedule(arrival_s, service_s, cores, "srtf", None)


class LasScheduler(InvocationScheduler):
    """Least-attained-service, quantum-approximated."""

    name = "las"

    def schedule(
        self, arrival_s: np.ndarray, service_s: np.ndarray, cores: int
    ) -> np.ndarray:
        return _preemptive_schedule(arrival_s, service_s, cores, "las", QUANTUM_S)


_SCHEDULERS: Dict[str, InvocationScheduler] = {}


def register_scheduler(scheduler: InvocationScheduler) -> InvocationScheduler:
    """Add ``scheduler`` to the registry under its :attr:`name`."""

    _SCHEDULERS[scheduler.name] = scheduler
    return scheduler


def get_scheduler(name: str) -> InvocationScheduler:
    """Look up a scheduler by registry name.

    Raises
    ------
    KeyError
        If ``name`` is not registered; the message lists valid names.
    """

    try:
        return _SCHEDULERS[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; registered: {', '.join(scheduler_names())}"
        ) from None


def scheduler_names() -> Tuple[str, ...]:
    """Sorted tuple of registered scheduler names."""

    return tuple(sorted(_SCHEDULERS))


register_scheduler(FifoScheduler())
register_scheduler(RoundRobinScheduler())
register_scheduler(SrtfScheduler())
register_scheduler(LasScheduler())


@dataclass(frozen=True)
class CpuConfig:
    """Finite-core configuration for the event engines' CPU layer.

    Attributes
    ----------
    cores_per_node:
        Number of cores in each node's pool.  With a cluster configured the
        pool is per node (placement decides which functions contend); without
        one, every function shares a single node-wide pool.
    scheduler:
        Registry name of the :class:`InvocationScheduler` driving the pool
        (``fifo``, ``rr``, ``srtf``, or ``las``).

    Leaving :attr:`~repro.simulation.events.EventConfig.cpu` as ``None``
    models infinitely many cores: no CPU queueing, no extra RNG draws, and
    byte-identical results to the pre-CPU event layer.
    """

    cores_per_node: int
    scheduler: str = "fifo"

    def __post_init__(self) -> None:
        if self.cores_per_node < 1:
            raise ValueError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )
        if self.scheduler not in _SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"registered: {', '.join(scheduler_names())}"
            )
