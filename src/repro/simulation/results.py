"""Simulation results: per-function statistics and run-level aggregates."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

import numpy as np


@dataclass
class FunctionStats:
    """Cold-start and memory statistics for one function over a run.

    Attributes
    ----------
    function_id:
        Id of the function.
    invocations:
        Number of minutes the function was invoked at least once.  Following
        the paper's simulation principle (all executions fit in a minute),
        each invoked minute contributes one provisioning decision, so the
        cold-start rate is computed over invoked minutes.
    cold_starts:
        Number of invoked minutes at which the function was not resident.
    wasted_memory_time:
        Minutes the function's image sat in memory without being invoked.
    """

    function_id: str
    invocations: int = 0
    cold_starts: int = 0
    wasted_memory_time: int = 0

    @property
    def cold_start_rate(self) -> float:
        """Cold starts divided by invocations (0 for never-invoked functions)."""
        if self.invocations == 0:
            return 0.0
        return self.cold_starts / self.invocations

    @property
    def always_cold(self) -> bool:
        """True when every invocation of the function was a cold start."""
        return self.invocations > 0 and self.cold_starts == self.invocations

    @property
    def never_cold(self) -> bool:
        """True when the function was invoked and never experienced a cold start."""
        return self.invocations > 0 and self.cold_starts == 0

    @property
    def wmt_ratio(self) -> float:
        """Wasted memory time divided by invoked minutes (paper Fig. 12)."""
        if self.invocations == 0:
            return float(self.wasted_memory_time)
        return self.wasted_memory_time / self.invocations


@dataclass
class ClusterStats:
    """Capacity-constrained outcomes of a run under a cluster model.

    Only present on results produced with a
    :class:`~repro.simulation.cluster.ClusterModel`; the paper's uncapped
    single-host setting leaves :attr:`SimulationResult.cluster` as ``None``.

    Attributes
    ----------
    n_nodes:
        Number of nodes the capacity was sharded over.
    memory_capacity:
        Total instance units the cluster could keep resident.
    node_capacity:
        Instance units per node (``ceil(memory_capacity / n_nodes)``).
    evictions:
        Instances the arbiter forced out of memory under capacity pressure
        while the policy proposed to keep them.
    capacity_cold_starts:
        Cold starts charged to functions the policy had declared resident —
        they would have been warm starts on an uncapped host.
    node_usage:
        Per-minute loaded units per node, shape ``(duration, n_nodes)``.
        Includes on-demand loads, so a minute may exceed ``node_capacity``
        transiently; the cap applies to what stays resident between minutes.
    placement:
        Name of the placement strategy the run used (``"hash"`` is the
        original static shard; see :mod:`repro.simulation.placement`).
    migrations:
        Sustained-pressure re-placements: instances moved to another node
        after their node stayed above the pressure threshold for K
        consecutive minutes.  0 unless the cluster model enables migration.
    migration_cold_starts:
        Cold starts that materialized because the invoked function had just
        been migrated (a subset of :attr:`capacity_cold_starts`: the policy
        had declared those functions resident).
    node_evictions:
        Per-node capacity evictions, shape ``(n_nodes,)``; sums to
        :attr:`evictions`.  ``None`` on results produced before per-node
        arbiters existed (unpickled from older caches).
    capacity_unit:
        What :attr:`memory_capacity`/:attr:`node_capacity` denominate:
        ``"instances"`` (default) or ``"mb"``.  Under ``"mb"`` the
        :attr:`node_usage` entries are measured *kilobytes* (the integer
        working unit of MB-mode accounting), and utilization is computed
        against the KB node capacity.
    """

    n_nodes: int
    memory_capacity: int
    node_capacity: int
    evictions: int
    capacity_cold_starts: int
    node_usage: np.ndarray
    placement: str = "hash"
    migrations: int = 0
    migration_cold_starts: int = 0
    node_evictions: np.ndarray | None = None
    capacity_unit: str = "instances"

    @property
    def mean_node_utilization(self) -> np.ndarray:
        """Mean per-node utilization (loaded load / node capacity)."""
        if self.node_usage.size == 0:
            return np.zeros(self.n_nodes, dtype=float)
        # MB-denominated stats record usage in KB; unit stats in instances.
        if getattr(self, "capacity_unit", "instances") == "mb":
            denominator = float(self.node_capacity) * 1024.0
        else:
            denominator = float(self.node_capacity)
        return self.node_usage.mean(axis=0) / denominator

    @property
    def peak_node_usage(self) -> int:
        """Highest loaded-unit count observed on any node in any minute."""
        if self.node_usage.size == 0:
            return 0
        return int(self.node_usage.max())

    @property
    def load_imbalance(self) -> float:
        """Coefficient of variation of the per-node mean load.

        0 means every node carried the same average load; a hot-shard run
        under hash placement drives this up, and the load-aware strategies
        drive it back down.  Single-node clusters are perfectly balanced by
        definition.
        """
        if self.node_usage.size == 0 or self.n_nodes <= 1:
            return 0.0
        means = self.node_usage.mean(axis=0)
        overall = float(means.mean())
        if overall == 0.0:
            return 0.0
        return float(means.std() / overall)


@dataclass
class LatencyStats:
    """Per-event cold-start latency distribution of an event-granular run.

    Only present on results produced by the event-granular engines —
    ``event`` and ``event-feedback`` (:mod:`repro.simulation.events`); the
    minute-granular engines (``reference``, ``vectorized``) count cold
    starts but cannot attribute latency, so they leave
    :attr:`SimulationResult.latency` as ``None``.

    Latency is attributed to two kinds of events:

    * *initiations* — the first invocation of a non-resident function in a
      minute, which triggers provisioning and waits the function's full
      ``cold_start_ms``.  Initiations correspond one-to-one with the
      minute-granular cold-start count.
    * *delayed events* — invocations arriving while that provisioning is
      still in flight; they queue and wait the residual time.

    All other events are *warm hits* with zero cold-start latency.  The raw
    per-event waits are retained (cold events are a small fraction of
    traffic), so percentiles are exact and merging across seeds is simply
    sample pooling — associative and commutative, see :meth:`merge`.

    When the run configured an intra-node CPU layer
    (:class:`~repro.simulation.scheduling.CpuConfig`), every event is
    additionally scheduled onto its node's finite core pool *after* any
    provisioning wait, populating the ``cpu_*`` counts, per-event
    :attr:`slowdown` samples, and — when
    :attr:`~repro.simulation.events.EventConfig.slo_ms` is set — the SLO
    violation counters.  Without a ``CpuConfig`` those fields stay at their
    zero/empty defaults.

    Like the wall-clock overhead fields, latency is an *observation layered
    on top of* the minute-granular simulation state: it never feeds back into
    residency decisions, and it is deliberately excluded from
    :meth:`SimulationResult.deterministic_fingerprint` so event-engine
    results remain fingerprint-comparable with the vectorized engine's.
    """

    #: All invocation events in the simulation window (sum of trace counts).
    total_events: int = 0
    #: Events served warm, with zero cold-start latency.
    warm_events: int = 0
    #: Events that triggered provisioning (== minute-granular cold starts).
    cold_start_events: int = 0
    #: Events that queued behind an in-flight provisioning.
    delayed_events: int = 0
    #: Initiations attributable to a capacity trim by the cluster arbiter
    #: (== :attr:`ClusterStats.capacity_cold_starts`; 0 for uncapped runs).
    capacity_cold_events: int = 0
    #: Initiations attributable to a sustained-pressure migration (==
    #: :attr:`ClusterStats.migration_cold_starts`; a subset of the
    #: capacity-attributed count, 0 unless the cluster migrates).
    migration_cold_events: int = 0
    #: Per-event cold-start waits in milliseconds (initiations + delayed).
    cold_wait_ms: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=float)
    )
    #: The same waits, grouped by function id (functions with none omitted).
    per_function_wait_ms: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Total execution time of all events (busy milliseconds), from the
    #: per-function :class:`~repro.traces.schema.DurationProfile`.
    total_execution_ms: float = 0.0
    #: Events routed through a finite core pool (all events of the run when
    #: :class:`~repro.simulation.scheduling.CpuConfig` is set, 0 otherwise).
    cpu_scheduled_events: int = 0
    #: Scheduled events that queued for a core (positive CPU wait).
    cpu_delayed_events: int = 0
    #: Per-event CPU-queueing waits in milliseconds (delayed events only).
    cpu_wait_ms: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=float)
    )
    #: Per-event slowdown — sojourn time (provisioning wait + CPU wait +
    #: execution) divided by execution time — for every scheduled event.
    #: 1.0 means "as fast as an empty system"; zero-service events are
    #: recorded as 1.0 by convention.
    slowdown: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=float))
    #: The SLO threshold (milliseconds of sojourn time) events were checked
    #: against; ``None`` when the run had no SLO configured.
    slo_ms: float | None = None
    #: Events checked against the SLO (== total events when an SLO is set).
    slo_checked_events: int = 0
    #: Checked events whose sojourn time exceeded the SLO.
    slo_violations: int = 0

    # ------------------------------------------------------------------ #
    def _percentile(self, percentile: float) -> float:
        if self.cold_wait_ms.size == 0:
            return 0.0
        return float(np.percentile(self.cold_wait_ms, percentile))

    @property
    def p50_ms(self) -> float:
        """Median cold-start wait over all latency-affected events."""
        return self._percentile(50.0)

    @property
    def p95_ms(self) -> float:
        """95th-percentile cold-start wait."""
        return self._percentile(95.0)

    @property
    def p99_ms(self) -> float:
        """99th-percentile cold-start wait."""
        return self._percentile(99.0)

    @property
    def mean_ms(self) -> float:
        """Mean cold-start wait over latency-affected events (0 when none)."""
        if self.cold_wait_ms.size == 0:
            return 0.0
        return float(self.cold_wait_ms.mean())

    @property
    def max_ms(self) -> float:
        """Worst cold-start wait observed."""
        if self.cold_wait_ms.size == 0:
            return 0.0
        return float(self.cold_wait_ms.max())

    @property
    def cold_event_fraction(self) -> float:
        """Fraction of events that experienced any cold-start latency."""
        if self.total_events == 0:
            return 0.0
        return (self.cold_start_events + self.delayed_events) / self.total_events

    # ------------------------------------------------------------------ #
    # CPU-scheduling / SLO aggregates (zero / empty without a CpuConfig)
    # ------------------------------------------------------------------ #
    def _slowdown_percentile(self, percentile: float) -> float:
        if self.slowdown.size == 0:
            return 0.0
        return float(np.percentile(self.slowdown, percentile))

    @property
    def slowdown_p50(self) -> float:
        """Median per-event slowdown (0.0 when no events were scheduled)."""
        return self._slowdown_percentile(50.0)

    @property
    def slowdown_p99(self) -> float:
        """99th-percentile per-event slowdown."""
        return self._slowdown_percentile(99.0)

    @property
    def slowdown_mean(self) -> float:
        """Mean per-event slowdown (0.0 when no events were scheduled)."""
        if self.slowdown.size == 0:
            return 0.0
        return float(self.slowdown.mean())

    @property
    def cpu_wait_p99_ms(self) -> float:
        """99th-percentile CPU-queueing wait among delayed events."""
        if self.cpu_wait_ms.size == 0:
            return 0.0
        return float(np.percentile(self.cpu_wait_ms, 99.0))

    @property
    def cpu_delayed_fraction(self) -> float:
        """Fraction of scheduled events that queued for a core."""
        if self.cpu_scheduled_events == 0:
            return 0.0
        return self.cpu_delayed_events / self.cpu_scheduled_events

    @property
    def slo_violation_rate(self) -> float:
        """SLO violations over checked events (0.0 when nothing checked)."""
        if self.slo_checked_events == 0:
            return 0.0
        return self.slo_violations / self.slo_checked_events

    def function_tail(self, percentile: float = 99.0) -> Dict[str, float]:
        """Per-function tail latency: ``{function_id: percentile wait}``.

        Only functions that experienced at least one latency-affected event
        appear; a function served entirely warm has no tail to report.
        """
        # Imported lazily: repro.metrics renders tables *of* results, so a
        # module-level import here would be circular.
        from repro.metrics.distribution import tail_by_key

        return tail_by_key(self.per_function_wait_ms, percentile)

    # ------------------------------------------------------------------ #
    @classmethod
    def merge(cls, stats: Iterable["LatencyStats"]) -> "LatencyStats":
        """Pool several runs' latency observations into one distribution.

        Counts add and raw samples concatenate, so the merge is associative
        and commutative (up to sample order, which no percentile observes):
        merging per-seed statistics in any grouping yields identical
        aggregates.  This is the multi-seed aggregation the experiment suite
        uses for its latency tables.
        """
        from repro.metrics.distribution import merge_samples

        stats = list(stats)
        merged = cls()
        per_function: Dict[str, list[np.ndarray]] = {}
        for item in stats:
            merged.total_events += item.total_events
            merged.warm_events += item.warm_events
            merged.cold_start_events += item.cold_start_events
            merged.delayed_events += item.delayed_events
            merged.capacity_cold_events += item.capacity_cold_events
            # getattr: stats unpickled from caches written before migration
            # accounting existed carry no field.
            merged.migration_cold_events += getattr(item, "migration_cold_events", 0)
            merged.total_execution_ms += item.total_execution_ms
            # getattr guards, as above: the CPU/SLO fields postdate older
            # cached pickles.
            merged.cpu_scheduled_events += getattr(item, "cpu_scheduled_events", 0)
            merged.cpu_delayed_events += getattr(item, "cpu_delayed_events", 0)
            merged.slo_checked_events += getattr(item, "slo_checked_events", 0)
            merged.slo_violations += getattr(item, "slo_violations", 0)
            item_slo = getattr(item, "slo_ms", None)
            if item_slo is not None and merged.slo_ms is None:
                merged.slo_ms = item_slo
            for function_id, samples in item.per_function_wait_ms.items():
                per_function.setdefault(function_id, []).append(
                    np.asarray(samples, dtype=float)
                )
        empty = np.zeros(0, dtype=float)
        merged.cold_wait_ms = merge_samples(item.cold_wait_ms for item in stats)
        merged.cpu_wait_ms = merge_samples(
            getattr(item, "cpu_wait_ms", empty) for item in stats
        )
        merged.slowdown = merge_samples(
            getattr(item, "slowdown", empty) for item in stats
        )
        merged.per_function_wait_ms = {
            function_id: merge_samples(groups)
            for function_id, groups in sorted(per_function.items())
        }
        return merged

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, float]:
        """Flat headline numbers, merged into the result-level summary."""
        from repro.metrics.distribution import percentile_summary

        percentiles = percentile_summary(self.cold_wait_ms)
        summary = {
            "events": float(self.total_events),
            "cold_event_fraction": self.cold_event_fraction,
            **{f"lat_{label}_ms": value for label, value in percentiles.items()},
            "lat_mean_ms": self.mean_ms,
            "lat_max_ms": self.max_ms,
        }
        if self.cpu_scheduled_events > 0:
            summary["slowdown_p50"] = self.slowdown_p50
            summary["slowdown_p99"] = self.slowdown_p99
            summary["cpu_delayed_fraction"] = self.cpu_delayed_fraction
            summary["cpu_wait_p99_ms"] = self.cpu_wait_p99_ms
        if self.slo_checked_events > 0:
            summary["slo_violation_rate"] = self.slo_violation_rate
        return summary


@dataclass
class SimulationResult:
    """Aggregated outcome of one policy simulated over one trace window.

    Attributes
    ----------
    policy_name:
        Name of the simulated policy.
    duration_minutes:
        Length of the simulation window.
    per_function:
        Statistics for every function that was invoked or kept resident.
    memory_usage:
        Per-minute number of loaded instances.
    total_wasted_memory_time:
        Sum of idle instance-minutes over the run.
    emcr:
        Effective memory consumption ratio.
    overhead_seconds:
        Total wall-clock time spent inside the policy's decision code.
    overhead_per_minute:
        Mean policy decision time per simulated minute, in seconds.
    cluster:
        Capacity-constrained statistics when the run used a
        :class:`~repro.simulation.cluster.ClusterModel`; ``None`` in the
        paper's uncapped setting.
    latency:
        Per-event cold-start latency distribution when the run used one of
        the event-granular engines (``event`` or ``event-feedback``);
        ``None`` for the minute-granular engines.
    memory_mode:
        ``"unit"`` (the paper's one-abstract-unit-per-instance accounting,
        always collected) or ``"mb"`` (measured footprints additionally
        collected — the fields below).  Unit-mode results hash and pickle
        exactly as before this field existed.
    memory_usage_kb:
        Per-minute loaded *kilobytes* (measured footprints, integer), MB
        mode only; ``None`` otherwise.
    total_wasted_memory_kb:
        Idle KB-minutes over the run (footprint-weighted WMT), MB mode only.
    emcr_mb:
        Footprint-weighted effective memory consumption ratio, MB mode only
        (0.0 otherwise; derived from integer KB totals so it is exact and
        never NaN).
    """

    policy_name: str
    duration_minutes: int
    per_function: Dict[str, FunctionStats] = field(default_factory=dict)
    memory_usage: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    total_wasted_memory_time: int = 0
    emcr: float = 0.0
    overhead_seconds: float = 0.0
    overhead_per_minute: float = 0.0
    cluster: ClusterStats | None = None
    latency: LatencyStats | None = None
    memory_mode: str = "unit"
    memory_usage_kb: np.ndarray | None = None
    total_wasted_memory_kb: int = 0
    emcr_mb: float = 0.0

    # ------------------------------------------------------------------ #
    # Cold-start aggregates
    # ------------------------------------------------------------------ #
    def invoked_functions(self) -> list[FunctionStats]:
        """Statistics for functions invoked at least once during the run."""
        return [stats for stats in self.per_function.values() if stats.invocations > 0]

    @property
    def total_invocations(self) -> int:
        """Total invoked minutes over all functions."""
        return sum(stats.invocations for stats in self.per_function.values())

    @property
    def total_cold_starts(self) -> int:
        """Total cold starts over all functions."""
        return sum(stats.cold_starts for stats in self.per_function.values())

    @property
    def overall_cold_start_rate(self) -> float:
        """Cold starts divided by invocations over the whole run."""
        invocations = self.total_invocations
        if invocations == 0:
            return 0.0
        return self.total_cold_starts / invocations

    def cold_start_rates(self) -> np.ndarray:
        """Function-wise cold-start rates (only functions that were invoked)."""
        rates = [stats.cold_start_rate for stats in self.invoked_functions()]
        return np.asarray(rates, dtype=float)

    def cold_start_rate_percentile(self, percentile: float) -> float:
        """Percentile of the function-wise cold-start-rate distribution.

        The paper's headline metric is the 75th percentile (``Q3-CSR``).
        """
        rates = self.cold_start_rates()
        if rates.size == 0:
            return 0.0
        return float(np.percentile(rates, percentile))

    @property
    def q3_cold_start_rate(self) -> float:
        """The 75th-percentile function-wise cold-start rate."""
        return self.cold_start_rate_percentile(75.0)

    @property
    def always_cold_fraction(self) -> float:
        """Fraction of invoked functions whose every invocation was cold."""
        invoked = self.invoked_functions()
        if not invoked:
            return 0.0
        return sum(1 for stats in invoked if stats.always_cold) / len(invoked)

    @property
    def never_cold_fraction(self) -> float:
        """Fraction of invoked functions that experienced no cold start at all."""
        invoked = self.invoked_functions()
        if not invoked:
            return 0.0
        return sum(1 for stats in invoked if stats.never_cold) / len(invoked)

    # ------------------------------------------------------------------ #
    # Memory aggregates
    # ------------------------------------------------------------------ #
    @property
    def average_memory_usage(self) -> float:
        """Mean loaded instances per minute."""
        if self.memory_usage.size == 0:
            return 0.0
        return float(self.memory_usage.mean())

    @property
    def peak_memory_usage(self) -> int:
        """Maximum loaded instances in any minute."""
        if self.memory_usage.size == 0:
            return 0
        return int(self.memory_usage.max())

    def wmt_per_function(self) -> Dict[str, int]:
        """Wasted memory time attributed to each function."""
        return {
            function_id: stats.wasted_memory_time
            for function_id, stats in self.per_function.items()
        }

    # ------------------------------------------------------------------ #
    # Measured-footprint (MB-mode) aggregates; zeros outside MB mode
    # ------------------------------------------------------------------ #
    @property
    def average_memory_usage_mb(self) -> float:
        """Mean loaded megabytes per minute (0.0 outside MB mode)."""
        series = getattr(self, "memory_usage_kb", None)
        if series is None or series.size == 0:
            return 0.0
        return float(series.mean()) / 1024.0

    @property
    def peak_memory_usage_mb(self) -> float:
        """Maximum loaded megabytes in any minute (0.0 outside MB mode)."""
        series = getattr(self, "memory_usage_kb", None)
        if series is None or series.size == 0:
            return 0.0
        return float(series.max()) / 1024.0

    @property
    def wasted_memory_mb_minutes(self) -> float:
        """Footprint-weighted WMT in MB-minutes (0.0 outside MB mode)."""
        return float(getattr(self, "total_wasted_memory_kb", 0)) / 1024.0

    # ------------------------------------------------------------------ #
    @classmethod
    def merge_shards(
        cls,
        shard_results: Iterable["SimulationResult | None"],
        cluster_model: "object | None" = None,
    ) -> "SimulationResult":
        """Recombine per-shard results into the one-run equivalent.

        ``shard_results`` is ordered by shard index (``None`` marks a shard
        whose partition held no functions, which contributes zeros).  Every
        merged field is rebuilt from exact integer totals, so for a
        migration-free run the merge is *fingerprint-identical* to the
        unsharded simulation:

        * per-function statistics are a disjoint union across shards;
        * the memory series is the element-wise sum, and the total wasted
          memory time is the plain sum;
        * EMCR is re-derived as ``(loaded - idle) / loaded`` from the summed
          integer loaded/idle minutes — the same two integers the unsharded
          :class:`~repro.simulation.memory.MemoryAccountant` divides;
        * cluster statistics are rebuilt against ``cluster_model`` (shard
          ``i`` ran node ``i`` as a single-node cluster, so per-shard node
          columns concatenate in shard order);
        * latency observations pool via :meth:`LatencyStats.merge` — counts
          are exact, but the wait *values* draw from per-shard jitter streams
          and are excluded from the fingerprint anyway.

        Overhead seconds sum across shards (they measure total CPU spent in
        policy code, not wall clock).
        """
        results = list(shard_results)
        live = [result for result in results if result is not None]
        if not live:
            raise ValueError("merge_shards needs at least one non-empty shard")
        duration = live[0].duration_minutes
        policy_name = live[0].policy_name
        for result in live:
            if result.duration_minutes != duration:
                raise ValueError("shard results cover different durations")
            if result.policy_name != policy_name:
                raise ValueError("shard results come from different policies")

        per_function: Dict[str, FunctionStats] = {}
        memory_usage = np.zeros(duration, dtype=np.int64)
        loaded = 0
        total_wmt = 0
        overhead_seconds = 0.0
        # getattr guards throughout: shard results unpickled from caches
        # written before MB accounting existed carry none of the KB fields.
        memory_mode = getattr(live[0], "memory_mode", "unit")
        memory_usage_kb = (
            np.zeros(duration, dtype=np.int64) if memory_mode != "unit" else None
        )
        loaded_kb = 0
        total_wmt_kb = 0
        for result in live:
            overlap = per_function.keys() & result.per_function.keys()
            if overlap:
                raise ValueError(
                    f"shard partitions overlap on {len(overlap)} function(s)"
                )
            if getattr(result, "memory_mode", "unit") != memory_mode:
                raise ValueError("shard results mix memory modes")
            per_function.update(result.per_function)
            memory_usage += np.ascontiguousarray(result.memory_usage, dtype=np.int64)
            loaded += int(np.asarray(result.memory_usage, dtype=np.int64).sum())
            total_wmt += int(result.total_wasted_memory_time)
            overhead_seconds += result.overhead_seconds
            if memory_usage_kb is not None and result.memory_usage_kb is not None:
                shard_kb = np.ascontiguousarray(
                    result.memory_usage_kb, dtype=np.int64
                )
                memory_usage_kb += shard_kb
                loaded_kb += int(shard_kb.sum())
                total_wmt_kb += int(result.total_wasted_memory_kb)
        emcr = (loaded - total_wmt) / loaded if loaded > 0 else 0.0
        # Same exact-integer re-derivation as the unsharded accountant: the
        # merged MB-mode EMCR is bit-identical, never a float average.
        emcr_mb = (loaded_kb - total_wmt_kb) / loaded_kb if loaded_kb > 0 else 0.0

        cluster = None
        if cluster_model is not None:
            n_nodes = int(cluster_model.n_nodes)
            node_usage = np.zeros((duration, n_nodes), dtype=np.int64)
            node_evictions = np.zeros(n_nodes, dtype=np.int64)
            evictions = 0
            capacity_cold_starts = 0
            for node, result in enumerate(results):
                if result is None or result.cluster is None:
                    continue
                node_usage[:, node] = result.cluster.node_usage[:, 0]
                node_evictions[node] = result.cluster.evictions
                evictions += result.cluster.evictions
                capacity_cold_starts += result.cluster.capacity_cold_starts
            cluster = ClusterStats(
                n_nodes=n_nodes,
                memory_capacity=int(cluster_model.memory_capacity),
                node_capacity=int(cluster_model.node_capacity),
                evictions=evictions,
                capacity_cold_starts=capacity_cold_starts,
                node_usage=node_usage,
                placement=str(cluster_model.placement),
                migrations=0,
                migration_cold_starts=0,
                node_evictions=node_evictions,
                capacity_unit=str(getattr(cluster_model, "capacity_unit", "instances")),
            )

        latencies = [result.latency for result in live if result.latency is not None]
        latency = LatencyStats.merge(latencies) if latencies else None

        return cls(
            policy_name=policy_name,
            duration_minutes=duration,
            per_function=per_function,
            memory_usage=memory_usage,
            total_wasted_memory_time=total_wmt,
            emcr=emcr,
            overhead_seconds=overhead_seconds,
            overhead_per_minute=overhead_seconds / duration if duration else 0.0,
            cluster=cluster,
            latency=latency,
            memory_mode=memory_mode,
            memory_usage_kb=memory_usage_kb,
            total_wasted_memory_kb=total_wmt_kb,
            emcr_mb=emcr_mb,
        )

    # ------------------------------------------------------------------ #
    def deterministic_fingerprint(self) -> str:
        """Content hash over every *simulation-determined* field.

        Two runs of the same policy over the same trace with the same seed
        produce the same fingerprint, whether they ran serially, in a worker
        process, or came from the on-disk cache.  The wall-clock overhead
        fields are excluded: they measure the host, not the simulation.  The
        optional :attr:`latency` block is also excluded: it is a sub-minute
        observation layered on top of the minute-granular state, and keeping
        it out is what lets the equivalence tests assert that the event
        engine's minute aggregates are *fingerprint-identical* to the
        vectorized engine's.
        """
        digest = hashlib.sha256()
        digest.update(self.policy_name.encode())
        digest.update(str(self.duration_minutes).encode())
        for function_id in sorted(self.per_function):
            stats = self.per_function[function_id]
            digest.update(
                f"{function_id}:{stats.invocations}:{stats.cold_starts}:"
                f"{stats.wasted_memory_time};".encode()
            )
        digest.update(np.ascontiguousarray(self.memory_usage, dtype=np.int64).tobytes())
        digest.update(str(self.total_wasted_memory_time).encode())
        digest.update(repr(self.emcr).encode())
        # Results from uncapped runs hash exactly as before this field existed
        # (getattr guards results unpickled from older cache entries).
        cluster = getattr(self, "cluster", None)
        if cluster is not None:
            digest.update(
                f"cluster:{cluster.n_nodes}:{cluster.memory_capacity}:"
                f"{cluster.evictions}:{cluster.capacity_cold_starts};".encode()
            )
            digest.update(
                np.ascontiguousarray(cluster.node_usage, dtype=np.int64).tobytes()
            )
            # Placement joined the model after the hash-sharded golds were
            # pinned: the default strategy without migrations hashes exactly
            # as before, while every other configuration is distinguished.
            placement = getattr(cluster, "placement", "hash")
            migrations = getattr(cluster, "migrations", 0)
            if placement != "hash" or migrations:
                digest.update(
                    f"placement:{placement}:{migrations}:"
                    f"{getattr(cluster, 'migration_cold_starts', 0)};".encode()
                )
            # MB-denominated capacities joined after the instance-mode golds
            # were pinned: instance-unit stats hash exactly as before.
            capacity_unit = getattr(cluster, "capacity_unit", "instances")
            if capacity_unit != "instances":
                digest.update(f"capacity_unit:{capacity_unit};".encode())
        # The measured-footprint channels joined after the unit-mode golds
        # were pinned: unit-mode results hash exactly as before this block
        # existed, while MB-mode runs are distinguished by their exact
        # integer KB series.
        memory_mode = getattr(self, "memory_mode", "unit")
        if memory_mode != "unit":
            digest.update(f"memory_mode:{memory_mode};".encode())
            if self.memory_usage_kb is not None:
                digest.update(
                    np.ascontiguousarray(
                        self.memory_usage_kb, dtype=np.int64
                    ).tobytes()
                )
            digest.update(str(self.total_wasted_memory_kb).encode())
            digest.update(repr(self.emcr_mb).encode())
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, float]:
        """A flat dictionary of headline metrics, handy for tables and tests."""
        summary = self._base_summary()
        if getattr(self, "memory_mode", "unit") != "unit":
            summary.update(
                wasted_memory_mb_min=self.wasted_memory_mb_minutes,
                avg_memory_mb=self.average_memory_usage_mb,
                peak_memory_mb=self.peak_memory_usage_mb,
                emcr_mb=self.emcr_mb,
            )
        cluster = getattr(self, "cluster", None)
        if cluster is not None:
            summary.update(
                evictions=float(cluster.evictions),
                capacity_cold_starts=float(cluster.capacity_cold_starts),
                mean_node_utilization=float(cluster.mean_node_utilization.mean()),
                migrations=float(getattr(cluster, "migrations", 0)),
                load_imbalance=float(getattr(cluster, "load_imbalance", 0.0)),
            )
        latency = getattr(self, "latency", None)
        if latency is not None:
            summary.update(latency.summary())
        return summary

    def _base_summary(self) -> Dict[str, float]:
        return {
            "policy": self.policy_name,
            "invocations": float(self.total_invocations),
            "cold_starts": float(self.total_cold_starts),
            "overall_csr": self.overall_cold_start_rate,
            "q3_csr": self.q3_cold_start_rate,
            "p90_csr": self.cold_start_rate_percentile(90.0),
            "always_cold_fraction": self.always_cold_fraction,
            "never_cold_fraction": self.never_cold_fraction,
            "wasted_memory_time": float(self.total_wasted_memory_time),
            "avg_memory": self.average_memory_usage,
            "peak_memory": float(self.peak_memory_usage),
            "emcr": self.emcr,
            "overhead_per_minute_s": self.overhead_per_minute,
        }


def compare_results(results: Mapping[str, SimulationResult]) -> Dict[str, Dict[str, float]]:
    """Build a ``{policy: summary}`` mapping from several simulation results."""
    return {name: result.summary() for name, result in results.items()}
