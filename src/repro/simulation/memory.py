"""Memory accounting: wasted memory time, usage and effective consumption.

The accounting rules follow §II-B and §V-A of the paper:

* every loaded function instance occupies one memory unit for the minute;
* *wasted memory time* (WMT) accrues one unit for every minute a function's
  image is resident while the function is not invoked;
* the *effective memory consumption ratio* (EMCR) is the fraction of loaded
  instance-minutes that actually served an invocation.

The unit-denominated series above are always collected.  When the simulator
runs in *MB mode* (``memory_mode="mb"``), a parallel set of
footprint-weighted series is collected alongside them: every loaded instance
is weighed by its measured footprint (``FunctionRecord.memory_mb``, joined
from the Azure dataset's ``app_memory_percentiles`` files), quantized to
integer kilobytes so per-minute sums, WMT and EMCR stay exact integers —
which is what makes sharded-vs-unsharded merges bit-identical and keeps
every aggregate NaN-free even when no function carries a measured footprint.
Functions without a footprint fall back to :data:`DEFAULT_MEMORY_MB`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Set

import numpy as np

from repro.traces.schema import FunctionRecord

#: Fallback footprint (MB) for functions without a measured memory join —
#: the dataset's memory family covers fewer apps than the invocation files.
#: 128 MB is the long-standing FaaS default allocation size.
DEFAULT_MEMORY_MB = 128.0


def footprint_kb_vector(records: Sequence[FunctionRecord]) -> np.ndarray:
    """Per-function footprints in integer kilobytes, in record order.

    Measured footprints quantize to ``round(memory_mb * 1024)`` KB; functions
    without one get :data:`DEFAULT_MEMORY_MB`.  Integer KB is the working
    unit of all MB-mode accounting: exact sums, exact shard merges.
    """
    return np.array(
        [
            round(
                1024
                * (
                    record.memory_mb
                    if record.memory_mb is not None
                    else DEFAULT_MEMORY_MB
                )
            )
            for record in records
        ],
        dtype=np.int64,
    )


class MemoryAccountant:
    """Accumulates per-minute memory statistics during a simulation run.

    Parameters
    ----------
    duration:
        Number of minutes the simulation will run for (used to pre-allocate
        the per-minute usage series).
    """

    def __init__(self, duration: int) -> None:
        if duration <= 0:
            raise ValueError("duration must be positive")
        self._duration = duration
        self._usage = np.zeros(duration, dtype=np.int64)
        self._idle = np.zeros(duration, dtype=np.int64)
        self._node_usage: np.ndarray | None = None
        self._wmt_per_function: Dict[str, int] = {}
        self._loaded_instance_minutes = 0
        self._active_instance_minutes = 0
        # Footprint-weighted (integer-KB) channels; populated only when the
        # engine runs in MB mode, None otherwise.
        self._usage_kb: np.ndarray | None = None
        self._idle_kb: np.ndarray | None = None

    def observe_minute(
        self,
        minute: int,
        loaded: Set[str] | Iterable[str],
        invocations: Mapping[str, int],
    ) -> None:
        """Charge one minute of memory usage.

        Parameters
        ----------
        minute:
            Simulation minute index.
        loaded:
            Function ids resident in memory during this minute (including
            instances loaded on demand to serve this minute's invocations).
        invocations:
            ``{function_id: count}`` invoked during this minute.
        """
        if not 0 <= minute < self._duration:
            raise IndexError(f"minute {minute} outside simulation of {self._duration} minutes")
        loaded_set = set(loaded)
        used = len(loaded_set)
        active = sum(1 for function_id in loaded_set if function_id in invocations)
        idle = used - active

        self._usage[minute] = used
        self._idle[minute] = idle
        self._loaded_instance_minutes += used
        self._active_instance_minutes += active
        for function_id in loaded_set:
            if function_id not in invocations:
                self._wmt_per_function[function_id] = (
                    self._wmt_per_function.get(function_id, 0) + 1
                )

    def observe_batch(
        self,
        usage: np.ndarray,
        idle: np.ndarray,
        wmt_per_function: Mapping[str, int],
        node_usage: np.ndarray | None = None,
        usage_kb: np.ndarray | None = None,
        idle_kb: np.ndarray | None = None,
    ) -> None:
        """Charge a whole run's memory statistics in one call.

        The vectorized simulation engine accumulates per-minute usage/idle
        series and per-function wasted memory time as numpy arrays and hands
        them over once, instead of paying a Python-level ``observe_minute``
        call (set construction, per-function dict increments) for every
        simulated minute.  The two entry points are equivalent: charging the
        same run minute-by-minute or as one batch yields identical aggregates.

        Parameters
        ----------
        usage:
            Per-minute number of loaded instances, length ``duration``.
        idle:
            Per-minute number of loaded-but-idle instances, length
            ``duration``.
        wmt_per_function:
            Total idle minutes attributed to each function; must sum to
            ``idle.sum()``.
        node_usage:
            Optional per-minute loaded units per node, shape
            ``(duration, n_nodes)`` — recorded by capacity-constrained runs
            (see :mod:`repro.simulation.cluster`).
        usage_kb / idle_kb:
            Optional footprint-weighted equivalents of ``usage``/``idle`` in
            integer kilobytes (MB-mode runs weigh every loaded instance by
            its measured footprint; see :func:`footprint_kb_vector`).  Both
            must be given together.
        """
        usage = np.asarray(usage, dtype=np.int64)
        idle = np.asarray(idle, dtype=np.int64)
        if usage.shape != (self._duration,) or idle.shape != (self._duration,):
            raise ValueError(
                f"usage/idle series must have length {self._duration}, "
                f"got {usage.shape} and {idle.shape}"
            )
        if (idle > usage).any():
            raise ValueError("idle instances cannot exceed loaded instances")
        if node_usage is not None:
            node_usage = np.asarray(node_usage, dtype=np.int64)
            if node_usage.ndim != 2 or node_usage.shape[0] != self._duration:
                raise ValueError(
                    f"node_usage must have shape (duration, n_nodes), got {node_usage.shape}"
                )
            self._node_usage = node_usage
        if (usage_kb is None) != (idle_kb is None):
            raise ValueError("usage_kb and idle_kb must be given together")
        if usage_kb is not None and idle_kb is not None:
            usage_kb = np.asarray(usage_kb, dtype=np.int64)
            idle_kb = np.asarray(idle_kb, dtype=np.int64)
            if usage_kb.shape != (self._duration,) or idle_kb.shape != (
                self._duration,
            ):
                raise ValueError(
                    f"usage_kb/idle_kb series must have length {self._duration}, "
                    f"got {usage_kb.shape} and {idle_kb.shape}"
                )
            if (idle_kb > usage_kb).any():
                raise ValueError("idle kilobytes cannot exceed loaded kilobytes")
            if self._usage_kb is None:
                self._usage_kb = np.zeros(self._duration, dtype=np.int64)
                self._idle_kb = np.zeros(self._duration, dtype=np.int64)
            self._usage_kb += usage_kb
            self._idle_kb += idle_kb
        self._usage += usage
        self._idle += idle
        self._loaded_instance_minutes += int(usage.sum())
        self._active_instance_minutes += int((usage - idle).sum())
        for function_id, wasted in wmt_per_function.items():
            if wasted:
                self._wmt_per_function[function_id] = (
                    self._wmt_per_function.get(function_id, 0) + int(wasted)
                )

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #
    @property
    def usage_series(self) -> np.ndarray:
        """Per-minute number of loaded instances."""
        view = self._usage.view()
        view.flags.writeable = False
        return view

    @property
    def idle_series(self) -> np.ndarray:
        """Per-minute number of loaded-but-idle instances."""
        view = self._idle.view()
        view.flags.writeable = False
        return view

    @property
    def node_usage_series(self) -> np.ndarray | None:
        """Per-minute loaded units per node, or ``None`` for uncapped runs."""
        if self._node_usage is None:
            return None
        view = self._node_usage.view()
        view.flags.writeable = False
        return view

    @property
    def wasted_memory_time(self) -> int:
        """Total wasted memory time (idle instance-minutes) over the run."""
        return int(self._idle.sum())

    @property
    def wmt_per_function(self) -> Dict[str, int]:
        """Wasted memory time attributed to each function."""
        return dict(self._wmt_per_function)

    @property
    def average_memory_usage(self) -> float:
        """Mean number of loaded instances per minute."""
        return float(self._usage.mean()) if self._duration else 0.0

    @property
    def peak_memory_usage(self) -> int:
        """Maximum number of instances loaded in any single minute."""
        return int(self._usage.max()) if self._duration else 0

    @property
    def effective_memory_consumption_ratio(self) -> float:
        """Fraction of loaded instance-minutes that served an invocation (EMCR)."""
        if self._loaded_instance_minutes == 0:
            return 0.0
        return self._active_instance_minutes / self._loaded_instance_minutes

    # ------------------------------------------------------------------ #
    # Footprint-weighted (MB-mode) aggregates
    # ------------------------------------------------------------------ #
    @property
    def usage_kb_series(self) -> np.ndarray | None:
        """Per-minute loaded kilobytes, or ``None`` outside MB mode."""
        if self._usage_kb is None:
            return None
        view = self._usage_kb.view()
        view.flags.writeable = False
        return view

    @property
    def wasted_memory_kb_minutes(self) -> int:
        """Total idle KB-minutes over the run (0 outside MB mode)."""
        if self._idle_kb is None:
            return 0
        return int(self._idle_kb.sum())

    @property
    def effective_memory_consumption_ratio_mb(self) -> float:
        """EMCR weighted by measured footprints (0.0 outside MB mode).

        Derived from the two integer KB totals, so merging shard results and
        re-dividing reproduces this value exactly, and an empty run (or an
        entirely missed memory join) yields 0.0, never NaN.
        """
        if self._usage_kb is None or self._idle_kb is None:
            return 0.0
        loaded = int(self._usage_kb.sum())
        if loaded == 0:
            return 0.0
        return (loaded - int(self._idle_kb.sum())) / loaded
