"""Pluggable multi-node placement strategies for the cluster model.

PR 2's cluster mode sharded functions onto nodes with a static CRC-32 hash:
cheap and deterministic, but blind — a handful of hot functions can land on
one node and melt it while the rest of the cluster idles.  This module makes
the function→node mapping a *strategy*:

``hash`` (the default)
    The original static CRC-32 shard.  Every function is assigned up front
    and never moves (unless migration is enabled, see below), so runs with
    the default configuration are bit-for-bit identical to the pre-placement
    engine — the golden-fingerprint tests pin this.

``least-loaded``
    No static assignment at all.  A function is placed the first minute it
    becomes *active* (invoked, or proposed resident by the policy), onto the
    node with the most free units at that moment; a burst of new functions is
    spread greedily, one placement at a time.

``correlation-aware``
    Functions that the §III-B2 co-occurrence signals say fire together
    (:func:`repro.analysis.cooccurrence.correlated_groups` over the
    *training* window) are co-located: each correlated group is assigned to
    one node up front, groups balanced across nodes by their training-window
    invocation volume (LPT greedy).  Functions outside any group fall back to
    lazy least-loaded placement.

Strategies are stateful per run (a :class:`ClusterArbiter
<repro.simulation.cluster.ClusterArbiter>` instantiates a fresh one), but
every decision is a pure function of minute-granular simulation state — which
is why placed runs stay fingerprint-identical across the vectorized and event
engines, and why sweep cells with placement in their
:class:`~repro.simulation.cluster.ClusterModel` cache deterministically.

Custom strategies subclass :class:`PlacementStrategy` and register with
:func:`register_placement`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Dict, List

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.simulation.cluster import ClusterModel
    from repro.traces.trace import Trace

__all__ = [
    "PlacementStrategy",
    "HashPlacement",
    "LeastLoadedPlacement",
    "CorrelationAwarePlacement",
    "PLACEMENT_REGISTRY",
    "register_placement",
    "get_placement",
    "placement_names",
]

#: Sentinel node id for functions that have not been placed yet.
UNPLACED = -1


class PlacementStrategy(abc.ABC):
    """Decides which node every function lives on.

    Lifecycle: the arbiter calls :meth:`bind` once per run with the cluster
    model, the trace's function-id ordering and (when the simulator has one)
    a trace for offline signals; ``bind`` returns the initial assignment
    array (``UNPLACED`` marks functions to be placed lazily).  Whenever an
    unplaced function becomes active, the arbiter calls :meth:`place` with
    the current per-node resident usage; the strategy answers with one node
    per function and may assume the arbiter applies the answer immediately.

    Determinism contract: both methods must be pure functions of their
    arguments (plus state derived from them) — no wall clock, no unseeded
    randomness — so that placed runs fingerprint identically across engines,
    worker processes and cache reloads.
    """

    #: Registry key, also the CLI spelling (``sweep --placement NAME``).
    name: str = "abstract"

    @abc.abstractmethod
    def bind(
        self,
        model: "ClusterModel",
        function_ids: tuple[str, ...],
        trace: "Trace | None" = None,
    ) -> np.ndarray:
        """Return the initial node of every function (``UNPLACED`` = lazy)."""

    def place(
        self, positions: np.ndarray, usage: np.ndarray, node_capacity: int
    ) -> np.ndarray:
        """Assign nodes to newly active functions, given current node usage.

        The default is greedy least-loaded: positions are processed in
        ascending order and each takes the node with the most free units at
        that point (ties break on the lower node id), with the running count
        updated after every pick so one burst spreads instead of stacking.
        """
        chosen = np.empty(positions.size, dtype=np.int64)
        usage = usage.astype(np.int64, copy=True)
        for i in range(positions.size):
            node = int(np.argmin(usage))
            chosen[i] = node
            usage[node] += 1
        return chosen


class HashPlacement(PlacementStrategy):
    """Static CRC-32 sharding — the original (and default) behavior."""

    name = "hash"

    def bind(
        self,
        model: "ClusterModel",
        function_ids: tuple[str, ...],
        trace: "Trace | None" = None,
    ) -> np.ndarray:
        # One source of truth for the sharding rule: ClusterModel.node_of.
        return np.asarray(
            [model.node_of(function_id) for function_id in function_ids],
            dtype=np.int64,
        )


class LeastLoadedPlacement(PlacementStrategy):
    """Fully lazy placement: every function waits for its first activity."""

    name = "least-loaded"

    def bind(
        self,
        model: "ClusterModel",
        function_ids: tuple[str, ...],
        trace: "Trace | None" = None,
    ) -> np.ndarray:
        return np.full(len(function_ids), UNPLACED, dtype=np.int64)


class CorrelationAwarePlacement(PlacementStrategy):
    """Co-locate correlated groups statically, place the rest lazily.

    Parameters
    ----------
    min_cor:
        Minimum co-occurrence rate linking a candidate pair (see
        :func:`repro.analysis.cooccurrence.correlated_groups`).
    """

    name = "correlation-aware"

    def __init__(self, min_cor: float = 0.5) -> None:
        if not 0.0 < min_cor <= 1.0:
            raise ValueError("min_cor must be in (0, 1]")
        self.min_cor = min_cor

    def bind(
        self,
        model: "ClusterModel",
        function_ids: tuple[str, ...],
        trace: "Trace | None" = None,
    ) -> np.ndarray:
        nodes = np.full(len(function_ids), UNPLACED, dtype=np.int64)
        if trace is None or model.n_nodes == 1:
            # No signal to mine (or nothing to balance): behave like
            # least-loaded, which is the strategy's own fallback anyway.
            if model.n_nodes == 1:
                nodes[:] = 0
            return nodes

        # Imported lazily: repro.analysis sits above the simulation layer.
        from repro.analysis.cooccurrence import correlated_groups

        position_of = {fid: position for position, fid in enumerate(function_ids)}
        node_capacity = model.node_capacity
        weighted: List[tuple[float, List[int]]] = []
        for members in correlated_groups(trace, min_cor=self.min_cor):
            positions = [position_of[fid] for fid in members if fid in position_of]
            if len(positions) < 2:
                continue
            weight = float(
                sum(int(np.asarray(trace.series(fid)).sum()) for fid in members)
            )
            # A group wider than a node inevitably thrashes wherever it
            # lands; split it into node-sized chunks (weight prorated) so
            # co-location is kept piecewise without drowning one node.
            for start in range(0, len(positions), node_capacity):
                chunk = positions[start : start + node_capacity]
                weighted.append((weight * len(chunk) / len(positions), chunk))

        # LPT greedy: heaviest group first onto the lightest node; ties on
        # weight break on the group's first (lowest) function position, ties
        # on load break on the lower node id — all deterministic.
        weighted.sort(key=lambda item: (-item[0], item[1][0]))
        load = np.zeros(model.n_nodes, dtype=float)
        for weight, positions in weighted:
            node = int(np.argmin(load))
            nodes[positions] = node
            load[node] += weight if weight > 0 else float(len(positions))
        return nodes


#: The global placement-strategy registry, keyed by strategy name.
PLACEMENT_REGISTRY: Dict[str, Callable[[], PlacementStrategy]] = {}


def register_placement(factory: Callable[[], PlacementStrategy]) -> None:
    """Register a strategy factory under its instances' ``name``."""
    name = factory().name
    if name in PLACEMENT_REGISTRY:
        raise ValueError(f"placement strategy {name!r} is already registered")
    PLACEMENT_REGISTRY[name] = factory


def get_placement(name: str) -> PlacementStrategy:
    """Instantiate the strategy registered under ``name`` (fresh per run)."""
    try:
        factory = PLACEMENT_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown placement strategy {name!r}; registered: {placement_names()}"
        ) from None
    return factory()


def placement_names() -> List[str]:
    """Names of every registered placement strategy, sorted."""
    return sorted(PLACEMENT_REGISTRY)


register_placement(HashPlacement)
register_placement(LeastLoadedPlacement)
register_placement(CorrelationAwarePlacement)
