"""Discrete-time (per-minute) serverless provisioning simulator.

The simulator follows the principles the paper adopts from Shahrad et al.
(ATC'20):

* every execution completes within the one-minute sampling slot;
* cold-start latency is uniform across functions, so the number of cold
  starts fully determines the latency impact;
* every loaded instance consumes one unit of memory, and a host can hold all
  loaded instances (no capacity-induced evictions unless a policy imposes its
  own limit, as FaaSCache does).

Beyond the paper's abstract setting, the simulator optionally runs in *MB
mode* (``memory_mode="mb"``): loaded instances are weighed by their measured
memory footprints (joined from the Azure dataset's ``app_memory_percentiles``
files), and usage/WMT/EMCR are additionally reported in megabytes.  The
default unit mode remains byte-identical to the paper's accounting.

Provisioning policies implement :class:`ProvisioningPolicy` and are driven by
:class:`Simulator`, which charges cold starts, wasted memory time, memory
usage, and effective memory consumption exactly as defined in the paper.
"""

from repro.simulation.policy_base import AlwaysWarmPolicy, NoKeepAlivePolicy, ProvisioningPolicy
from repro.simulation.vector_policy import DictPolicyAdapter, VectorizedPolicy
from repro.simulation.cluster import ClusterArbiter, ClusterModel, NodeArbiter
from repro.simulation.placement import (
    PLACEMENT_REGISTRY,
    PlacementStrategy,
    get_placement,
    placement_names,
    register_placement,
)
from repro.simulation.events import EventConfig, EventTracker, LatencyWindow
from repro.simulation.scheduling import (
    CpuConfig,
    InvocationScheduler,
    get_scheduler,
    register_scheduler,
    scheduler_names,
)
from repro.simulation.memory import DEFAULT_MEMORY_MB, MemoryAccountant, footprint_kb_vector
from repro.simulation.results import (
    ClusterStats,
    FunctionStats,
    LatencyStats,
    SimulationResult,
)
from repro.simulation.spec import (
    DEFAULT_WARMUP_MINUTES,
    ENGINE_IMPLEMENTATIONS,
    ENGINE_VERSION,
    EVENT_ENGINES,
    MEMORY_MODES,
    RunSpec,
    canonical_value,
    content_digest,
)
from repro.simulation.engine import (
    ShardFallbackWarning,
    Simulator,
    simulate_policy,
)
from repro.simulation.overhead import OverheadTimer
from repro.simulation.sharding import shard_assignment, shard_fallback_reason

__all__ = [
    "ProvisioningPolicy",
    "VectorizedPolicy",
    "DictPolicyAdapter",
    "AlwaysWarmPolicy",
    "NoKeepAlivePolicy",
    "ClusterModel",
    "ClusterArbiter",
    "NodeArbiter",
    "ClusterStats",
    "PlacementStrategy",
    "PLACEMENT_REGISTRY",
    "register_placement",
    "get_placement",
    "placement_names",
    "EventConfig",
    "EventTracker",
    "LatencyWindow",
    "CpuConfig",
    "InvocationScheduler",
    "register_scheduler",
    "get_scheduler",
    "scheduler_names",
    "LatencyStats",
    "MemoryAccountant",
    "DEFAULT_MEMORY_MB",
    "footprint_kb_vector",
    "RunSpec",
    "canonical_value",
    "content_digest",
    "ENGINE_IMPLEMENTATIONS",
    "ENGINE_VERSION",
    "EVENT_ENGINES",
    "MEMORY_MODES",
    "DEFAULT_WARMUP_MINUTES",
    "FunctionStats",
    "SimulationResult",
    "Simulator",
    "simulate_policy",
    "ShardFallbackWarning",
    "shard_assignment",
    "shard_fallback_reason",
    "OverheadTimer",
]
