"""Sub-minute event layer: arrival timestamps, durations, latency tracking.

The paper's simulation (and the ``vectorized``/``reference`` engines) is
minute-bucketed: a cold start is a *count*, charged once per invoked minute a
function is not resident.  A production serving system optimizes a latency
*distribution* — how long requests actually waited on provisioning.  This
module supplies the engine's third temporal resolution:

* each minute bucket is expanded into timestamped **invocation events**
  (deterministic seeded arrival jitter inside the minute);
* every function carries a :class:`~repro.traces.schema.DurationProfile`
  (provisioning latency + execution duration), derived deterministically per
  function via :func:`~repro.traces.archetypes.duration_profile_for`;
* the first event of a non-resident function *initiates* provisioning and
  waits the full cold-start latency; events arriving while that provisioning
  is still in flight queue behind it and wait the residual; everything else
  is a warm hit.

The event layer is deliberately an **observer**, not a second accounting
implementation: :class:`EventTracker` hooks into the vectorized engine's
minute loop *after* cold starts are charged and *before* the policy decides
the next resident set.  Policies still run the unchanged
:class:`~repro.simulation.vector_policy.VectorizedPolicy` contract at minute
boundaries, and residency/memory/cluster accounting is byte-for-byte the
vectorized engine's — which is why an event run's
:meth:`~repro.simulation.results.SimulationResult.deterministic_fingerprint`
is *identical* to a vectorized run's.  What the event engine adds is the
:class:`~repro.simulation.results.LatencyStats` block: per-event cold-start
waits, capacity-attributed cold events (mid-minute arrivals hitting a slot
the cluster arbiter evicted at the previous boundary), and busy time.

With a :class:`~repro.simulation.scheduling.CpuConfig` the tracker models a
second queueing stage: after an event clears provisioning it must be
dispatched onto its node's finite core pool by a pluggable
:class:`~repro.simulation.scheduling.InvocationScheduler`, yielding per-event
CPU waits, *slowdown* (sojourn/service), and — with
:attr:`EventConfig.slo_ms` — SLO-violation counts.  The CPU stage is also an
observer: it never alters residency, counts, or the fingerprint, and when
``cpu`` is unset the stage is skipped entirely (no extra RNG draws, no
arithmetic), so pre-CPU latency pins stay byte-identical.

Determinism: arrival jitter comes from one :class:`numpy.random.Generator`
seeded by :attr:`EventConfig.seed` and consumed in a fixed order (minute
-major, CSR function order; under a ``CpuConfig``, each minute's cold draw is
followed by a warm-event draw), so a run is a pure function of ``(trace,
policy, config)``.  Changing the jitter seed changes *latencies only* — never
counts, never the fingerprint.
"""

from __future__ import annotations

import weakref
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Tuple

import numpy as np

from repro.simulation.results import LatencyStats
from repro.simulation.scheduling import CpuConfig, get_scheduler
from repro.traces.archetypes import (
    ARCHETYPE_DURATION_PROFILES,
    TRIGGER_DURATION_PROFILES,
    duration_profile_for,
)
from repro.traces.schema import DEFAULT_DURATION_PROFILE, DurationProfile
from repro.traces.trace import InvocationIndex, Trace

__all__ = [
    "EventConfig",
    "EventTracker",
    "LatencyWindow",
    "duration_profile_arrays",
    "expand_minute_offsets",
]

#: Seconds per simulated minute bucket.
SECONDS_PER_MINUTE = 60.0


@dataclass(frozen=True)
class EventConfig:
    """Immutable configuration of the sub-minute event layer.

    Picklable and hashable-by-content (it participates in sweep cache keys),
    so one config can be shared across sweep cells and worker processes.

    Attributes
    ----------
    seed:
        Seed of the arrival-jitter stream.  Scenario builds derive it from
        the workload seed so event runs cache deterministically.
    cold_start_scale / execution_scale:
        Scenario-level multipliers applied on top of every function's
        duration profile (e.g. a flash-crowd scenario modelling a congested
        image registry scales provisioning up without touching the
        per-function spread).
    default_profile:
        Profile used when a function's record yields none.
    derive_profiles:
        When True (default), per-function profiles are derived from each
        function's archetype/trigger metadata via
        :func:`~repro.traces.archetypes.duration_profile_for`; when False,
        every function uses ``default_profile`` unchanged — the paper's
        uniform-latency assumption, useful for controlled tests.
    feedback_window_minutes:
        Length of the rolling latency window the ``event-feedback`` engine
        streams into the policy between minutes (ignored by the plain
        ``event`` engine, which never constructs a window).  The default of
        one hour covers the keep-alive horizons of every shipped policy.
    cpu:
        Optional :class:`~repro.simulation.scheduling.CpuConfig` enabling the
        intra-node CPU stage: every event queues for one of
        ``cpu.cores_per_node`` cores under the configured scheduler after
        clearing provisioning.  ``None`` (the default) models infinite cores
        — the CPU stage is skipped entirely and results are byte-identical
        to the pre-CPU event layer.
    slo_ms:
        Optional service-level objective on per-event *sojourn time*
        (provisioning wait + CPU wait + execution, in milliseconds); when
        set, every event is checked and violations counted in
        :attr:`~repro.simulation.results.LatencyStats.slo_violations`.
        Works with or without a ``cpu`` config (without one the CPU-wait
        term is zero).
    """

    seed: int = 0
    cold_start_scale: float = 1.0
    execution_scale: float = 1.0
    default_profile: DurationProfile = DEFAULT_DURATION_PROFILE
    derive_profiles: bool = True
    feedback_window_minutes: int = 60
    cpu: CpuConfig | None = None
    slo_ms: float | None = None

    def __post_init__(self) -> None:
        if self.cold_start_scale < 0 or self.execution_scale < 0:
            raise ValueError("scale factors must be non-negative")
        if self.feedback_window_minutes < 1:
            raise ValueError("feedback_window_minutes must be >= 1")
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError("slo_ms must be positive when set")

    def profile_for(self, record) -> DurationProfile:
        """The effective duration profile of one function."""
        if self.derive_profiles:
            profile = duration_profile_for(record, base=self.default_profile)
        else:
            profile = self.default_profile
        if self.cold_start_scale != 1.0 or self.execution_scale != 1.0:
            profile = profile.scaled(
                cold_start=self.cold_start_scale, execution=self.execution_scale
            )
        return profile


# Derived (cold_ms, exec_ms) arrays per trace, keyed by the profile-relevant
# EventConfig subset.  Sweeps run many (policy, seed) cells over one shared
# trace object; the cache makes the derivation a one-time cost per trace
# instead of a per-run cost, and the weak keying lets traces be collected
# normally.
_PROFILE_ARRAY_CACHE: "weakref.WeakKeyDictionary[Trace, Dict[tuple, Tuple[np.ndarray, np.ndarray]]]" = (
    weakref.WeakKeyDictionary()
)


def duration_profile_arrays(
    trace: Trace, config: EventConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-function ``(cold_start_ms, execution_ms)`` arrays for ``trace``.

    Batched, cached equivalent of calling :meth:`EventConfig.profile_for` on
    every record in function-index order: the spread factors and scale
    multipliers are applied with the same operations in the same order, so
    the arrays are bit-identical to the per-record loop — this is what keeps
    latency pins stable across the batching.  Results are cached per trace
    (weakly) and per profile-relevant config subset, and returned read-only
    so cached arrays cannot be mutated through one tracker and observed by
    another.
    """
    cache_key = (
        config.default_profile,
        config.derive_profiles,
        config.cold_start_scale,
        config.execution_scale,
    )
    try:
        per_trace = _PROFILE_ARRAY_CACHE.setdefault(trace, {})
    except TypeError:  # unhashable/unweakrefable trace: derive uncached
        per_trace = {}
    cached = per_trace.get(cache_key)
    if cached is not None:
        return cached

    index = trace.invocation_index()
    n = index.n_functions
    cold_ms = np.empty(n, dtype=float)
    exec_ms = np.empty(n, dtype=float)
    if not config.derive_profiles:
        cold_ms.fill(config.default_profile.cold_start_ms)
        exec_ms.fill(config.default_profile.execution_ms)
    else:
        base = config.default_profile
        for position, function_id in enumerate(index.function_ids):
            record = trace.record(function_id)
            measured = record.duration
            if measured is not None:
                # Measured profiles carry no synthetic spread.
                cold_ms[position] = measured.cold_start_ms
                exec_ms[position] = measured.execution_ms
                continue
            profile = None
            if record.archetype is not None:
                profile = ARCHETYPE_DURATION_PROFILES.get(record.archetype)
            if profile is None:
                profile = TRIGGER_DURATION_PROFILES.get(record.trigger.value)
            if profile is None:
                profile = base
            unit_cold = (zlib.crc32(f"cold:{function_id}".encode()) % 2**32) / 2**32
            unit_exec = (zlib.crc32(f"exec:{function_id}".encode()) % 2**32) / 2**32
            cold_ms[position] = profile.cold_start_ms * (0.6 + 1.2 * unit_cold)
            exec_ms[position] = profile.execution_ms * (0.6 + 1.2 * unit_exec)
    if config.cold_start_scale != 1.0 or config.execution_scale != 1.0:
        cold_ms = cold_ms * config.cold_start_scale
        exec_ms = exec_ms * config.execution_scale
    cold_ms.flags.writeable = False
    exec_ms.flags.writeable = False
    per_trace[cache_key] = (cold_ms, exec_ms)
    return cold_ms, exec_ms


def expand_minute_offsets(
    rng: np.random.Generator, count: int
) -> np.ndarray:
    """Arrival offsets (seconds into the minute) for ``count`` events, sorted.

    Arrivals are uniform over the minute — the maximum-entropy choice given
    that the trace only records per-minute counts, and consistent with the
    Poisson arrival processes the paper observes for HTTP traffic (§III-B1):
    conditioned on the count, Poisson arrival times are uniform order
    statistics.

    This is the *single-function reference form* of the expansion, kept for
    tests and external callers.  :meth:`EventTracker.observe_minute` applies
    the same construction — uniform draws, sorted per function — but batched
    over all of a minute's cold functions with one draw and one segment sort,
    so the two consume the jitter stream in different orders; only the
    tracker's order defines an event run's latencies.
    """
    if count <= 0:
        return np.zeros(0, dtype=float)
    offsets = rng.random(count) * SECONDS_PER_MINUTE
    offsets.sort()
    return offsets


@dataclass(frozen=True)
class LatencyWindow:
    """Rolling per-function cold-start-latency snapshot for the feedback loop.

    Produced by :meth:`EventTracker.feedback_window` once per minute under
    the ``event-feedback`` engine and handed to
    :meth:`~repro.simulation.policy_base.ProvisioningPolicy.on_feedback`.
    Arrays live in the bound trace's function-index space, so index-native
    policies consume them without any id translation.  The snapshot is
    read-only by contract: the engine hands out copies, but policies must
    still treat the arrays as immutable observations.

    Attributes
    ----------
    minute:
        The simulated minute that just completed (the window's right edge).
    window_minutes:
        Trailing horizon the aggregates cover: events observed in minutes
        ``(minute - window_minutes, minute]``.
    cold_events:
        Latency-affected events per function within the window — provisioning
        initiations plus arrivals that queued behind one.
    total_wait_ms:
        Summed cold-start waits per function within the window.
    """

    minute: int
    window_minutes: int
    cold_events: np.ndarray
    total_wait_ms: np.ndarray

    @property
    def total_events(self) -> int:
        """All latency-affected events in the window."""
        return int(self.cold_events.sum())

    def mean_wait_ms(self) -> np.ndarray:
        """Per-function mean cold-start wait; 0.0 where nothing waited.

        Guaranteed NaN-free: functions without a latency-affected event in
        the window report 0.0, mirroring the zero-cold-event conventions of
        :class:`~repro.simulation.results.LatencyStats`.
        """
        means = np.zeros_like(self.total_wait_ms)
        np.divide(
            self.total_wait_ms,
            self.cold_events,
            out=means,
            where=self.cold_events > 0,
        )
        return means


class EventTracker:
    """Per-run event expansion and latency bookkeeping.

    The vectorized minute loop calls :meth:`observe_minute` once per minute
    with the invoked indices, their counts, the subset charged a cold start,
    and (under a cluster) the policy's pre-arbiter declaration — everything
    needed to expand events and attribute waits without re-deriving any
    residency state.  :meth:`finalize` packages the observations into a
    :class:`~repro.simulation.results.LatencyStats`.

    With ``feedback=True`` (the ``event-feedback`` engine) the tracker
    additionally maintains a rolling per-function latency window: each
    minute's waits are aggregated into a compact per-function chunk, added to
    running window arrays, and chunks older than
    :attr:`EventConfig.feedback_window_minutes` are subtracted back out.
    :meth:`feedback_window` advances the window and snapshots it as a
    :class:`LatencyWindow`.  The plain ``event`` engine never pays for any of
    this: the chunk bookkeeping is skipped entirely unless feedback is on.
    """

    def __init__(
        self,
        trace: Trace,
        config: EventConfig | None = None,
        feedback: bool = False,
    ) -> None:
        self.config = config or EventConfig()
        self._rng = np.random.default_rng(self.config.seed)
        index: InvocationIndex = trace.invocation_index()
        self._function_ids = index.function_ids
        n = index.n_functions
        # Batched + cached: profiles are a pure function of record metadata,
        # so sharded / multi-cell runs over one trace derive them once.
        self._cold_ms, self._exec_ms = duration_profile_arrays(trace, self.config)

        self._total_events = 0
        self._warm_events = 0
        self._cold_start_events = 0
        self._delayed_events = 0
        self._capacity_cold_events = 0
        self._migration_cold_events = 0
        self._total_execution_ms = 0.0
        # Per-minute wait/function-index chunks, concatenated once at
        # finalize; appending arrays keeps the hot path free of per-event
        # Python work.
        self._wait_chunks: List[np.ndarray] = []
        self._position_chunks: List[np.ndarray] = []

        # Intra-node CPU stage (inert unless a CpuConfig is present).
        cpu = self.config.cpu
        self._cpu = cpu
        self._scheduler = get_scheduler(cpu.scheduler) if cpu is not None else None
        self._cores = cpu.cores_per_node if cpu is not None else 0
        self._exec_s = self._exec_ms / 1000.0 if cpu is not None else None
        self._slo_ms = self.config.slo_ms
        self._cpu_scheduled_events = 0
        self._cpu_delayed_events = 0
        self._cpu_wait_chunks: List[np.ndarray] = []
        self._slowdown_chunks: List[np.ndarray] = []
        self._slo_checked_events = 0
        self._slo_violations = 0

        self.feedback = feedback
        if feedback:
            # Rolling-window state: running per-function aggregates plus a
            # deque of the compact per-minute contributions still inside the
            # window, so expiry is a subtraction, never a rescan.
            self._window_cold_events = np.zeros(n, dtype=np.int64)
            self._window_wait_ms = np.zeros(n, dtype=float)
            self._window_chunks: Deque[
                Tuple[int, np.ndarray, np.ndarray, np.ndarray]
            ] = deque()

    # ------------------------------------------------------------------ #
    def observe_minute(
        self,
        minute: int,
        invoked: np.ndarray,
        counts: np.ndarray,
        cold_mask: np.ndarray,
        declared_entering: np.ndarray | None,
        migrated_entering: np.ndarray | None = None,
        node_of: np.ndarray | None = None,
    ) -> None:
        """Expand one minute's invocations into events and record waits.

        The expansion is fully vectorized: one jitter draw for all of the
        minute's cold events, one segment-keyed sort to order each cold
        function's arrivals, and mask arithmetic for the initiation/queued
        split — so even an always-cold policy (every event latency-affected)
        costs a handful of numpy calls per minute.

        Parameters
        ----------
        minute:
            The simulated minute (unused in the wait arithmetic — events are
            timed relative to their minute — but kept for extensions).
        invoked / counts:
            The minute's CSR slice: invoked function indices and counts.
        cold_mask:
            Boolean mask over ``invoked``: True where the function was not
            resident when the minute began.  Exactly these functions initiate
            provisioning.
        declared_entering:
            Under a cluster, the policy's pre-arbiter declaration for this
            minute; initiations the policy had declared resident are
            capacity-attributed.  ``None`` for uncapped runs.
        migrated_entering:
            Under a migrating cluster, the mask of functions the arbiter
            re-placed at the previous boundary; initiations among them are
            migration-attributed (a subset of the capacity-attributed
            count).  ``None`` when migration is disabled.
        node_of:
            Under a cluster with a :class:`~repro.simulation.scheduling.CpuConfig`,
            the arbiter's current per-function node assignment: each node's
            events contend for that node's core pool only.  ``None`` (or no
            ``CpuConfig``) pools everything on one node.
        """
        if invoked.size == 0:
            return
        total = int(counts.sum())
        self._total_events += total
        self._total_execution_ms += float(
            (counts * self._exec_ms[invoked]).sum()
        )

        cold = invoked[cold_mask]
        n_cold = cold.size
        if n_cold == 0:
            self._warm_events += total
            if self._cpu is not None:
                self._schedule_minute_cpu(
                    invoked, counts, None, None, None, None, node_of
                )
            elif self._slo_ms is not None:
                # Warm events' sojourn is execution time alone.
                slo = self._slo_ms
                self._slo_checked_events += total
                self._slo_violations += int(
                    counts[self._exec_ms[invoked] > slo].sum()
                )
            return
        if declared_entering is not None:
            self._capacity_cold_events += int(
                np.count_nonzero(declared_entering[cold])
            )
        if migrated_entering is not None:
            self._migration_cold_events += int(
                np.count_nonzero(migrated_entering[cold])
            )

        # Expand the cold functions' events.  Warm functions contribute
        # counts without timestamps (their waits are all zero).
        counts_cold = counts[cold_mask]
        total_cold = int(counts_cold.sum())
        cold_ms = self._cold_ms[cold]
        # segment[i] is the index into `cold` of event i.
        segment = np.repeat(np.arange(n_cold), counts_cold)
        offsets = self._rng.random(total_cold) * SECONDS_PER_MINUTE
        if total_cold > n_cold:
            # Sort arrivals within each function's segment (offsets < 60, so
            # one key orders by (segment, offset) in a single pass).
            order = np.argsort(segment * SECONDS_PER_MINUTE + offsets, kind="stable")
            offsets = offsets[order]
        starts = np.zeros(n_cold, dtype=np.int64)
        np.cumsum(counts_cold[:-1], out=starts[1:])
        # The first arrival initiates provisioning and waits all of it;
        # arrivals before the instance is ready queue for the residual.
        ready = offsets[starts] + cold_ms / 1000.0
        wait_seconds = ready[segment] - offsets
        is_first = np.zeros(total_cold, dtype=bool)
        is_first[starts] = True
        delayed = ~is_first & (wait_seconds > 0.0)
        n_delayed = int(np.count_nonzero(delayed))

        if n_delayed:
            waits_ms = np.concatenate([cold_ms, wait_seconds[delayed] * 1000.0])
            positions = np.concatenate([cold, cold[segment[delayed]]])
        else:
            waits_ms = cold_ms.astype(float, copy=True)
            positions = cold
        self._wait_chunks.append(waits_ms)
        self._position_chunks.append(positions)
        self._cold_start_events += n_cold
        self._delayed_events += n_delayed
        self._warm_events += total - n_cold - n_delayed
        if self.feedback:
            self._accumulate_window(minute, positions, waits_ms)

        if self._cpu is not None:
            # Per-event provisioning wait: initiations wait the full cold
            # start (wait_seconds[starts] == cold_ms / 1000 exactly), queued
            # arrivals wait the residual, and arrivals after the instance is
            # ready wait nothing.
            prov_wait_s = np.maximum(wait_seconds, 0.0)
            self._schedule_minute_cpu(
                invoked, counts, cold_mask,
                cold[segment], offsets, prov_wait_s, node_of,
            )
        elif self._slo_ms is not None:
            slo = self._slo_ms
            self._slo_checked_events += total
            warm_fns = invoked[~cold_mask]
            counts_warm = counts[~cold_mask]
            violations = int(counts_warm[self._exec_ms[warm_fns] > slo].sum())
            sojourn_ms = (
                np.maximum(wait_seconds, 0.0) * 1000.0
                + self._exec_ms[cold[segment]]
            )
            violations += int(np.count_nonzero(sojourn_ms > slo))
            self._slo_violations += violations

    # ------------------------------------------------------------------ #
    def _schedule_minute_cpu(
        self,
        invoked: np.ndarray,
        counts: np.ndarray,
        cold_mask: np.ndarray | None,
        pos_cold: np.ndarray | None,
        arrival_cold_s: np.ndarray | None,
        prov_wait_s: np.ndarray | None,
        node_of: np.ndarray | None,
    ) -> None:
        """Run one minute's events through the node core pools.

        ``pos_cold`` / ``arrival_cold_s`` / ``prov_wait_s`` are the already
        expanded per-event arrays of the minute's cold functions (``None``
        on an all-warm minute).  Warm functions' events are expanded here
        with a second jitter draw — taken *after* the minute's cold draw, so
        the stream stays minute-major and deterministic.  Scheduling is per
        node when ``node_of`` is given, one shared pool otherwise.

        The stage only appends to the ``cpu_*``/slowdown/SLO accumulators;
        the minute-granular counters above are already settled, which keeps
        the CPU layer a pure observer.
        """
        if cold_mask is None:
            warm_fns = invoked
            counts_warm = counts
        else:
            warm_fns = invoked[~cold_mask]
            counts_warm = counts[~cold_mask]
        total_warm = int(counts_warm.sum())
        if total_warm:
            pos_warm = np.repeat(warm_fns, counts_warm)
            arrival_warm = self._rng.random(total_warm) * SECONDS_PER_MINUTE
        else:
            pos_warm = np.zeros(0, dtype=invoked.dtype)
            arrival_warm = np.zeros(0, dtype=float)

        if pos_cold is None:
            positions = pos_warm
            arrival_s = arrival_warm
            ready_s = arrival_warm
        else:
            positions = np.concatenate([pos_cold, pos_warm])
            arrival_s = np.concatenate([arrival_cold_s, arrival_warm])
            # A cold event reaches the CPU only once provisioning clears.
            ready_s = np.concatenate(
                [arrival_cold_s + prov_wait_s, arrival_warm]
            )
        n_events = positions.size
        if n_events == 0:
            return
        service_s = self._exec_s[positions]

        completion_s = np.empty(n_events, dtype=float)
        if node_of is None:
            completion_s[:] = self._scheduler.schedule(
                ready_s, service_s, self._cores
            )
        else:
            nodes = node_of[positions]
            for node in np.unique(nodes):
                members = nodes == node
                completion_s[members] = self._scheduler.schedule(
                    ready_s[members], service_s[members], self._cores
                )

        cpu_wait_s = np.maximum(completion_s - ready_s - service_s, 0.0)
        sojourn_ms = (completion_s - arrival_s) * 1000.0
        service_ms = service_s * 1000.0

        self._cpu_scheduled_events += n_events
        delayed = cpu_wait_s > 1e-9
        n_delayed = int(np.count_nonzero(delayed))
        self._cpu_delayed_events += n_delayed
        if n_delayed:
            self._cpu_wait_chunks.append(cpu_wait_s[delayed] * 1000.0)
        # Slowdown: sojourn over service; zero-service events pin to 1.0,
        # and float dust in the schedulers cannot push it below 1.0.
        slowdown = np.ones(n_events, dtype=float)
        np.divide(sojourn_ms, service_ms, out=slowdown, where=service_ms > 0.0)
        np.maximum(slowdown, 1.0, out=slowdown)
        self._slowdown_chunks.append(slowdown)
        if self._slo_ms is not None:
            self._slo_checked_events += n_events
            self._slo_violations += int(
                np.count_nonzero(sojourn_ms > self._slo_ms)
            )

    # ------------------------------------------------------------------ #
    def _accumulate_window(
        self, minute: int, positions: np.ndarray, waits_ms: np.ndarray
    ) -> None:
        """Fold one minute's waits into the rolling feedback window."""
        unique, inverse = np.unique(positions, return_inverse=True)
        counts = np.bincount(inverse, minlength=unique.size)
        wait_sums = np.bincount(inverse, weights=waits_ms, minlength=unique.size)
        self._window_cold_events[unique] += counts
        self._window_wait_ms[unique] += wait_sums
        self._window_chunks.append((minute, unique, counts, wait_sums))

    def feedback_window(self, minute: int) -> LatencyWindow:
        """Advance the rolling window to ``minute`` and snapshot it.

        Chunks older than the configured horizon are subtracted out; the
        returned :class:`LatencyWindow` copies the running arrays, so the
        policy's view cannot be perturbed by later minutes (nor can a policy
        corrupt the tracker's state).  Raises unless the tracker was built
        with ``feedback=True``.
        """
        if not self.feedback:
            raise RuntimeError("tracker was not configured for feedback")
        horizon = minute - self.config.feedback_window_minutes
        chunks = self._window_chunks
        while chunks and chunks[0][0] <= horizon:
            _, unique, counts, wait_sums = chunks.popleft()
            self._window_cold_events[unique] -= counts
            self._window_wait_ms[unique] -= wait_sums
        return LatencyWindow(
            minute=minute,
            window_minutes=self.config.feedback_window_minutes,
            cold_events=self._window_cold_events.copy(),
            total_wait_ms=self._window_wait_ms.copy(),
        )

    # ------------------------------------------------------------------ #
    def finalize(self) -> LatencyStats:
        """Package the run's observations into a :class:`LatencyStats`."""
        if self._wait_chunks:
            waits = np.concatenate(self._wait_chunks)
            positions = np.concatenate(self._position_chunks)
        else:
            waits = np.zeros(0, dtype=float)
            positions = np.zeros(0, dtype=np.int64)

        ids = self._function_ids
        per_function: Dict[str, np.ndarray] = {}
        if positions.size:
            order = np.argsort(positions, kind="stable")  # chronology kept
            sorted_positions = positions[order]
            sorted_waits = waits[order]
            unique, group_starts = np.unique(sorted_positions, return_index=True)
            bounds = np.append(group_starts, sorted_positions.size)
            per_function = {
                ids[position]: sorted_waits[bounds[i] : bounds[i + 1]]
                for i, position in enumerate(unique.tolist())
            }
        if self._cpu_wait_chunks:
            cpu_waits = np.concatenate(self._cpu_wait_chunks)
        else:
            cpu_waits = np.zeros(0, dtype=float)
        if self._slowdown_chunks:
            slowdown = np.concatenate(self._slowdown_chunks)
        else:
            slowdown = np.zeros(0, dtype=float)
        return LatencyStats(
            total_events=self._total_events,
            warm_events=self._warm_events,
            cold_start_events=self._cold_start_events,
            delayed_events=self._delayed_events,
            capacity_cold_events=self._capacity_cold_events,
            migration_cold_events=self._migration_cold_events,
            cold_wait_ms=waits,
            per_function_wait_ms=per_function,
            total_execution_ms=self._total_execution_ms,
            cpu_scheduled_events=self._cpu_scheduled_events,
            cpu_delayed_events=self._cpu_delayed_events,
            cpu_wait_ms=cpu_waits,
            slowdown=slowdown,
            slo_ms=self._slo_ms,
            slo_checked_events=self._slo_checked_events,
            slo_violations=self._slo_violations,
        )
