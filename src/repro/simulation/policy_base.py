"""Abstract provisioning-policy interface shared by SPES and all baselines.

A policy's job is simple to state: at the end of every simulated minute it
declares which function instances should stay (or become) resident in memory
for the following minute.  The simulator charges a cold start whenever a
function is invoked while not resident, and one minute of wasted memory time
for every resident-but-idle instance-minute.
"""

from __future__ import annotations

import abc
from typing import Iterable, Mapping, Sequence, Set

from repro.traces.schema import FunctionRecord
from repro.traces.trace import Trace


class ProvisioningPolicy(abc.ABC):
    """Base class for function-provisioning policies.

    Lifecycle:

    1. :meth:`prepare` is called once with the static function metadata and
       (optionally) the training trace, before the simulation starts.  This is
       the offline phase where SPES categorizes functions and where the hybrid
       histogram policies build their idle-time histograms.
    2. :meth:`on_minute` is called once per simulated minute with the
       invocations observed during that minute.  It returns the set of
       function ids that should be resident at the start of the *next* minute.
    3. :meth:`on_feedback` is called — only under the ``event-feedback``
       engine — once per minute *before* :meth:`on_minute`, streaming the
       rolling cold-start-latency window into the policy.  The default is a
       no-op, so every policy written before the feedback loop existed keeps
       its exact decisions (and therefore its deterministic fingerprint)
       under the feedback engine.

    Policies are stateful; a fresh instance (or a call to :meth:`reset`)
    should be used for each simulation run.
    """

    #: Human-readable policy name used in result tables.
    name: str = "policy"

    #: Whether the policy's decisions are *function-local*: running it over a
    #: subset of the function population produces, for those functions, the
    #: exact decisions of the full-population run.  This is the contract the
    #: sharded execution mode (:mod:`repro.simulation.sharding`) relies on —
    #: policies with cross-function state (correlation links, application
    #: grouping, a global capacity budget, latency feedback) must leave this
    #: False, and sharded runs fall back to unsharded execution for them.
    shard_safe: bool = False

    def prepare(
        self,
        functions: Sequence[FunctionRecord],
        training: Trace | None = None,
    ) -> None:
        """Offline phase: observe metadata and (optionally) the training trace.

        The default implementation records the function metadata and does no
        modelling; subclasses override to build their predictive state.
        """
        self._functions = {record.function_id: record for record in functions}

    @property
    def known_functions(self) -> Mapping[str, FunctionRecord]:
        """Function metadata provided at :meth:`prepare` time."""
        return getattr(self, "_functions", {})

    @abc.abstractmethod
    def on_minute(self, minute: int, invocations: Mapping[str, int]) -> Set[str]:
        """Decide the resident set for the start of the next minute.

        Parameters
        ----------
        minute:
            Index of the simulated minute (relative to the simulation window).
        invocations:
            ``{function_id: count}`` for functions invoked during this minute.
            Functions not present were not invoked.

        Returns
        -------
        set of str
            Ids of the functions that should be resident at the start of the
            next minute.  Invoked functions that are *not* returned are
            evicted immediately after serving their request.
        """

    def on_feedback(self, minute: int, latency_window) -> None:
        """Observe the rolling cold-start-latency window (feedback engine only).

        Parameters
        ----------
        minute:
            The simulated minute that just completed.
        latency_window:
            A :class:`~repro.simulation.events.LatencyWindow`: per-function
            cold-event counts and summed waits over the trailing feedback
            window, in the bound trace's function-index space.  The window is
            a read-only snapshot; policies must not mutate its arrays.

        The default implementation ignores the feedback entirely, which is a
        contract guarantee: a policy that does not override this hook is
        *decision-identical* under ``event`` and ``event-feedback`` — the
        equivalence tests assert fingerprint equality for every registered
        policy.  Latency-aware policies override it to adapt their keep-alive
        state between minutes.
        """

    def reset(self) -> None:
        """Clear any per-run state.  Subclasses with online state override this."""


class NoKeepAlivePolicy(ProvisioningPolicy):
    """Degenerate policy that never keeps anything warm (every invocation is cold).

    Useful as a lower bound for memory usage and an upper bound for cold
    starts in tests and sanity checks.
    """

    name = "no-keepalive"
    shard_safe = True

    def on_minute(self, minute: int, invocations: Mapping[str, int]) -> Set[str]:
        return set()


class AlwaysWarmPolicy(ProvisioningPolicy):
    """Degenerate policy that keeps every known function warm at all times.

    Useful as an upper bound for memory usage and a lower bound for cold
    starts (only the very first invocation of a function never seen before
    can be cold).
    """

    name = "always-warm"

    def __init__(self, function_ids: Iterable[str] | None = None) -> None:
        self._explicit_ids = set(function_ids) if function_ids is not None else None

    @property
    def shard_safe(self) -> bool:  # type: ignore[override]
        # Prepare-derived residency restricts cleanly to any function subset;
        # an explicit id set does not (ids outside a shard's trace would be
        # double-charged as extra residents by every shard).
        return self._explicit_ids is None

    def prepare(
        self,
        functions: Sequence[FunctionRecord],
        training: Trace | None = None,
    ) -> None:
        super().prepare(functions, training)
        if self._explicit_ids is None:
            self._resident = {record.function_id for record in functions}
        else:
            self._resident = set(self._explicit_ids)

    def on_minute(self, minute: int, invocations: Mapping[str, int]) -> Set[str]:
        resident = set(getattr(self, "_resident", set()))
        resident.update(invocations)
        self._resident = resident
        return set(resident)
