"""One validated run specification shared by every entry point.

Nine growth steps threaded run parameters — engine choice, streaming mode,
warm-up horizon, sharding, memory accounting, cluster model, event-layer
configuration — through four separate surfaces (``Simulator.__init__``,
``ParallelRunner.__init__``, ``ExperimentSuite.__init__`` and the ``sweep``
CLI flags), each copy-pasting the cross-field validation rules and each
carrying its own default values.  :class:`RunSpec` collapses that into one
frozen dataclass:

* **one validator** — :meth:`RunSpec.validate` holds *every* cross-field
  rule (MB accounting needs a mask-based engine, an event config needs an
  event engine, an MB-denominated cluster needs MB accounting, …), so all
  entry points reject an invalid configuration with the identical message;
* **one serialization** — :meth:`RunSpec.canonical` is the stable
  JSON-ready projection of the spec, and :meth:`RunSpec.cache_key` derives
  the on-disk result-cache key from it in the exact part order the
  pre-``RunSpec`` code hand-assembled, so every pre-existing cache entry
  keeps its key byte-for-byte (including the off-default-only append of
  ``memory_mode``);
* **one set of defaults** — :meth:`RunSpec.build` treats ``None`` as "use
  the field default", so the back-compat keyword shims on the simulator,
  runner and suite no longer duplicate default values.

The module also owns the engine catalog constants (re-exported by
:mod:`repro.simulation.engine` for compatibility) and the canonical-value /
content-digest helpers previously private to :mod:`repro.experiments
.parallel` — they live here because the spec layer must not import the
engine or experiment layers.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping

from repro.simulation.cluster import ClusterModel
from repro.simulation.events import EventConfig
from repro.simulation.placement import get_placement

__all__ = [
    "ENGINE_IMPLEMENTATIONS",
    "MEMORY_MODES",
    "EVENT_ENGINES",
    "ENGINE_VERSION",
    "DEFAULT_WARMUP_MINUTES",
    "RunSpec",
    "canonical_value",
    "content_digest",
]

#: Names of the available engine implementations.
ENGINE_IMPLEMENTATIONS = ("vectorized", "reference", "event", "event-feedback")

#: Memory accounting modes: the paper's abstract instance units (default)
#: or measured megabyte footprints joined from the Azure dataset.
MEMORY_MODES = ("unit", "mb")

#: Engines that run the sub-minute event layer (and accept an EventConfig).
EVENT_ENGINES = ("event", "event-feedback")

#: Bumped whenever a change alters simulation *output*; part of on-disk
#: result-cache keys so stale cached results are never served.
ENGINE_VERSION = 6

#: Default warm-up horizon: one day covers the longest keep-alive and
#: prediction horizons used by SPES and the baselines.
DEFAULT_WARMUP_MINUTES = 1440


def canonical_value(value: Any) -> Any:
    """Convert ``value`` into a JSON-serializable canonical form for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: canonical_value(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, Mapping):
        items = {
            str(canonical_value(key)): canonical_value(item)
            for key, item in value.items()
        }
        return dict(sorted(items.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        converted = [canonical_value(item) for item in value]
        return (
            sorted(converted, key=repr)
            if isinstance(value, (set, frozenset))
            else converted
        )
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def content_digest(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``parts``."""
    payload = json.dumps([canonical_value(part) for part in parts], sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class RunSpec:
    """Everything that defines *how* a simulation runs (not *what* it runs).

    A spec bundles the run-shape knobs — the workload itself (traces, seeds,
    policies) stays outside, which is exactly what makes the spec reusable
    across every trace of a sweep.

    Attributes
    ----------
    engine:
        Engine implementation (one of :data:`ENGINE_IMPLEMENTATIONS`).
    streaming:
        Streaming evaluation mode: policies receive no training trace and no
        warm-up replay — they start cold and adapt online.
    warmup_minutes:
        Minutes of training-trace history replayed through each policy
        before metric collection starts (ignored while ``streaming``).
    shards:
        When >= 2, decomposable runs split into that many function
        partitions (see :mod:`repro.simulation.sharding`); 0/1 = unsharded.
    shard_placement:
        Placement strategy deriving the function→shard partition.
    memory_mode:
        ``"unit"`` (the paper's abstract accounting) or ``"mb"`` (measured
        footprints; requires a mask-based engine).
    cluster:
        Optional capacity-constrained cluster model.  On the runner this is
        the *default* for trace keys without an entry in the per-key
        mapping; on a resolved per-cell spec it is the cell's cluster.
    events:
        Optional event-layer configuration (requires an event engine).
        Same per-key defaulting as ``cluster``.

    Construction through :meth:`build` (or the entry points' keyword shims)
    validates eagerly; so does :meth:`override`, because the dataclass
    ``__post_init__`` runs on every construction including ``replace``.
    """

    engine: str = "vectorized"
    streaming: bool = False
    warmup_minutes: int = DEFAULT_WARMUP_MINUTES
    shards: int = 0
    shard_placement: str = "hash"
    memory_mode: str = "unit"
    cluster: ClusterModel | None = None
    events: EventConfig | None = None

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, **overrides: Any) -> "RunSpec":
        """Construct a spec treating ``None`` overrides as "use the default".

        This is what the back-compat keyword shims on
        :class:`~repro.simulation.engine.Simulator`,
        :class:`~repro.experiments.parallel.ParallelRunner` and
        :class:`~repro.experiments.suite.ExperimentSuite` call: their
        keywords default to ``None``, so the actual default values live in
        exactly one place — this dataclass's field defaults.
        """
        return cls(**{name: value for name, value in overrides.items() if value is not None})

    @classmethod
    def from_cli_args(cls, args: Any) -> "RunSpec":
        """Build the base spec from a ``sweep``-style argparse namespace.

        Reads the run-shape flags (``--engine``, ``--streaming``,
        ``--shards``, ``--shard-placement``, ``--memory-mode`` and an
        optional ``--warmup-minutes``); absent attributes fall back to the
        field defaults.  Workload flags (functions, seeds, scenario, …) are
        not the spec's concern.
        """
        return cls.build(
            engine=getattr(args, "engine", None),
            streaming=getattr(args, "streaming", None),
            warmup_minutes=getattr(args, "warmup_minutes", None),
            shards=getattr(args, "shards", None),
            shard_placement=getattr(args, "shard_placement", None),
            memory_mode=getattr(args, "memory_mode", None),
        )

    def override(self, **changes: Any) -> "RunSpec":
        """A copy with ``changes`` applied (revalidated on construction)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Validation — the single home of every cross-field rule
    # ------------------------------------------------------------------ #
    def validate(self) -> "RunSpec":
        """Check every field and cross-field rule; raise ``ValueError``.

        The error messages are the contract every entry point shares: the
        simulator, the parallel runner, the experiment suite and the CLI
        all reject one invalid configuration with one identical message.
        """
        if self.warmup_minutes < 0:
            raise ValueError("warmup_minutes must be non-negative")
        if self.shards < 0:
            raise ValueError("shards must be non-negative")
        if self.engine not in ENGINE_IMPLEMENTATIONS:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINE_IMPLEMENTATIONS}"
            )
        if self.memory_mode not in MEMORY_MODES:
            raise ValueError(
                f"unknown memory_mode {self.memory_mode!r}; expected one of {MEMORY_MODES}"
            )
        # Fail fast on unknown partition strategies, before any run.
        get_placement(self.shard_placement)
        if self.memory_mode != "unit" and self.engine == "reference":
            raise ValueError(
                "MB-mode accounting requires a mask-based engine; the "
                "reference engine is the executable specification of the "
                "paper's unit accounting"
            )
        if self.cluster is not None and self.engine == "reference":
            raise ValueError(
                "the capacity-constrained cluster mode requires a mask-based "
                "engine (vectorized or event)"
            )
        if (
            self.cluster is not None
            and self.cluster.capacity_unit == "mb"
            and self.memory_mode != "mb"
        ):
            raise ValueError(
                "an MB-denominated ClusterModel requires memory_mode='mb' "
                "(footprints are needed to weigh admission)"
            )
        if self.events is not None and self.engine not in EVENT_ENGINES:
            raise ValueError(
                f"an EventConfig requires an event engine {EVENT_ENGINES}"
            )
        return self

    # ------------------------------------------------------------------ #
    # Canonical serialization and cache keys
    # ------------------------------------------------------------------ #
    def canonical(self) -> Dict[str, Any]:
        """Stable JSON-ready projection of the spec (field order preserved).

        This is the representation run manifests record and the one every
        digest below is computed over; two specs with equal ``canonical()``
        output are the same run shape.
        """
        return canonical_value(self)

    def spec_digest(self) -> str:
        """SHA-256 digest of :meth:`canonical` — the spec's identity."""
        return content_digest(self)

    def cache_key_parts(
        self, trace_fingerprint: Any, policy: Any, seed: Any
    ) -> List[Any]:
        """The spec's canonical fields in the *legacy* cache-key part order.

        Before the spec existed, ``ParallelRunner.cache_key`` hand-assembled
        this exact list; reproducing the order (and the off-default-only
        ``memory_mode`` tail) is what keeps every pre-existing on-disk cache
        entry addressable byte-for-byte.  Do not reorder, insert into, or
        unconditionally append to this list — add new fields the way
        ``memory_mode`` was added: appended only when off their default, so
        old keys stay valid.
        """
        parts: List[Any] = [
            ENGINE_VERSION,
            self.engine,
            self.streaming,
            # Shard count and partition strategy key results even though
            # shardable runs are fingerprint-identical: event-engine latency
            # blocks and overhead timings legitimately differ per partition,
            # and a cached fallback run must not masquerade as a sharded one.
            self.shards,
            self.shard_placement,
            trace_fingerprint,
            self.warmup_minutes,
            self.cluster,
            self.events,
            policy,
            seed,
        ]
        # Appended only off the default so pre-existing unit-mode cache
        # entries keep their keys across the MB-accounting release.
        if self.memory_mode != "unit":
            parts.append(("memory_mode", self.memory_mode))
        return parts

    def cache_key(self, trace_fingerprint: Any, policy: Any, seed: Any) -> str:
        """Content hash identifying one cell's simulation output."""
        return content_digest(*self.cache_key_parts(trace_fingerprint, policy, seed))
