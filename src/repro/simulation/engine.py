"""The discrete-time simulation engine driving provisioning policies.

The engine iterates the simulation trace minute by minute.  For each minute it

1. looks up which functions are invoked;
2. charges a cold start for every invoked function that is not resident;
3. considers all invoked functions resident for the remainder of the minute
   (they were loaded on demand to serve the request);
4. asks the policy for the resident set of the next minute, timing the call;
5. charges memory usage and wasted memory time for the minute.

This matches the accounting of §II-B/§V-A: one memory unit per loaded
instance-minute, one WMT unit per loaded-but-idle instance-minute, one cold
start per invoked-while-absent minute.

Two interchangeable implementations of this contract exist:

``vectorized`` (the default)
    Residency and accounting run on numpy boolean masks over function
    *indices*, using the trace's cached
    :meth:`~repro.traces.trace.Trace.invocation_index`.  Memory charges are
    accumulated in arrays and handed to the
    :class:`~repro.simulation.memory.MemoryAccountant` in one batch.  Only
    the policy still sees per-minute ``{function_id: count}`` mappings — the
    :class:`~repro.simulation.policy_base.ProvisioningPolicy` API is
    unchanged.

``reference``
    The original pure-Python loop over sets and dicts, kept as the executable
    specification of the accounting rules.  The regression tests assert that
    both implementations produce identical statistics; use it when auditing a
    change to the accounting semantics.
"""

from __future__ import annotations

import time
from typing import Dict, Set

import numpy as np

from repro.simulation.memory import MemoryAccountant
from repro.simulation.overhead import OverheadTimer
from repro.simulation.policy_base import ProvisioningPolicy
from repro.simulation.results import FunctionStats, SimulationResult
from repro.traces.trace import Trace

#: Names of the available engine implementations.
ENGINE_IMPLEMENTATIONS = ("vectorized", "reference")

#: Bumped whenever a change alters simulation *output*; part of on-disk
#: result-cache keys so stale cached results are never served.
ENGINE_VERSION = 2


class Simulator:
    """Drives a :class:`ProvisioningPolicy` over a simulation trace.

    Parameters
    ----------
    simulation_trace:
        Trace window to simulate (e.g. the final two days of a 14-day trace).
    training_trace:
        Optional trace window handed to the policy's offline phase.
    initially_resident:
        Function ids already loaded when the simulation begins.  Defaults to
        an empty memory.
    warmup_minutes:
        Number of minutes from the tail of the training trace replayed
        through the policy *before* metric collection starts.  The paper's
        evaluation treats the 12-day training window and the 2-day
        simulation window as one continuous timeline, so every policy enters
        the simulation with the memory state and recency information its own
        rules produce; replaying one day of history reproduces that boundary
        condition.  Set to 0 to start from a completely cold platform.
    engine:
        Which implementation runs the minute loop: ``"vectorized"`` (default)
        or ``"reference"`` (see the module docstring).
    """

    #: Default warm-up horizon: one day covers the longest keep-alive and
    #: prediction horizons used by SPES and the baselines.
    DEFAULT_WARMUP_MINUTES = 1440

    def __init__(
        self,
        simulation_trace: Trace,
        training_trace: Trace | None = None,
        initially_resident: Set[str] | None = None,
        warmup_minutes: int = DEFAULT_WARMUP_MINUTES,
        engine: str = "vectorized",
    ) -> None:
        if warmup_minutes < 0:
            raise ValueError("warmup_minutes must be non-negative")
        if engine not in ENGINE_IMPLEMENTATIONS:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINE_IMPLEMENTATIONS}"
            )
        self.simulation_trace = simulation_trace
        self.training_trace = training_trace
        self.initially_resident = set(initially_resident or set())
        self.warmup_minutes = warmup_minutes
        self.engine = engine

    def run(self, policy: ProvisioningPolicy, prepare: bool = True) -> SimulationResult:
        """Simulate ``policy`` over the configured trace and return its result.

        Parameters
        ----------
        policy:
            The provisioning policy to evaluate.  It is prepared (offline
            phase) unless ``prepare`` is False.
        prepare:
            Whether to call :meth:`ProvisioningPolicy.prepare` before running.
            Callers that prepared the policy themselves (e.g. to share an
            expensive offline phase across parameter sweeps) can pass False.
        """
        trace = self.simulation_trace

        if prepare:
            policy.prepare(trace.records(), self.training_trace)

        resident: Set[str] = set(self.initially_resident)
        resident |= self._warm_up(policy)

        if self.engine == "reference":
            return self._run_reference(policy, resident)
        return self._run_vectorized(policy, resident)

    # ------------------------------------------------------------------ #
    # Vectorized implementation (default)
    # ------------------------------------------------------------------ #
    def _run_vectorized(
        self, policy: ProvisioningPolicy, initial_resident: Set[str]
    ) -> SimulationResult:
        """Minute loop on numpy masks over the trace's invocation index.

        Three invariants keep the per-minute Python work minimal:

        * the per-minute ``{function_id: count}`` mappings are prebuilt once
          per trace (:meth:`InvocationIndex.minute_invocations`) and shared by
          every run over that trace;
        * every invoked function is loaded during its minute, so wasted
          memory time needs no per-minute mask: per function it equals
          (minutes loaded) - (minutes invoked), and per minute the idle count
          equals (instances loaded) - (functions invoked);
        * the resident mask is updated from the *difference* between the
          policy's consecutive declarations (two C-level set operations),
          so a steady-state policy costs nothing and a churning policy costs
          only its churn, never a full rebuild.
        """
        trace = self.simulation_trace
        duration = trace.duration_minutes
        index = trace.invocation_index()
        function_ids = index.function_ids
        index_of = index.index_of
        indptr, inv_indices = index.indptr, index.indices
        minute_invocations = index.minute_invocations()
        n_functions = index.n_functions

        timer = OverheadTimer()
        clock = time.perf_counter

        resident = np.zeros(n_functions, dtype=bool)
        # Resident ids unknown to the trace (possible when a policy was
        # prepared against different metadata); kept out of the masks but
        # charged exactly like the reference implementation charges them.
        extra_resident: Set[str] = set()
        for function_id in initial_resident:
            position = index_of.get(function_id)
            if position is None:
                extra_resident.add(function_id)
            else:
                resident[position] = True

        invoked_minutes = np.zeros(n_functions, dtype=np.int64)
        cold_starts = np.zeros(n_functions, dtype=np.int64)
        loaded_minutes = np.zeros(n_functions, dtype=np.int64)
        usage = np.zeros(duration, dtype=np.int64)
        idle = np.zeros(duration, dtype=np.int64)
        extra_wmt: Dict[str, int] = {}

        # The resident set most recently declared by the policy, kept as a
        # private copy so mask updates can be computed as set differences.
        declared_resident: Set[str] = set(initial_resident)

        for minute in range(duration):
            invoked = inv_indices[indptr[minute] : indptr[minute + 1]]
            invocations = minute_invocations[minute]

            if invoked.size:
                # 1-2. charge cold starts against the entering resident set.
                invoked_minutes[invoked] += 1
                cold = invoked[~resident[invoked]]
                cold_starts[cold] += 1
                # 3. invoked functions are loaded on demand for this minute.
                resident[invoked] = True
            else:
                cold = invoked

            # 5. charge memory for this minute (batched at the end of the
            # run).  Invoked functions are always loaded, so the idle count
            # is simply loaded minus invoked.
            loaded = np.count_nonzero(resident) + len(extra_resident)
            usage[minute] = loaded
            idle[minute] = loaded - invoked.size
            loaded_minutes += resident
            for function_id in extra_resident:
                extra_wmt[function_id] = extra_wmt.get(function_id, 0) + 1

            # 4. policy decides the resident set for the next minute.
            started = clock()
            next_resident = policy.on_minute(minute, invocations)
            timer.add(clock() - started)

            # Undo this minute's on-demand loads (exactly the cold
            # positions): the mask now matches declared_resident again.
            if cold.size:
                resident[cold] = False
            if next_resident != declared_resident:
                if not isinstance(next_resident, (set, frozenset)):
                    next_resident = set(next_resident)
                added = next_resident - declared_resident
                removed = declared_resident - next_resident
                if removed:
                    try:
                        resident[[index_of[f] for f in removed]] = False
                    except KeyError:
                        for function_id in removed:
                            position = index_of.get(function_id)
                            if position is None:
                                extra_resident.discard(function_id)
                            else:
                                resident[position] = False
                if added:
                    try:
                        resident[[index_of[f] for f in added]] = True
                    except KeyError:
                        for function_id in added:
                            position = index_of.get(function_id)
                            if position is None:
                                extra_resident.add(function_id)
                            else:
                                resident[position] = True
                declared_resident = set(next_resident)

        wmt = loaded_minutes - invoked_minutes
        wmt_per_function: Dict[str, int] = {
            function_ids[f]: int(wmt[f]) for f in np.flatnonzero(wmt)
        }
        for function_id, wasted in extra_wmt.items():
            wmt_per_function[function_id] = wmt_per_function.get(function_id, 0) + wasted

        accountant = MemoryAccountant(duration)
        accountant.observe_batch(usage, idle, wmt_per_function)

        stats: Dict[str, FunctionStats] = {}
        for position in np.flatnonzero(invoked_minutes):
            function_id = function_ids[position]
            stats[function_id] = FunctionStats(
                function_id=function_id,
                invocations=int(invoked_minutes[position]),
                cold_starts=int(cold_starts[position]),
            )
        return self._finalize(policy, duration, stats, accountant, timer)

    # ------------------------------------------------------------------ #
    # Reference implementation (executable specification)
    # ------------------------------------------------------------------ #
    def _run_reference(
        self, policy: ProvisioningPolicy, initial_resident: Set[str]
    ) -> SimulationResult:
        """The original per-minute loop over Python sets and dicts."""
        trace = self.simulation_trace
        duration = trace.duration_minutes

        accountant = MemoryAccountant(duration)
        timer = OverheadTimer()
        stats: Dict[str, FunctionStats] = {}
        resident: Set[str] = set(initial_resident)

        for minute, invocations in trace.iter_minutes():
            # 1-2. charge cold starts against the resident set entering the minute.
            for function_id in invocations:
                function_stats = stats.get(function_id)
                if function_stats is None:
                    function_stats = FunctionStats(function_id=function_id)
                    stats[function_id] = function_stats
                function_stats.invocations += 1
                if function_id not in resident:
                    function_stats.cold_starts += 1

            # 3. invoked functions are loaded on demand for this minute.
            loaded_this_minute = resident | set(invocations)

            # 4. policy decides the resident set for the next minute.
            with timer.measure():
                next_resident = set(policy.on_minute(minute, invocations))

            # 5. charge memory for this minute.
            accountant.observe_minute(minute, loaded_this_minute, invocations)
            resident = next_resident

        return self._finalize(policy, duration, stats, accountant, timer)

    # ------------------------------------------------------------------ #
    def _finalize(
        self,
        policy: ProvisioningPolicy,
        duration: int,
        stats: Dict[str, FunctionStats],
        accountant: MemoryAccountant,
        timer: OverheadTimer,
    ) -> SimulationResult:
        """Merge accountant aggregates into the per-function statistics."""
        for function_id, wasted in accountant.wmt_per_function.items():
            function_stats = stats.get(function_id)
            if function_stats is None:
                function_stats = FunctionStats(function_id=function_id)
                stats[function_id] = function_stats
            function_stats.wasted_memory_time = wasted

        return SimulationResult(
            policy_name=policy.name,
            duration_minutes=duration,
            per_function=stats,
            memory_usage=np.array(accountant.usage_series, dtype=np.int64),
            total_wasted_memory_time=accountant.wasted_memory_time,
            emcr=accountant.effective_memory_consumption_ratio,
            overhead_seconds=timer.total_seconds,
            overhead_per_minute=timer.mean_seconds,
        )

    # ------------------------------------------------------------------ #
    def _warm_up(self, policy: ProvisioningPolicy) -> Set[str]:
        """Replay the tail of the training trace through the policy.

        The replayed minutes are numbered negatively (``-warmup .. -1``) so
        the simulation window starts at minute 0, and no metrics are charged.
        Returns the resident set the policy declares for minute 0.
        """
        if self.training_trace is None or self.warmup_minutes <= 0:
            return set()
        training = self.training_trace
        start = max(0, training.duration_minutes - self.warmup_minutes)
        offset = training.duration_minutes
        resident: Set[str] = set()
        for minute, invocations in training.iter_minutes(start=start):
            resident = set(policy.on_minute(minute - offset, invocations))
        return resident


def simulate_policy(
    policy: ProvisioningPolicy,
    simulation_trace: Trace,
    training_trace: Trace | None = None,
    initially_resident: Set[str] | None = None,
    warmup_minutes: int = Simulator.DEFAULT_WARMUP_MINUTES,
    engine: str = "vectorized",
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run one policy."""
    simulator = Simulator(
        simulation_trace=simulation_trace,
        training_trace=training_trace,
        initially_resident=initially_resident,
        warmup_minutes=warmup_minutes,
        engine=engine,
    )
    return simulator.run(policy)
