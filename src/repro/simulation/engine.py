"""The discrete-time simulation engine driving provisioning policies.

The engine iterates the simulation trace minute by minute.  For each minute it

1. looks up which functions are invoked;
2. charges a cold start for every invoked function that is not resident;
3. considers all invoked functions resident for the remainder of the minute
   (they were loaded on demand to serve the request);
4. asks the policy for the resident set of the next minute, timing the call;
5. charges memory usage and wasted memory time for the minute.

This matches the accounting of §II-B/§V-A: one memory unit per loaded
instance-minute, one WMT unit per loaded-but-idle instance-minute, one cold
start per invoked-while-absent minute.

Two interchangeable implementations of this contract exist:

``vectorized`` (the default)
    Residency and accounting run on numpy boolean masks over function
    *indices*, using the trace's cached
    :meth:`~repro.traces.trace.Trace.invocation_index`.  The engine drives
    **only** the indexed policy contract
    (:class:`~repro.simulation.vector_policy.VectorizedPolicy`): index-native
    policies are stepped directly with invoked-index arrays, while unchanged
    dict-based policies are wrapped in a
    :class:`~repro.simulation.vector_policy.DictPolicyAdapter` that feeds
    them the prebuilt per-minute ``{function_id: count}`` mappings and diffs
    their declarations into a mask.  Memory charges are accumulated in
    arrays and handed to the
    :class:`~repro.simulation.memory.MemoryAccountant` in one batch.

    Only this engine supports the optional capacity-constrained mode: with a
    :class:`~repro.simulation.cluster.ClusterModel`, the policy's declared
    residency is *proposed* to an eviction arbiter that admits it under a
    (possibly sharded) memory cap, counting forced evictions and
    capacity-induced cold starts.

``reference``
    The original pure-Python loop over sets and dicts, kept as the executable
    specification of the uncapped accounting rules.  The regression tests
    assert that both implementations produce identical statistics; use it
    when auditing a change to the accounting semantics.

``event``
    The vectorized minute loop with the sub-minute event layer of
    :mod:`repro.simulation.events` hooked in: every minute bucket is
    expanded into timestamped invocation events (seeded arrival jitter,
    per-function duration profiles) and per-event cold-start waits are
    recorded into :class:`~repro.simulation.results.LatencyStats`.  Because
    the event layer only *observes* the vectorized loop, an event run's
    minute-granular outputs — and therefore its deterministic fingerprint —
    are identical to a vectorized run's; it adds the latency distribution on
    top.  Supports the cluster mode.

``event-feedback``
    The event engine with the observation loop *closed*: every minute, the
    tracker's rolling per-function latency window
    (:class:`~repro.simulation.events.LatencyWindow`, horizon configured by
    :attr:`~repro.simulation.events.EventConfig.feedback_window_minutes`) is
    streamed into the policy through
    :meth:`~repro.simulation.policy_base.ProvisioningPolicy.on_feedback`
    *before* the policy declares the next resident set.  The hook is a no-op
    on every policy that does not override it, so pre-existing policies stay
    fingerprint-identical to their ``event`` (and ``vectorized``) runs;
    latency-aware policies (e.g.
    :class:`~repro.baselines.latency_aware.LatencyAwareKeepAlivePolicy`) use
    the window to adapt, which legitimately changes their decisions.
    Supports the cluster mode.
"""

from __future__ import annotations

import copy
import time
import warnings
from typing import Dict, List, Set

import numpy as np

from repro.simulation.cluster import ClusterModel
from repro.simulation.events import EventConfig, EventTracker
from repro.simulation.memory import (
    DEFAULT_MEMORY_MB,
    MemoryAccountant,
    footprint_kb_vector,
)
from repro.simulation.overhead import OverheadTimer
from repro.simulation.policy_base import ProvisioningPolicy
from repro.simulation.spec import (
    DEFAULT_WARMUP_MINUTES,
    ENGINE_IMPLEMENTATIONS,
    ENGINE_VERSION,
    EVENT_ENGINES,
    MEMORY_MODES,
    RunSpec,
)
from repro.simulation.sharding import shard_assignment, shard_fallback_reason
from repro.simulation.results import (
    ClusterStats,
    FunctionStats,
    LatencyStats,
    SimulationResult,
)
from repro.simulation.vector_policy import DictPolicyAdapter, VectorizedPolicy
from repro.traces.trace import Trace

# The engine catalog constants (ENGINE_IMPLEMENTATIONS, MEMORY_MODES,
# EVENT_ENGINES, ENGINE_VERSION) historically lived here and are imported
# from this module all over the tree; they now live in
# :mod:`repro.simulation.spec` (the validation layer must not import the
# engine) and are re-exported above for compatibility.
__all__ = [
    "ENGINE_IMPLEMENTATIONS",
    "MEMORY_MODES",
    "EVENT_ENGINES",
    "ENGINE_VERSION",
    "ShardFallbackWarning",
    "Simulator",
    "simulate_policy",
]


class ShardFallbackWarning(RuntimeWarning):
    """A sharded run was requested but the configuration cannot decompose.

    The warning message carries the exact coupling (from
    :func:`repro.simulation.sharding.shard_fallback_reason`); the simulation
    then runs unsharded and produces the usual, correct result.
    """


class Simulator:
    """Drives a :class:`ProvisioningPolicy` over a simulation trace.

    Parameters
    ----------
    simulation_trace:
        Trace window to simulate (e.g. the final two days of a 14-day trace).
    training_trace:
        Optional trace window handed to the policy's offline phase.
    initially_resident:
        Function ids already loaded when the simulation begins.  Defaults to
        an empty memory.
    warmup_minutes:
        Number of minutes from the tail of the training trace replayed
        through the policy *before* metric collection starts.  The paper's
        evaluation treats the 12-day training window and the 2-day
        simulation window as one continuous timeline, so every policy enters
        the simulation with the memory state and recency information its own
        rules produce; replaying one day of history reproduces that boundary
        condition.  Set to 0 to start from a completely cold platform.
    engine:
        Which implementation runs the minute loop: ``"vectorized"``
        (default), ``"reference"``, ``"event"`` or ``"event-feedback"`` (see
        the module docstring).
    cluster:
        Optional :class:`~repro.simulation.cluster.ClusterModel` imposing a
        (possibly sharded) memory cap on the resident set.  Requires a
        mask-based engine (``vectorized`` or ``event``); the reference
        engine remains the executable specification of the paper's
        *uncapped* setting.
    events:
        Optional :class:`~repro.simulation.events.EventConfig` for the event
        engines (jitter seed, duration scaling, feedback-window horizon).
        Defaults are used when an event engine runs without a config;
        passing a config with a minute-granular engine is an error.
    shards:
        When >= 2, partition the function space into that many shards (see
        :mod:`repro.simulation.sharding`) and simulate each partition
        independently, merging the per-shard results into one
        :class:`~repro.simulation.results.SimulationResult` that is
        fingerprint-identical to the unsharded run.  Sharding applies only
        when the configuration decomposes exactly (``shard_safe`` policy,
        mask-based engine, migration-free node-aligned cluster, …);
        otherwise :meth:`run` emits a :class:`ShardFallbackWarning` with the
        coupling that prevents it and executes unsharded.  ``0`` (default)
        and ``1`` mean unsharded.
    shard_placement:
        Name of the :class:`~repro.simulation.placement.PlacementStrategy`
        deriving the function→shard partition (default ``"hash"``).  For
        ``shard_safe`` policies the choice affects load balance across
        shards, never the merged result.
    memory_mode:
        ``"unit"`` (default): the paper's abstract one-unit-per-instance
        accounting, byte-identical to all prior releases.  ``"mb"``:
        additionally weigh every loaded instance by its measured footprint
        (``FunctionRecord.memory_mb``, integer-KB quantized; functions
        without a join fall back to
        :data:`~repro.simulation.memory.DEFAULT_MEMORY_MB`) and report
        MB-denominated usage/WMT/EMCR alongside the unit series.  Requires a
        mask-based engine; residency *decisions* are unchanged unless the
        cluster model itself is MB-denominated
        (``ClusterModel.capacity_unit="mb"``, which requires this mode).
    spec:
        A ready-made :class:`~repro.simulation.spec.RunSpec` instead of the
        individual knobs above (mutually exclusive with them).  The spec's
        ``streaming`` field is honoured: a streaming simulator drops the
        training trace and the warm-up replay, exactly as the parallel
        runner's streaming mode always has.
    """

    #: Default warm-up horizon (see :data:`repro.simulation.spec
    #: .DEFAULT_WARMUP_MINUTES`, the single home of the value).
    DEFAULT_WARMUP_MINUTES = DEFAULT_WARMUP_MINUTES

    def __init__(
        self,
        simulation_trace: Trace,
        training_trace: Trace | None = None,
        initially_resident: Set[str] | None = None,
        warmup_minutes: int | None = None,
        engine: str | None = None,
        cluster: ClusterModel | None = None,
        events: EventConfig | None = None,
        shards: int | None = None,
        shard_placement: str | None = None,
        memory_mode: str | None = None,
        spec: RunSpec | None = None,
    ) -> None:
        if spec is None:
            # Back-compat shim: the classic keywords build the spec, whose
            # constructor runs the one shared validate().  None means "use
            # the RunSpec field default".
            spec = RunSpec.build(
                engine=engine,
                warmup_minutes=warmup_minutes,
                shards=shards,
                shard_placement=shard_placement,
                memory_mode=memory_mode,
                cluster=cluster,
                events=events,
            )
        elif any(
            value is not None
            for value in (
                warmup_minutes, engine, cluster, events,
                shards, shard_placement, memory_mode,
            )
        ):
            raise ValueError(
                "pass either spec= or the individual run knobs, not both"
            )
        else:
            spec.validate()
        self.spec = spec
        self.simulation_trace = simulation_trace
        # Streaming semantics live in the spec: no training input, no
        # warm-up replay — the policy enters the window completely cold.
        self.training_trace = None if spec.streaming else training_trace
        self.initially_resident = set(initially_resident or set())
        self.warmup_minutes = 0 if spec.streaming else spec.warmup_minutes
        self.engine = spec.engine
        self.cluster = spec.cluster
        self.events = spec.events
        self.shards = spec.shards
        self.shard_placement = spec.shard_placement
        self.memory_mode = spec.memory_mode

    def run(self, policy: ProvisioningPolicy, prepare: bool = True) -> SimulationResult:
        """Simulate ``policy`` over the configured trace and return its result.

        Parameters
        ----------
        policy:
            The provisioning policy to evaluate.  It is prepared (offline
            phase) unless ``prepare`` is False.
        prepare:
            Whether to call :meth:`ProvisioningPolicy.prepare` before running.
            Callers that prepared the policy themselves (e.g. to share an
            expensive offline phase across parameter sweeps) can pass False.
        """
        if self.shards >= 2:
            reason = shard_fallback_reason(
                policy,
                self.engine,
                self.cluster,
                self.shards,
                self.shard_placement,
                prepare,
                self.initially_resident,
                self.simulation_trace,
                training_trace=self.training_trace,
                events=self.events,
            )
            if reason is None:
                return self._run_sharded(policy)
            warnings.warn(
                f"sharded execution disabled ({reason}); running unsharded",
                ShardFallbackWarning,
                stacklevel=2,
            )

        trace = self.simulation_trace

        if prepare:
            policy.prepare(trace.records(), self.training_trace)

        # Index-native policies are bound to the simulation trace's function
        # space before any stepping: the warm-up replay reaches them through
        # the dict bridge, which needs the index.  (Training and simulation
        # windows are slices of one trace, so they share one id ordering.)
        if isinstance(policy, VectorizedPolicy):
            policy.bind_index(trace.invocation_index())

        resident: Set[str] = set(self.initially_resident)
        resident |= self._warm_up(policy)

        if self.engine == "reference":
            return self._run_reference(policy, resident)
        tracker = None
        if self.engine in EVENT_ENGINES:
            tracker = EventTracker(
                trace, self.events, feedback=self.engine == "event-feedback"
            )
        return self._run_vectorized(policy, resident, tracker)

    # ------------------------------------------------------------------ #
    # Sharded execution
    # ------------------------------------------------------------------ #
    def shard_simulator(self, positions: np.ndarray) -> "Simulator":
        """Build the sub-simulator for one shard's function positions.

        Exposed separately from :meth:`_run_sharded` so the parallel runner
        can construct the identical per-shard simulation inside worker
        processes (the shard's trace slice is cut worker-side from the
        shared pickled trace).
        """
        sub_cluster = None
        if self.cluster is not None:
            # Shard == node (enforced by the fallback guard): each shard runs
            # its node in isolation under exactly the node's capacity share.
            sub_cluster = ClusterModel(
                memory_capacity=self.cluster.node_capacity,
                n_nodes=1,
                placement="hash",
                capacity_unit=self.cluster.capacity_unit,
            )
        sub_trace = self.simulation_trace.shard(positions)
        return Simulator(
            simulation_trace=sub_trace,
            training_trace=(
                self.training_trace.shard(positions)
                if self.training_trace is not None
                else None
            ),
            initially_resident={
                fid for fid in self.initially_resident if fid in sub_trace
            },
            spec=self.spec.override(shards=0, cluster=sub_cluster),
        )

    def _run_sharded(self, policy: ProvisioningPolicy) -> SimulationResult:
        """Partition, simulate every shard in-process, merge.

        Each shard deep-copies the *unprepared* policy and runs its own
        offline phase against its partition — for ``shard_safe`` policies
        preparation restricts cleanly, so the per-shard decisions equal the
        global run's decisions restricted to the shard.  Empty partitions
        (possible under ``hash`` with few functions) contribute ``None`` so
        cluster merging keeps node columns aligned with shard numbers.
        """
        assignment = shard_assignment(
            self.shards,
            self.simulation_trace,
            self.shard_placement,
            training_trace=self.training_trace,
        )
        results: List[SimulationResult | None] = []
        for shard in range(self.shards):
            positions = np.flatnonzero(assignment == shard)
            if positions.size == 0:
                results.append(None)
                continue
            sub = self.shard_simulator(positions)
            results.append(sub.run(copy.deepcopy(policy), prepare=True))
        return SimulationResult.merge_shards(results, cluster_model=self.cluster)

    # ------------------------------------------------------------------ #
    # Vectorized implementation (default)
    # ------------------------------------------------------------------ #
    def _run_vectorized(
        self,
        policy: ProvisioningPolicy,
        initial_resident: Set[str],
        tracker: EventTracker | None = None,
    ) -> SimulationResult:
        """Minute loop on numpy masks over the trace's invocation index.

        The loop drives the indexed policy contract exclusively:
        :class:`VectorizedPolicy` instances are stepped with invoked-index
        arrays and answer with residency masks; dict-based policies are
        wrapped in a :class:`DictPolicyAdapter` which preserves their exact
        semantics (prebuilt read-only per-minute mappings in, declared-set
        diffs out).  Three invariants keep the per-minute Python work small:

        * the per-minute mappings and the CSR invocation index are prebuilt
          once per trace and shared by every run over that trace;
        * every invoked function is loaded during its minute, so wasted
          memory time needs no per-minute mask: per function it equals
          (minutes loaded) - (minutes invoked), and per minute the idle count
          equals (instances loaded) - (functions invoked);
        * the adapter updates its mask from the *difference* between the
          policy's consecutive declarations, so a steady-state dict policy
          costs nothing and a churning one costs only its churn.

        With an :class:`~repro.simulation.events.EventTracker` (the
        event-granular engines), each minute is additionally expanded into
        timestamped invocation events after cold starts are charged; the
        tracker is a pure observer, so every minute-granular output is
        unchanged.
        """
        trace = self.simulation_trace
        duration = trace.duration_minutes
        index = trace.invocation_index()
        function_ids = index.function_ids
        index_of = index.index_of
        indptr, inv_indices, inv_counts = index.indptr, index.indices, index.counts
        n_functions = index.n_functions

        timer = OverheadTimer()
        clock = time.perf_counter

        if isinstance(policy, VectorizedPolicy):
            driver: VectorizedPolicy = policy  # bound in run()
            # Index-native policies do all their decision work inside
            # on_minute_indexed, so the engine times the call directly.
            externally_timed = True
        else:
            driver = DictPolicyAdapter(policy)
            driver.bind_index(index)
            driver.seed_resident(initial_resident)
            # The adapter times only the wrapped policy's on_minute — its
            # own mapping/diff bookkeeping is engine machinery and stays out
            # of the RQ2 overhead metric, matching the reference engine.
            driver.overhead_timer = timer
            externally_timed = False

        resident = np.zeros(n_functions, dtype=bool)
        # Resident ids unknown to the trace (possible when a policy was
        # prepared against different metadata); kept out of the masks but
        # charged exactly like the reference implementation charges them.
        extra: Set[str] = set()
        for function_id in initial_resident:
            position = index_of.get(function_id)
            if position is None:
                extra.add(function_id)
            else:
                resident[position] = True

        # MB mode: per-function footprints in integer KB, aligned with the
        # index's function order; unknown-to-trace extras are charged the
        # default footprint, exactly as they are charged one unit.
        footprints_kb: np.ndarray | None = None
        usage_kb: np.ndarray | None = None
        idle_kb: np.ndarray | None = None
        default_kb = 0
        if self.memory_mode == "mb":
            records_by_id = {record.function_id: record for record in trace.records()}
            footprints_kb = footprint_kb_vector(
                [records_by_id[fid] for fid in function_ids]
            )
            default_kb = round(1024 * DEFAULT_MEMORY_MB)
            usage_kb = np.zeros(duration, dtype=np.int64)
            idle_kb = np.zeros(duration, dtype=np.int64)

        cluster = self.cluster
        arbiter = None
        node_usage: np.ndarray | None = None
        capacity_cold_starts = 0
        migration_cold_starts = 0
        declared_entering: np.ndarray | None = None
        migrated_entering: np.ndarray | None = None
        if cluster is not None:
            # The training window feeds offline placement signals (the
            # correlation-aware strategy mines co-firing groups from it).
            # A training-less run — notably the streaming evaluation mode,
            # whose whole point is zero offline knowledge — supplies none:
            # mining the *simulation* trace here would leak future traffic
            # into placement, so trace-hungry strategies fall back to their
            # lazy behaviour instead.
            arbiter = cluster.arbiter(
                function_ids,
                trace=self.training_trace,
                footprints_kb=(
                    footprints_kb if cluster.capacity_unit == "mb" else None
                ),
            )
            node_usage = np.zeros((duration, cluster.n_nodes), dtype=np.int64)
            # The entering resident set is itself subject to the cap; the
            # policy's "declaration" for minute 0 is the uncapped entering set.
            declared_entering = resident.copy()
            resident, _ = arbiter.admit(resident)
            migrated_entering = arbiter.migrated_last

        invoked_minutes = np.zeros(n_functions, dtype=np.int64)
        cold_starts = np.zeros(n_functions, dtype=np.int64)
        loaded_minutes = np.zeros(n_functions, dtype=np.int64)
        usage = np.zeros(duration, dtype=np.int64)
        idle = np.zeros(duration, dtype=np.int64)
        extra_wmt: Dict[str, int] = {}

        for minute in range(duration):
            start, stop = indptr[minute], indptr[minute + 1]
            invoked = inv_indices[start:stop]
            counts = inv_counts[start:stop]

            if invoked.size:
                # 1-2. charge cold starts against the entering resident set.
                invoked_minutes[invoked] += 1
                cold_mask = ~resident[invoked]
                cold = invoked[cold_mask]
                cold_starts[cold] += 1
                if arbiter is not None and cold.size:
                    # Cold starts the policy had provisioned against: they
                    # exist only because the arbiter trimmed the declaration.
                    capacity_cold_starts += int(
                        np.count_nonzero(declared_entering[cold])
                    )
                    if migrated_entering is not None:
                        # ... and within those, the ones a sustained-pressure
                        # migration forced onto a new node.
                        migration_cold_starts += int(
                            np.count_nonzero(migrated_entering[cold])
                        )
                if tracker is not None:
                    # Sub-minute observation layer: expand this minute into
                    # timestamped events and record per-event waits.  Under a
                    # cluster the arbiter's current placement scopes each
                    # node's CPU pool.
                    tracker.observe_minute(
                        minute, invoked, counts, cold_mask, declared_entering,
                        migrated_entering,
                        node_of=arbiter.node_of if arbiter is not None else None,
                    )
                # 3. invoked functions are loaded on demand for this minute.
                resident[invoked] = True
                if arbiter is not None:
                    # Lazy placement strategies assign a node the first time
                    # a function is loaded — before usage is attributed.
                    arbiter.ensure_placed(invoked)

            # 5. charge memory for this minute (batched at the end of the
            # run).  Invoked functions are always loaded, so the idle count
            # is simply loaded minus invoked.
            loaded = np.count_nonzero(resident) + len(extra)
            usage[minute] = loaded
            idle[minute] = loaded - invoked.size
            if usage_kb is not None:
                # Invoked functions are all resident during their minute, so
                # the idle KB is the resident total minus the invoked total.
                resident_kb = (
                    int(footprints_kb[resident].sum()) + len(extra) * default_kb
                )
                usage_kb[minute] = resident_kb
                idle_kb[minute] = resident_kb - int(footprints_kb[invoked].sum())
            loaded_minutes += resident
            for function_id in extra:
                extra_wmt[function_id] = extra_wmt.get(function_id, 0) + 1
            if arbiter is not None:
                node_usage[minute] = arbiter.node_usage(resident)
                arbiter.observe_invocations(minute, invoked)

            if tracker is not None and tracker.feedback:
                # Close the loop: stream the rolling latency window into the
                # policy before it declares the next resident set.  Processing
                # the window is policy decision work, so it is charged to the
                # RQ2 overhead metric alongside the on_minute call.
                window = tracker.feedback_window(minute)
                with timer.measure():
                    driver.on_feedback(minute, window)

            # 4. policy decides the resident set for the next minute.
            if externally_timed:
                started = clock()
                declared = driver.on_minute_indexed(minute, invoked, counts)
                timer.add(clock() - started)
            else:
                declared = driver.on_minute_indexed(minute, invoked, counts)
            extra = driver.extra_resident

            if arbiter is not None:
                declared_entering = declared.copy()
                resident, _ = arbiter.admit(declared)
                migrated_entering = arbiter.migrated_last
            else:
                np.copyto(resident, declared)

        wmt = loaded_minutes - invoked_minutes
        wmt_per_function: Dict[str, int] = {
            function_ids[f]: int(wmt[f]) for f in np.flatnonzero(wmt)
        }
        for function_id, wasted in extra_wmt.items():
            wmt_per_function[function_id] = wmt_per_function.get(function_id, 0) + wasted

        accountant = MemoryAccountant(duration)
        accountant.observe_batch(
            usage,
            idle,
            wmt_per_function,
            node_usage=node_usage,
            usage_kb=usage_kb,
            idle_kb=idle_kb,
        )

        cluster_stats: ClusterStats | None = None
        if cluster is not None and arbiter is not None and node_usage is not None:
            cluster_stats = ClusterStats(
                n_nodes=cluster.n_nodes,
                memory_capacity=cluster.memory_capacity,
                node_capacity=cluster.node_capacity,
                evictions=arbiter.evictions,
                capacity_cold_starts=capacity_cold_starts,
                node_usage=node_usage,
                placement=cluster.placement,
                migrations=arbiter.migrations,
                migration_cold_starts=migration_cold_starts,
                node_evictions=arbiter.node_evictions,
                capacity_unit=cluster.capacity_unit,
            )

        stats: Dict[str, FunctionStats] = {}
        for position in np.flatnonzero(invoked_minutes):
            function_id = function_ids[position]
            stats[function_id] = FunctionStats(
                function_id=function_id,
                invocations=int(invoked_minutes[position]),
                cold_starts=int(cold_starts[position]),
            )
        latency = tracker.finalize() if tracker is not None else None
        return self._finalize(
            policy, duration, stats, accountant, timer, cluster_stats, latency
        )

    # ------------------------------------------------------------------ #
    # Reference implementation (executable specification)
    # ------------------------------------------------------------------ #
    def _run_reference(
        self, policy: ProvisioningPolicy, initial_resident: Set[str]
    ) -> SimulationResult:
        """The original per-minute loop over Python sets and dicts."""
        trace = self.simulation_trace
        duration = trace.duration_minutes

        accountant = MemoryAccountant(duration)
        timer = OverheadTimer()
        stats: Dict[str, FunctionStats] = {}
        resident: Set[str] = set(initial_resident)

        for minute, invocations in trace.iter_minutes():
            # 1-2. charge cold starts against the resident set entering the minute.
            for function_id in invocations:
                function_stats = stats.get(function_id)
                if function_stats is None:
                    function_stats = FunctionStats(function_id=function_id)
                    stats[function_id] = function_stats
                function_stats.invocations += 1
                if function_id not in resident:
                    function_stats.cold_starts += 1

            # 3. invoked functions are loaded on demand for this minute.
            loaded_this_minute = resident | set(invocations)

            # 4. policy decides the resident set for the next minute.
            with timer.measure():
                next_resident = set(policy.on_minute(minute, invocations))

            # 5. charge memory for this minute.
            accountant.observe_minute(minute, loaded_this_minute, invocations)
            resident = next_resident

        return self._finalize(policy, duration, stats, accountant, timer)

    # ------------------------------------------------------------------ #
    def _finalize(
        self,
        policy: ProvisioningPolicy,
        duration: int,
        stats: Dict[str, FunctionStats],
        accountant: MemoryAccountant,
        timer: OverheadTimer,
        cluster_stats: ClusterStats | None = None,
        latency: LatencyStats | None = None,
    ) -> SimulationResult:
        """Merge accountant aggregates into the per-function statistics."""
        for function_id, wasted in accountant.wmt_per_function.items():
            function_stats = stats.get(function_id)
            if function_stats is None:
                function_stats = FunctionStats(function_id=function_id)
                stats[function_id] = function_stats
            function_stats.wasted_memory_time = wasted

        usage_kb_series = accountant.usage_kb_series
        return SimulationResult(
            policy_name=policy.name,
            duration_minutes=duration,
            per_function=stats,
            memory_usage=np.array(accountant.usage_series, dtype=np.int64),
            total_wasted_memory_time=accountant.wasted_memory_time,
            emcr=accountant.effective_memory_consumption_ratio,
            overhead_seconds=timer.total_seconds,
            overhead_per_minute=timer.mean_seconds,
            cluster=cluster_stats,
            latency=latency,
            memory_mode=self.memory_mode,
            memory_usage_kb=(
                np.array(usage_kb_series, dtype=np.int64)
                if usage_kb_series is not None
                else None
            ),
            total_wasted_memory_kb=accountant.wasted_memory_kb_minutes,
            emcr_mb=accountant.effective_memory_consumption_ratio_mb,
        )

    # ------------------------------------------------------------------ #
    def _warm_up(self, policy: ProvisioningPolicy) -> Set[str]:
        """Replay the tail of the training trace through the policy.

        The replayed minutes are numbered negatively (``-warmup .. -1``) so
        the simulation window starts at minute 0, and no metrics are charged.
        Returns the resident set the policy declares for minute 0.
        """
        if self.training_trace is None or self.warmup_minutes <= 0:
            return set()
        training = self.training_trace
        start = max(0, training.duration_minutes - self.warmup_minutes)
        offset = training.duration_minutes
        resident: Set[str] = set()
        for minute, invocations in training.iter_minutes(start=start):
            resident = set(policy.on_minute(minute - offset, invocations))
        return resident


def simulate_policy(
    policy: ProvisioningPolicy,
    simulation_trace: Trace,
    training_trace: Trace | None = None,
    initially_resident: Set[str] | None = None,
    warmup_minutes: int | None = None,
    engine: str | None = None,
    cluster: ClusterModel | None = None,
    events: EventConfig | None = None,
    shards: int | None = None,
    shard_placement: str | None = None,
    memory_mode: str | None = None,
    spec: RunSpec | None = None,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run one policy."""
    simulator = Simulator(
        simulation_trace=simulation_trace,
        training_trace=training_trace,
        initially_resident=initially_resident,
        warmup_minutes=warmup_minutes,
        engine=engine,
        cluster=cluster,
        events=events,
        shards=shards,
        shard_placement=shard_placement,
        memory_mode=memory_mode,
        spec=spec,
    )
    return simulator.run(policy)
