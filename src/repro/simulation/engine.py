"""The discrete-time simulation engine driving provisioning policies.

The engine iterates the simulation trace minute by minute.  For each minute it

1. looks up which functions are invoked;
2. charges a cold start for every invoked function that is not resident;
3. considers all invoked functions resident for the remainder of the minute
   (they were loaded on demand to serve the request);
4. asks the policy for the resident set of the next minute, timing the call;
5. charges memory usage and wasted memory time for the minute.

This matches the accounting of §II-B/§V-A: one memory unit per loaded
instance-minute, one WMT unit per loaded-but-idle instance-minute, one cold
start per invoked-while-absent minute.
"""

from __future__ import annotations

from typing import Dict, Mapping, Set

import numpy as np

from repro.simulation.memory import MemoryAccountant
from repro.simulation.overhead import OverheadTimer
from repro.simulation.policy_base import ProvisioningPolicy
from repro.simulation.results import FunctionStats, SimulationResult
from repro.traces.trace import Trace


class Simulator:
    """Drives a :class:`ProvisioningPolicy` over a simulation trace.

    Parameters
    ----------
    simulation_trace:
        Trace window to simulate (e.g. the final two days of a 14-day trace).
    training_trace:
        Optional trace window handed to the policy's offline phase.
    initially_resident:
        Function ids already loaded when the simulation begins.  Defaults to
        an empty memory.
    warmup_minutes:
        Number of minutes from the tail of the training trace replayed
        through the policy *before* metric collection starts.  The paper's
        evaluation treats the 12-day training window and the 2-day
        simulation window as one continuous timeline, so every policy enters
        the simulation with the memory state and recency information its own
        rules produce; replaying one day of history reproduces that boundary
        condition.  Set to 0 to start from a completely cold platform.
    """

    #: Default warm-up horizon: one day covers the longest keep-alive and
    #: prediction horizons used by SPES and the baselines.
    DEFAULT_WARMUP_MINUTES = 1440

    def __init__(
        self,
        simulation_trace: Trace,
        training_trace: Trace | None = None,
        initially_resident: Set[str] | None = None,
        warmup_minutes: int = DEFAULT_WARMUP_MINUTES,
    ) -> None:
        if warmup_minutes < 0:
            raise ValueError("warmup_minutes must be non-negative")
        self.simulation_trace = simulation_trace
        self.training_trace = training_trace
        self.initially_resident = set(initially_resident or set())
        self.warmup_minutes = warmup_minutes

    def run(self, policy: ProvisioningPolicy, prepare: bool = True) -> SimulationResult:
        """Simulate ``policy`` over the configured trace and return its result.

        Parameters
        ----------
        policy:
            The provisioning policy to evaluate.  It is prepared (offline
            phase) unless ``prepare`` is False.
        prepare:
            Whether to call :meth:`ProvisioningPolicy.prepare` before running.
            Callers that prepared the policy themselves (e.g. to share an
            expensive offline phase across parameter sweeps) can pass False.
        """
        trace = self.simulation_trace
        duration = trace.duration_minutes

        if prepare:
            policy.prepare(trace.records(), self.training_trace)

        accountant = MemoryAccountant(duration)
        timer = OverheadTimer()
        stats: Dict[str, FunctionStats] = {}
        resident: Set[str] = set(self.initially_resident)
        resident |= self._warm_up(policy)

        for minute, invocations in trace.iter_minutes():
            # 1-2. charge cold starts against the resident set entering the minute.
            for function_id in invocations:
                function_stats = stats.get(function_id)
                if function_stats is None:
                    function_stats = FunctionStats(function_id=function_id)
                    stats[function_id] = function_stats
                function_stats.invocations += 1
                if function_id not in resident:
                    function_stats.cold_starts += 1

            # 3. invoked functions are loaded on demand for this minute.
            loaded_this_minute = resident | set(invocations)

            # 4. policy decides the resident set for the next minute.
            with timer.measure():
                next_resident = set(policy.on_minute(minute, invocations))

            # 5. charge memory for this minute.
            accountant.observe_minute(minute, loaded_this_minute, invocations)
            resident = next_resident

        for function_id, wasted in accountant.wmt_per_function.items():
            function_stats = stats.get(function_id)
            if function_stats is None:
                function_stats = FunctionStats(function_id=function_id)
                stats[function_id] = function_stats
            function_stats.wasted_memory_time = wasted

        return SimulationResult(
            policy_name=policy.name,
            duration_minutes=duration,
            per_function=stats,
            memory_usage=np.array(accountant.usage_series, dtype=np.int64),
            total_wasted_memory_time=accountant.wasted_memory_time,
            emcr=accountant.effective_memory_consumption_ratio,
            overhead_seconds=timer.total_seconds,
            overhead_per_minute=timer.mean_seconds,
        )

    # ------------------------------------------------------------------ #
    def _warm_up(self, policy: ProvisioningPolicy) -> Set[str]:
        """Replay the tail of the training trace through the policy.

        The replayed minutes are numbered negatively (``-warmup .. -1``) so
        the simulation window starts at minute 0, and no metrics are charged.
        Returns the resident set the policy declares for minute 0.
        """
        if self.training_trace is None or self.warmup_minutes <= 0:
            return set()
        training = self.training_trace
        start = max(0, training.duration_minutes - self.warmup_minutes)
        offset = training.duration_minutes
        resident: Set[str] = set()
        for minute, invocations in training.iter_minutes(start=start):
            resident = set(policy.on_minute(minute - offset, invocations))
        return resident


def simulate_policy(
    policy: ProvisioningPolicy,
    simulation_trace: Trace,
    training_trace: Trace | None = None,
    initially_resident: Set[str] | None = None,
    warmup_minutes: int = Simulator.DEFAULT_WARMUP_MINUTES,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run one policy."""
    simulator = Simulator(
        simulation_trace=simulation_trace,
        training_trace=training_trace,
        initially_resident=initially_resident,
        warmup_minutes=warmup_minutes,
    )
    return simulator.run(policy)
