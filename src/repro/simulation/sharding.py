"""Sharded execution: partition the function space, simulate, recombine.

The engines' minute loops are *function-local* for a large class of policies
(:attr:`~repro.simulation.policy_base.ProvisioningPolicy.shard_safe`): every
decision about a function depends only on that function's own history.  For
such policies a simulation over N functions factors exactly into independent
simulations over any partition of those functions — cold starts, invoked
minutes, per-function wasted memory time, the global memory series (a sum of
per-function indicator series) and even the capacity arbiter's per-node
trims (when the cluster is migration-free and hash-placed) all restrict
cleanly to each part and add back up associatively.

This module provides the partitioning half of that contract:

* :func:`shard_assignment` derives a deterministic function→shard mapping
  from the existing :class:`~repro.simulation.placement.PlacementStrategy`
  registry, so the sharded mode reuses the exact node-assignment logic the
  cluster model already trusts (including correlation-aware co-location);
* :func:`shard_fallback_reason` is the single source of truth for when a
  configuration could *not* be sharded without changing its result — the
  simulator and the parallel runner both consult it and fall back to the
  unsharded path with the returned diagnostic instead of silently diverging.

The execution half lives in :meth:`repro.simulation.engine.Simulator`
(serial per-shard loop) and :class:`repro.experiments.parallel.ParallelRunner`
(per-shard cells on the process pool); the recombination half is
:meth:`repro.simulation.results.SimulationResult.merge_shards`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Set

import numpy as np

from repro.simulation.cluster import ClusterModel
from repro.simulation.placement import UNPLACED, get_placement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.policy_base import ProvisioningPolicy
    from repro.traces.trace import Trace

__all__ = ["shard_assignment", "shard_fallback_reason"]


def shard_assignment(
    n_shards: int,
    simulation_trace: "Trace",
    shard_placement: str = "hash",
    training_trace: "Trace | None" = None,
) -> np.ndarray:
    """Deterministic shard id per function position, ``shape (n_functions,)``.

    The partition is produced by the registered placement strategy named
    ``shard_placement``, bound against a synthetic uncapped cluster model of
    ``n_shards`` nodes (capacity large enough that no strategy chunks or
    trims).  Lazily placed functions — everything under ``least-loaded``,
    group leftovers under ``correlation-aware`` — are completed here, in
    first-activity order over the simulation window (never-invoked functions
    last, by position), through the strategy's own greedy :meth:`place`
    so the partition balances the way the lazy arbiter would.

    For ``shard_safe`` policies the partition choice affects only load
    balance, never the merged result — the equivalence tests sweep every
    registered strategy and assert one fingerprint.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    index = simulation_trace.invocation_index()
    function_ids = index.function_ids
    model = ClusterModel(
        memory_capacity=max(len(function_ids), n_shards),
        n_nodes=n_shards,
        placement=shard_placement,
    )
    strategy = get_placement(shard_placement)
    nodes = np.asarray(
        strategy.bind(model, function_ids, trace=training_trace), dtype=np.int64
    )

    pending = np.flatnonzero(nodes == UNPLACED)
    if pending.size:
        # First-activity order over the simulation window: the flat position
        # of each function's first entry in the minute-major index is a
        # strictly increasing proxy for (first minute, within-minute order).
        first_seen = np.full(len(function_ids), np.iinfo(np.int64).max, np.int64)
        invoked, first_position = np.unique(index.indices, return_index=True)
        first_seen[invoked] = first_position
        ordered = pending[np.lexsort((pending, first_seen[pending]))]
        usage = np.bincount(nodes[nodes != UNPLACED], minlength=n_shards)
        nodes[ordered] = strategy.place(ordered, usage, model.node_capacity)
    return nodes


def shard_fallback_reason(
    policy: "ProvisioningPolicy",
    engine: str,
    cluster: ClusterModel | None,
    shards: int,
    shard_placement: str,
    prepare: bool,
    initially_resident: Set[str],
    simulation_trace: "Trace",
    training_trace: "Trace | None" = None,
    events: "object | None" = None,
) -> str | None:
    """Why this configuration cannot shard, or ``None`` when it can.

    The conditions are exactly the couplings that would make a sharded run
    diverge from the unsharded one:

    * the policy itself must be ``shard_safe`` (function-local decisions);
    * the reference engine is the executable specification of the single
      process loop and is never sharded;
    * each shard re-runs the offline phase on its own partition, so a
      caller-prepared policy (``prepare=False``) cannot be split;
    * with a cluster model, shards must coincide with nodes: migration and
      lazy/global placement couple nodes to each other, and a capacity that
      does not divide evenly makes the global bound bite across nodes;
    * an intra-node CPU pool (``events.cpu``) without a cluster is one
      node-wide pool shared by every function, which any partition would
      split;
    * initially resident ids unknown to the trace would be double-charged
      as extra residents by every shard.
    """
    if shards < 2:
        return "shards < 2 requested"
    if not getattr(policy, "shard_safe", False):
        return (
            f"policy {policy.name!r} is not shard_safe (its decisions couple "
            "functions across partitions)"
        )
    if engine == "reference":
        return "the reference engine is the unsharded executable specification"
    if not prepare:
        return (
            "prepare=False: a policy prepared against the full population "
            "cannot be re-prepared per shard"
        )
    if cluster is not None:
        if cluster.migration_enabled:
            return "cluster migration moves functions between nodes mid-run"
        if cluster.n_nodes != shards:
            return (
                f"shards ({shards}) must equal cluster nodes "
                f"({cluster.n_nodes}) so each shard runs one node"
            )
        if cluster.placement != "hash":
            return (
                f"cluster placement {cluster.placement!r} assigns nodes from "
                "global load; only the static 'hash' placement partitions "
                "independently"
            )
        if shard_placement != "hash":
            return (
                "with a cluster model the shard partition must follow the "
                "cluster's own 'hash' placement"
            )
        if cluster.memory_capacity % cluster.n_nodes != 0:
            return (
                f"memory capacity {cluster.memory_capacity} does not divide "
                f"evenly over {cluster.n_nodes} nodes; the rounded-up "
                "node capacity makes the global memory bound couple nodes"
            )
    if getattr(events, "cpu", None) is not None and cluster is None:
        return (
            "an intra-node CPU pool without a cluster is shared by every "
            "function; partitioning it would change the contention"
        )
    if training_trace is not None:
        sim_ids = [record.function_id for record in simulation_trace.records()]
        train_ids = [record.function_id for record in training_trace.records()]
        if sim_ids != train_ids:
            return (
                "training and simulation traces do not share one function "
                "ordering, so one partition cannot slice both windows"
            )
    unknown = {fid for fid in initially_resident if fid not in simulation_trace}
    if unknown:
        return (
            f"{len(unknown)} initially resident id(s) are unknown to the "
            "trace and cannot be attributed to a shard"
        )
    return None
