"""Capacity-constrained cluster simulation: memory caps, eviction, sharding.

The paper's simulation assumes a single host large enough to hold every
loaded instance, so no policy decision is ever overridden by the platform.
Real clusters are not like that: memory is finite and is partitioned across
nodes.  This module adds an optional *cluster model* to the simulator:

* a **global memory cap** — the cluster holds at most ``memory_capacity``
  instance units at the start of any minute;
* an **eviction arbiter** — the policy *proposes* a resident set, and the
  arbiter *admits* it; under pressure the arbiter evicts the
  least-recently-invoked proposed instances first (deterministic tie-break on
  function index), mirroring the controller/invoker split of cluster
  schedulers where per-function policies run below a cluster-level admission
  layer;
* optional **N-node sharding** — functions are assigned to nodes by a stable
  hash of their id, each node holding ``ceil(memory_capacity / n_nodes)``
  units, so hot shards feel pressure before the cluster average does.

Accounting additions (reported via
:class:`~repro.simulation.results.ClusterStats`):

* *evictions* — instances that were admitted-resident and that the policy
  proposed to keep, but that the arbiter forced out;
* *capacity-induced cold starts* — cold starts for functions the policy had
  declared resident (they would have been warm on an uncapped host);
* *per-node utilization* — per-minute loaded units per node.

On-demand loads are not capped: an invoked function is always loaded for its
minute (the request must be served somewhere), so transient usage may exceed
the cap during traffic spikes; the cap constrains what *stays* resident.

:class:`ClusterModel` is an immutable, picklable configuration; the mutable
per-run state lives in the :class:`ClusterArbiter` the engine creates for
each simulation, so one model can be shared across sweep cells and worker
processes.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np

__all__ = ["ClusterModel", "ClusterArbiter"]


@dataclass(frozen=True)
class ClusterModel:
    """Immutable description of the cluster the simulation runs on.

    Parameters
    ----------
    memory_capacity:
        Total instance units the cluster can keep resident between minutes.
    n_nodes:
        Number of nodes the capacity is sharded over.  Functions map to nodes
        by a stable hash of their id; each node holds at most
        ``ceil(memory_capacity / n_nodes)`` units, and the cluster-wide total
        never exceeds ``memory_capacity`` (both bounds are enforced).
    """

    memory_capacity: int
    n_nodes: int = 1

    def __post_init__(self) -> None:
        if self.memory_capacity < 1:
            raise ValueError("memory_capacity must be >= 1")
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.n_nodes > self.memory_capacity:
            raise ValueError("n_nodes cannot exceed memory_capacity")

    @property
    def node_capacity(self) -> int:
        """Instance units each node can keep resident."""
        return math.ceil(self.memory_capacity / self.n_nodes)

    def node_of(self, function_id: str) -> int:
        """Stable node assignment for one function id.

        Uses CRC-32 rather than Python's ``hash`` so the sharding is
        deterministic across processes and interpreter runs (``PYTHONHASHSEED``
        does not leak into simulation results).
        """
        return zlib.crc32(function_id.encode()) % self.n_nodes

    def arbiter(self, function_ids: tuple[str, ...]) -> "ClusterArbiter":
        """Build the per-run arbiter over a trace's function-index space."""
        return ClusterArbiter(self, function_ids)


class ClusterArbiter:
    """Per-run admission/eviction state for one :class:`ClusterModel`.

    The arbiter works in the trace's function-index space: the engine calls
    :meth:`observe_invocations` with each minute's invoked indices (recency
    bookkeeping) and :meth:`admit` with the policy's proposed residency mask;
    ``admit`` returns the admitted mask and counts forced evictions.
    """

    #: Recency sentinel: "never invoked" sorts before any real minute
    #: (warm-up minutes are negative, so the sentinel must be far below).
    _NEVER = -(2**62)

    def __init__(self, model: ClusterModel, function_ids: tuple[str, ...]) -> None:
        self.model = model
        n = len(function_ids)
        self.node_of = np.asarray(
            [model.node_of(function_id) for function_id in function_ids],
            dtype=np.int64,
        )
        self._last_invocation = np.full(n, self._NEVER, dtype=np.int64)
        self._admitted = np.zeros(n, dtype=bool)
        #: Total instances evicted under capacity pressure.
        self.evictions = 0

    # ------------------------------------------------------------------ #
    def observe_invocations(self, minute: int, invoked: np.ndarray) -> None:
        """Record this minute's invocations (drives the LRU eviction order)."""
        if invoked.size:
            self._last_invocation[invoked] = minute

    def node_usage(self, resident: np.ndarray) -> np.ndarray:
        """Per-node loaded-unit counts for a residency mask."""
        return np.bincount(
            self.node_of[np.flatnonzero(resident)], minlength=self.model.n_nodes
        )

    # ------------------------------------------------------------------ #
    def admit(self, proposed: np.ndarray) -> tuple[np.ndarray, int]:
        """Admit a proposed residency mask under the per-node capacity.

        Parameters
        ----------
        proposed:
            The policy's declared residency mask for the next minute.

        Returns
        -------
        (admitted, evicted)
            ``admitted`` is the mask actually kept resident — a fresh array
            the caller owns and may mutate freely; ``evicted`` counts
            instances that were admitted-resident, proposed to stay, and
            forced out — capacity evictions, not first-time admission
            denials.
        """
        admitted = proposed.copy()
        node_capacity = self.model.node_capacity
        positions = np.flatnonzero(proposed)
        if positions.size > node_capacity:
            nodes = self.node_of[positions]
            usage = np.bincount(nodes, minlength=self.model.n_nodes)
            for node in np.flatnonzero(usage > node_capacity):
                members = positions[nodes == node]
                # Keep the most recently invoked; ties broken on the lower
                # function index (stable sort over (-recency, index)).
                order = np.lexsort((members, -self._last_invocation[members]))
                admitted[members[order[node_capacity:]]] = False

        # Per-node caps round up (ceil), so their sum can exceed the global
        # cap when memory_capacity is not divisible by n_nodes; enforce the
        # cluster-wide bound with the same keep-the-most-recent priority.
        kept = np.flatnonzero(admitted)
        if kept.size > self.model.memory_capacity:
            order = np.lexsort((kept, -self._last_invocation[kept]))
            admitted[kept[order[self.model.memory_capacity :]]] = False

        evicted = int(np.count_nonzero(self._admitted & proposed & ~admitted))
        self.evictions += evicted
        # Keep a private copy: the caller's on-demand loads must not leak
        # into the admitted-state that distinguishes evictions from denials.
        self._admitted = admitted.copy()
        return admitted, evicted
