"""Capacity-constrained cluster simulation: memory caps, eviction, placement.

The paper's simulation assumes a single host large enough to hold every
loaded instance, so no policy decision is ever overridden by the platform.
Real clusters are not like that: memory is finite and is partitioned across
nodes.  This module adds an optional *cluster model* to the simulator:

* a **global memory cap** — the cluster holds at most ``memory_capacity``
  instance units at the start of any minute;
* **per-node admission arbiters** — the policy *proposes* a resident set,
  and each :class:`NodeArbiter` admits its node's share under the node
  capacity; under pressure a node evicts its least-recently-invoked proposed
  instances first (deterministic tie-break on function index), mirroring the
  controller/invoker split of cluster schedulers where per-function policies
  run below per-node admission layers;
* **pluggable placement** — the function→node mapping comes from a
  :class:`~repro.simulation.placement.PlacementStrategy` (``hash`` static
  CRC-32 sharding by default, ``least-loaded`` lazy assignment,
  ``correlation-aware`` co-location of functions that fire together);
* optional **sustained-pressure re-placement** — with a
  ``pressure_threshold``, a node whose admitted load stays above the
  threshold for ``pressure_minutes`` consecutive minutes migrates its
  least-recently-invoked instance to the freest *unpressured* node; the
  move is counted as a migration and drops residency for one boundary (the
  instance re-provisions on its new node), so an invocation arriving inside
  that provisioning gap is a forced, migration-attributed cold start.

Accounting additions (reported via
:class:`~repro.simulation.results.ClusterStats`):

* *evictions* — instances that were admitted-resident and that the policy
  proposed to keep, but that an arbiter forced out (per-node counts kept);
* *capacity-induced cold starts* — cold starts for functions the policy had
  declared resident (they would have been warm on an uncapped host);
* *migrations* and *migration-induced cold starts* — re-placements under
  sustained pressure and the cold starts they materialize (a subset of the
  capacity-induced count: the policy had declared those functions resident);
* *per-node utilization* — per-minute loaded units per node.

On-demand loads are not capped: an invoked function is always loaded for its
minute (the request must be served somewhere), so transient usage may exceed
the cap during traffic spikes; the cap constrains what *stays* resident.

:class:`ClusterModel` is an immutable, picklable configuration; the mutable
per-run state lives in the :class:`ClusterArbiter` the engine creates for
each simulation, so one model can be shared across sweep cells and worker
processes.  With the default configuration (``placement="hash"``, migration
disabled) every admitted mask — and therefore every simulation fingerprint —
is bit-for-bit identical to the pre-placement engine.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.simulation.placement import UNPLACED, get_placement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.traces.trace import Trace

__all__ = ["ClusterModel", "ClusterArbiter", "NodeArbiter"]


@dataclass(frozen=True)
class ClusterModel:
    """Immutable description of the cluster the simulation runs on.

    Parameters
    ----------
    memory_capacity:
        Total instance units the cluster can keep resident between minutes.
    n_nodes:
        Number of nodes the capacity is sharded over.  Each node holds at
        most ``ceil(memory_capacity / n_nodes)`` units, and the cluster-wide
        total never exceeds ``memory_capacity`` (both bounds are enforced).
    placement:
        Name of the :class:`~repro.simulation.placement.PlacementStrategy`
        mapping functions to nodes.  ``"hash"`` (default) is the original
        static CRC-32 shard and reproduces pre-placement results
        bit-for-bit; see :mod:`repro.simulation.placement` for the catalog.
    pressure_threshold:
        Optional sustained-pressure migration trigger, as a fraction of the
        node capacity: a node whose *admitted* load exceeds
        ``pressure_threshold * node_capacity`` for ``pressure_minutes``
        consecutive admission passes migrates one instance.  ``None``
        (default) disables re-placement entirely.
    pressure_minutes:
        Number of consecutive pressured minutes (``K``) before a migration
        fires.  The K-th pressured minute migrates; K-1 never does.
    capacity_unit:
        What ``memory_capacity`` denominates: ``"instances"`` (default, the
        paper's abstract one-unit-per-instance accounting) or ``"mb"``
        (measured megabytes; the arbiters then trim by each function's
        footprint in integer kilobytes and report per-node KB usage).  MB
        capacity requires the simulator to run with ``memory_mode="mb"`` so
        footprints exist; ``"instances"`` runs are bit-for-bit identical to
        models built before this field existed.
    """

    memory_capacity: int
    n_nodes: int = 1
    placement: str = "hash"
    pressure_threshold: float | None = None
    pressure_minutes: int = 3
    capacity_unit: str = "instances"

    def __post_init__(self) -> None:
        if self.memory_capacity < 1:
            raise ValueError("memory_capacity must be >= 1")
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.n_nodes > self.memory_capacity:
            raise ValueError("n_nodes cannot exceed memory_capacity")
        # Fail fast on unknown strategies, before any workload is built.
        get_placement(self.placement)
        if self.pressure_threshold is not None and not 0.0 < self.pressure_threshold:
            raise ValueError("pressure_threshold must be positive when given")
        if self.pressure_minutes < 1:
            raise ValueError("pressure_minutes must be >= 1")
        if self.capacity_unit not in ("instances", "mb"):
            raise ValueError("capacity_unit must be 'instances' or 'mb'")

    @property
    def node_capacity(self) -> int:
        """Capacity each node can keep resident, in :attr:`capacity_unit`."""
        return math.ceil(self.memory_capacity / self.n_nodes)

    @property
    def migration_enabled(self) -> bool:
        """Whether sustained-pressure re-placement is configured."""
        return self.pressure_threshold is not None

    def node_of(self, function_id: str) -> int:
        """Stable *hash* node assignment for one function id.

        Uses CRC-32 rather than Python's ``hash`` so the sharding is
        deterministic across processes and interpreter runs (``PYTHONHASHSEED``
        does not leak into simulation results).  This is the ``hash``
        strategy's mapping; dynamic strategies keep their own assignment in
        the arbiter's ``node_of`` array.
        """
        return zlib.crc32(function_id.encode()) % self.n_nodes

    def arbiter(
        self,
        function_ids: tuple[str, ...],
        trace: "Trace | None" = None,
        footprints_kb: np.ndarray | None = None,
    ) -> "ClusterArbiter":
        """Build the per-run arbiter over a trace's function-index space.

        ``trace`` supplies offline placement signals (the ``correlation-aware``
        strategy mines the training window for co-firing groups); strategies
        that need none ignore it.  ``footprints_kb`` (per-function integer
        kilobytes, required when ``capacity_unit="mb"``) makes admission and
        pressure footprint-weighted.
        """
        return ClusterArbiter(self, function_ids, trace=trace, footprints_kb=footprints_kb)


class NodeArbiter:
    """Per-node admission state: capacity, eviction pass, pressure streak.

    Each node trims its own share of the proposed resident set — eviction
    pressure is computed node-locally, not as one cluster-wide pass — and
    tracks how many consecutive admission passes it has spent above the
    migration pressure threshold.
    """

    __slots__ = ("node", "capacity", "capacity_kb", "pressure_streak")

    def __init__(self, node: int, capacity: int, capacity_kb: int | None = None) -> None:
        self.node = node
        self.capacity = capacity
        #: Footprint-weighted capacity bound in integer kilobytes; ``None``
        #: for unit-denominated (instance-counting) nodes.
        self.capacity_kb = capacity_kb
        #: Consecutive admission passes above the pressure threshold.
        self.pressure_streak = 0

    def trim(
        self, members: np.ndarray, last_invocation: np.ndarray, admitted: np.ndarray
    ) -> None:
        """Drop this node's overflow from ``admitted`` (in place).

        Keeps the most recently invoked members; ties break on the lower
        function index (stable sort over ``(-recency, index)``) — the exact
        rule of the original single-pass arbiter, so ``hash`` runs reproduce
        historical fingerprints bit-for-bit.
        """
        if members.size <= self.capacity:
            return
        order = np.lexsort((members, -last_invocation[members]))
        admitted[members[order[self.capacity :]]] = False

    def trim_weighted(
        self,
        members: np.ndarray,
        last_invocation: np.ndarray,
        admitted: np.ndarray,
        footprints_kb: np.ndarray,
    ) -> None:
        """Footprint-weighted variant of :meth:`trim` (MB-capacity nodes).

        Same recency-then-index priority order, but the bound is cumulative
        kilobytes: walking members from most to least recently invoked, a
        member stays only while the running footprint total fits under
        :attr:`capacity_kb`.  A member too large for the remaining budget is
        dropped *and ends the walk* — skipping past it to admit a smaller,
        less-recent member would invert the eviction priority the unit-mode
        arbiter guarantees.
        """
        order = np.lexsort((members, -last_invocation[members]))
        ranked = members[order]
        cumulative = np.cumsum(footprints_kb[ranked])
        keep = int(np.searchsorted(cumulative, self.capacity_kb, side="right"))
        if keep < ranked.size:
            admitted[ranked[keep:]] = False


class ClusterArbiter:
    """Per-run admission/eviction/placement state for one :class:`ClusterModel`.

    The arbiter works in the trace's function-index space: the engine calls
    :meth:`ensure_placed` when functions first become active,
    :meth:`observe_invocations` with each minute's invoked indices (recency
    bookkeeping) and :meth:`admit` with the policy's proposed residency mask;
    ``admit`` places any newly proposed functions, runs every
    :class:`NodeArbiter`'s trim pass plus the cluster-wide bound, counts
    forced evictions, and (when migration is enabled) re-places instances
    off sustainedly pressured nodes.
    """

    #: Recency sentinel: "never invoked" sorts before any real minute
    #: (warm-up minutes are negative, so the sentinel must be far below).
    _NEVER = -(2**62)

    def __init__(
        self,
        model: ClusterModel,
        function_ids: tuple[str, ...],
        trace: "Trace | None" = None,
        footprints_kb: np.ndarray | None = None,
    ) -> None:
        self.model = model
        n = len(function_ids)
        self._weighted = model.capacity_unit == "mb"
        if self._weighted:
            if footprints_kb is None:
                raise ValueError(
                    "an MB-denominated ClusterModel needs per-function "
                    "footprints (footprints_kb)"
                )
            footprints_kb = np.asarray(footprints_kb, dtype=np.int64)
            if footprints_kb.shape != (n,):
                raise ValueError(
                    f"footprints_kb must have shape ({n},), got {footprints_kb.shape}"
                )
            if (footprints_kb <= 0).any():
                raise ValueError("footprints_kb must be positive")
        #: Per-function footprints in integer KB (``None`` in instance mode).
        self.footprints_kb = footprints_kb if self._weighted else None
        #: Node capacity in the weighted working unit (KB), when weighted.
        self._node_capacity_kb = (
            model.node_capacity * 1024 if self._weighted else None
        )
        self.placement = get_placement(model.placement)
        #: Current node of every function (``UNPLACED`` until first activity).
        self.node_of = self.placement.bind(model, function_ids, trace)
        if self.node_of.shape != (n,):
            raise ValueError(
                f"placement {model.placement!r} returned an assignment of shape "
                f"{self.node_of.shape}; expected ({n},)"
            )
        self.nodes = [
            NodeArbiter(node, model.node_capacity, capacity_kb=self._node_capacity_kb)
            for node in range(model.n_nodes)
        ]
        # Hash (and any fully static strategy) never pays the lazy-placement
        # check on the hot path.
        self._all_placed = not bool((self.node_of == UNPLACED).any())
        self._last_invocation = np.full(n, self._NEVER, dtype=np.int64)
        self._admitted = np.zeros(n, dtype=bool)
        #: Total instances evicted under capacity pressure.
        self.evictions = 0
        #: Per-node capacity evictions (sums to :attr:`evictions`).
        self.node_evictions = np.zeros(model.n_nodes, dtype=np.int64)
        #: Total sustained-pressure migrations over the run.
        self.migrations = 0
        #: Mask of functions migrated by the most recent :meth:`admit` (their
        #: next invocation is a migration-forced cold start); ``None`` when
        #: migration is disabled, so the engine skips the bookkeeping.
        self.migrated_last: np.ndarray | None = (
            np.zeros(n, dtype=bool) if model.migration_enabled else None
        )

    # ------------------------------------------------------------------ #
    def ensure_placed(self, positions: np.ndarray) -> None:
        """Assign nodes to any not-yet-placed functions among ``positions``.

        Load is measured as the currently admitted per-node usage — the same
        signal :meth:`node_usage` reports — so lazy strategies place against
        the state the cluster actually holds.
        """
        if self._all_placed or positions.size == 0:
            return
        unplaced = positions[self.node_of[positions] == UNPLACED]
        if unplaced.size == 0:
            return
        usage = self.node_usage(self._admitted)
        # Usage and capacity must share a unit: KB for MB-denominated models.
        capacity = (
            self._node_capacity_kb if self._weighted else self.model.node_capacity
        )
        self.node_of[unplaced] = self.placement.place(unplaced, usage, capacity)

    def observe_invocations(self, minute: int, invoked: np.ndarray) -> None:
        """Record this minute's invocations (drives the LRU eviction order)."""
        if invoked.size:
            self._last_invocation[invoked] = minute

    def node_usage(self, resident: np.ndarray) -> np.ndarray:
        """Per-node loaded load for a residency mask.

        Instance counts in instance mode; integer kilobytes when the model
        is MB-denominated (each member weighed by its footprint).
        """
        members = np.flatnonzero(resident)
        if not self._all_placed:
            members = members[self.node_of[members] != UNPLACED]
        if self.footprints_kb is not None:
            # Weighted bincount goes through float64; footprint totals stay
            # far below 2**53 KB (~8 EB), so the cast back is exact.
            return np.bincount(
                self.node_of[members],
                weights=self.footprints_kb[members],
                minlength=self.model.n_nodes,
            ).astype(np.int64)
        return np.bincount(self.node_of[members], minlength=self.model.n_nodes)

    # ------------------------------------------------------------------ #
    def admit(self, proposed: np.ndarray) -> tuple[np.ndarray, int]:
        """Admit a proposed residency mask under the per-node capacity.

        Parameters
        ----------
        proposed:
            The policy's declared residency mask for the next minute.

        Returns
        -------
        (admitted, evicted)
            ``admitted`` is the mask actually kept resident — a fresh array
            the caller owns and may mutate freely; ``evicted`` counts
            instances that were admitted-resident, proposed to stay, and
            forced out — capacity evictions, not first-time admission
            denials and not migrations (those are tracked separately).
        """
        positions = np.flatnonzero(proposed)
        self.ensure_placed(positions)
        admitted = proposed.copy()
        node_capacity = self.model.node_capacity
        if self.footprints_kb is not None:
            footprints = self.footprints_kb
            nodes = self.node_of[positions]
            usage_kb = np.bincount(
                nodes, weights=footprints[positions], minlength=self.model.n_nodes
            ).astype(np.int64)
            for node in np.flatnonzero(usage_kb > self._node_capacity_kb):
                self.nodes[node].trim_weighted(
                    positions[nodes == node],
                    self._last_invocation,
                    admitted,
                    footprints,
                )
            # Cluster-wide KB bound, same keep-the-most-recent priority.
            kept = np.flatnonzero(admitted)
            capacity_kb = self.model.memory_capacity * 1024
            if int(footprints[kept].sum()) > capacity_kb:
                order = np.lexsort((kept, -self._last_invocation[kept]))
                ranked = kept[order]
                cumulative = np.cumsum(footprints[ranked])
                keep = int(np.searchsorted(cumulative, capacity_kb, side="right"))
                admitted[ranked[keep:]] = False
        else:
            if positions.size > node_capacity:
                nodes = self.node_of[positions]
                usage = np.bincount(nodes, minlength=self.model.n_nodes)
                for node in np.flatnonzero(usage > node_capacity):
                    self.nodes[node].trim(
                        positions[nodes == node], self._last_invocation, admitted
                    )

            # Per-node caps round up (ceil), so their sum can exceed the global
            # cap when memory_capacity is not divisible by n_nodes; enforce the
            # cluster-wide bound with the same keep-the-most-recent priority.
            kept = np.flatnonzero(admitted)
            if kept.size > self.model.memory_capacity:
                order = np.lexsort((kept, -self._last_invocation[kept]))
                admitted[kept[order[self.model.memory_capacity :]]] = False

        evicted_positions = np.flatnonzero(self._admitted & proposed & ~admitted)
        evicted = int(evicted_positions.size)
        if evicted:
            self.node_evictions += np.bincount(
                self.node_of[evicted_positions], minlength=self.model.n_nodes
            )
        self.evictions += evicted

        if self.migrated_last is not None:
            self._maybe_migrate(admitted)
        # Keep a private copy: the caller's on-demand loads must not leak
        # into the admitted-state that distinguishes evictions from denials.
        self._admitted = admitted.copy()
        return admitted, evicted

    # ------------------------------------------------------------------ #
    def _maybe_migrate(self, admitted: np.ndarray) -> None:
        """Re-place one instance off every sustainedly pressured node.

        A node is *pressured* when its admitted load exceeds
        ``pressure_threshold * node_capacity``; on the K-th consecutive
        pressured pass (``K = pressure_minutes``) its least-recently-invoked
        admitted instance moves to the freest node that is itself below the
        threshold (ties on the lower node id; hot-to-hot moves would only
        ping-pong load).  The move drops residency for one boundary — the
        one-minute provisioning gap of the re-placed instance — resets the
        source node's streak, and is reflected in :attr:`migrated_last` so
        the engine charges any invocation landing in that gap as a
        migration-attributed cold start; if no request arrives before the
        policy's next declaration re-admits the instance, the migration cost
        is the gap itself, not a cold start.  Nodes with nowhere to migrate
        to (every other node full or pressured) keep their streak and retry
        next minute.
        """
        self.migrated_last = np.zeros(admitted.shape[0], dtype=bool)
        usage = self.node_usage(admitted)
        # usage (and therefore threshold/free) is denominated in the model's
        # working unit: instance counts, or integer KB for MB capacities.
        node_capacity = (
            self._node_capacity_kb if self._weighted else self.model.node_capacity
        )
        threshold = self.model.pressure_threshold * node_capacity
        for arbiter in self.nodes:
            if usage[arbiter.node] > threshold:
                arbiter.pressure_streak += 1
            else:
                arbiter.pressure_streak = 0

        for arbiter in self.nodes:
            if arbiter.pressure_streak < self.model.pressure_minutes:
                continue
            members = np.flatnonzero(admitted & (self.node_of == arbiter.node))
            if members.size == 0:
                arbiter.pressure_streak = 0
                continue
            free = node_capacity - usage
            free[arbiter.node] = -1  # never migrate onto the source node
            # A pressured node is no refuge either: moving load between two
            # hot nodes just ping-pongs instances without relieving anything.
            free[usage > threshold] = -1
            target = int(np.argmax(free))
            order = np.lexsort((members, -self._last_invocation[members]))
            victim = int(members[order[-1]])  # least recently invoked member
            moved = (
                int(self.footprints_kb[victim]) if self.footprints_kb is not None else 1
            )
            if free[target] < moved:
                continue  # cluster-wide pressure: nowhere to go, retry later
            self.node_of[victim] = target
            admitted[victim] = False
            self.migrated_last[victim] = True
            self.migrations += 1
            usage[arbiter.node] -= moved
            # Reserve the inbound load on the target now: later pressured
            # sources in this same pass recompute `free` from `usage`, and
            # without the reservation they would all dogpile one nearly-full
            # node, evicting each other's migrants next minute.
            usage[target] += moved
            arbiter.pressure_streak = 0
