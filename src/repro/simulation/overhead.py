"""Wall-clock instrumentation for scheduler decision overhead (paper RQ2).

The paper compares the per-minute decision overhead of each scheduler on the
simulation machine.  :class:`OverheadTimer` accumulates the time spent inside
``ProvisioningPolicy.on_minute`` so the experiment harness can report the same
comparison.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class OverheadTimer:
    """Accumulates wall-clock time across repeated measured sections."""

    def __init__(self) -> None:
        self._total = 0.0
        self._count = 0
        self._max = 0.0

    @contextmanager
    def measure(self) -> Iterator[None]:
        """Context manager measuring one decision step."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(time.perf_counter() - start)

    def add(self, elapsed: float) -> None:
        """Record one pre-measured section (fast path for hot loops).

        Equivalent to wrapping the section in :meth:`measure`, without the
        context-manager overhead per call.
        """
        self._total += elapsed
        self._count += 1
        if elapsed > self._max:
            self._max = elapsed

    @property
    def total_seconds(self) -> float:
        """Total measured time in seconds."""
        return self._total

    @property
    def call_count(self) -> int:
        """Number of measured sections."""
        return self._count

    @property
    def mean_seconds(self) -> float:
        """Mean time per measured section, in seconds."""
        if self._count == 0:
            return 0.0
        return self._total / self._count

    @property
    def max_seconds(self) -> float:
        """Longest single measured section, in seconds."""
        return self._max

    def reset(self) -> None:
        """Clear all accumulated measurements."""
        self._total = 0.0
        self._count = 0
        self._max = 0.0
