"""The index-based (vectorized) policy contract and the dict-API adapter.

PR 1 vectorized the engine's accounting, but policies still consumed
per-minute ``{function_id: count}`` dicts, leaving policy stepping as the
dominant cost of sweeps.  This module introduces the second half of the
contract: policies that operate directly on *function indices* over a trace's
:class:`~repro.traces.trace.InvocationIndex`.

Two classes define the boundary:

:class:`VectorizedPolicy`
    Base class for index-native policies.  The simulator binds the policy to
    the trace's invocation index once per run (:meth:`bind_index`), then calls
    :meth:`on_minute_indexed` with the invoked function indices of each
    minute; the policy answers with a boolean residency mask over the whole
    function-index space.  A default :meth:`on_minute` bridge translates the
    dict API onto the indexed one, so the same policy instance also runs under
    the ``reference`` engine and through the warm-up replay — which is exactly
    what the equivalence tests exploit.

:class:`DictPolicyAdapter`
    Wraps an unchanged dict-based :class:`ProvisioningPolicy` behind the
    indexed contract.  The adapter feeds the wrapped policy the prebuilt
    read-only per-minute mappings and converts the returned resident *set*
    into a mask by diffing consecutive declarations (two C-level set
    operations), so existing baselines keep their exact semantics — including
    declaring ids the trace has never heard of (tracked as
    :attr:`extra_resident` and charged by the engine exactly as before).

The engine (:mod:`repro.simulation.engine`) drives **only** this contract:
dict policies are wrapped automatically, so one loop serves both worlds.
"""

from __future__ import annotations

import abc
from typing import Mapping, Set

import numpy as np

from repro.simulation.policy_base import ProvisioningPolicy
from repro.traces.trace import InvocationIndex

__all__ = ["VectorizedPolicy", "DictPolicyAdapter"]


class VectorizedPolicy(ProvisioningPolicy):
    """Base class for policies that decide over function *indices*.

    Lifecycle (on top of :class:`ProvisioningPolicy`'s):

    1. :meth:`prepare` — unchanged offline phase over function metadata.
    2. :meth:`bind_index` — the simulator hands the policy the trace's
       :class:`~repro.traces.trace.InvocationIndex` before the run.  This is
       where subclasses allocate their per-function arrays
       (:meth:`on_bind`).  Binding happens *after* :meth:`prepare`, so the
       arrays can be initialized from the offline state.
    3. :meth:`on_minute_indexed` — once per minute with the invoked function
       indices; returns the residency mask for the start of the next minute.

    The inherited dict API keeps working: :meth:`on_minute` converts a
    ``{function_id: count}`` mapping into index arrays, delegates to
    :meth:`on_minute_indexed` and converts the mask back into an id set.
    That bridge is what the ``reference`` engine and the warm-up replay use,
    so a single policy instance behaves identically under both engines.
    """

    _index: InvocationIndex | None = None

    #: Ids declared resident that are unknown to the bound index.  Index-native
    #: policies cannot produce such ids, so this is empty; the
    #: :class:`DictPolicyAdapter` overrides it.
    extra_resident: frozenset = frozenset()

    # ------------------------------------------------------------------ #
    # Binding
    # ------------------------------------------------------------------ #
    @property
    def is_bound(self) -> bool:
        """Whether the policy is currently bound to a trace index."""
        return self._index is not None

    @property
    def index(self) -> InvocationIndex:
        """The bound invocation index (raises when unbound)."""
        if self._index is None:
            raise RuntimeError(
                f"{type(self).__name__} is not bound to a trace index; "
                "call bind_index() (the Simulator does this automatically)"
            )
        return self._index

    def bind_index(self, index: InvocationIndex) -> None:
        """Bind the policy to a trace's function-index space.

        Called by the simulator once per run, after :meth:`prepare`.
        Re-binding is allowed and resets any per-run indexed state.
        """
        self._index = index
        self._function_ids = index.function_ids
        self._index_of = index.index_of
        self.on_bind(index)

    def on_bind(self, index: InvocationIndex) -> None:
        """Hook for subclasses: allocate per-function arrays.

        The default implementation does nothing.
        """

    # ------------------------------------------------------------------ #
    # The indexed contract
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def on_minute_indexed(
        self, minute: int, invoked: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Decide the resident set for the start of the next minute.

        Parameters
        ----------
        minute:
            Index of the simulated minute (negative during warm-up).
        invoked:
            Integer indices (into the bound index's function space) of the
            functions invoked during this minute.
        counts:
            Invocation counts aligned with ``invoked``.

        Returns
        -------
        numpy.ndarray
            Boolean mask of shape ``(n_functions,)``: True for every function
            that should be resident at the start of the next minute.  The
            engine reads the mask before the next call, so policies may reuse
            (and mutate) one buffer across minutes.
        """

    # ------------------------------------------------------------------ #
    # Dict-API bridge (reference engine, warm-up replay)
    # ------------------------------------------------------------------ #
    def on_minute(self, minute: int, invocations: Mapping[str, int]) -> Set[str]:
        """Adapt the dict API onto :meth:`on_minute_indexed`.

        Ids unknown to the bound index are ignored (they cannot be expressed
        in the index space; driving a policy with a foreign trace is a caller
        error that the equivalence tests would surface immediately).
        """
        index_of = self.index.index_of
        positions = [index_of[f] for f in invocations if f in index_of]
        invoked = np.asarray(positions, dtype=np.int64)
        counts = np.asarray(
            [count for f, count in invocations.items() if f in index_of],
            dtype=np.int64,
        )
        mask = self.on_minute_indexed(minute, invoked, counts)
        ids = self._function_ids
        return {ids[position] for position in np.flatnonzero(mask)}


class DictPolicyAdapter(VectorizedPolicy):
    """Expose an unchanged dict-based policy through the indexed contract.

    The adapter owns the declared-set bookkeeping the engine used to do
    inline: it hands the wrapped policy the prebuilt read-only per-minute
    mappings, diffs consecutive declarations to update a persistent boolean
    mask, and tracks ids that are unknown to the trace index (possible when a
    policy was prepared against different metadata) in :attr:`extra_resident`
    so the engine can charge them exactly like the reference implementation.

    Parameters
    ----------
    policy:
        The dict-based policy to adapt.  Its :meth:`on_minute` is called with
        the same mappings the previous engine handed it, so behaviour is
        bit-identical.
    """

    def __init__(self, policy: ProvisioningPolicy) -> None:
        if isinstance(policy, VectorizedPolicy):
            raise TypeError(
                "policy already implements the indexed contract; "
                "drive it directly instead of adapting it"
            )
        self.policy = policy
        self._extra: Set[str] = set()
        #: When set (the engine installs its run timer here), only the
        #: wrapped policy's ``on_minute`` is measured — the adapter's own
        #: mapping/diff bookkeeping is engine machinery, not policy decision
        #: time, and must stay out of the RQ2 scheduler-overhead metric.
        self.overhead_timer = None

    # The adapter impersonates the wrapped policy where it matters.
    @property
    def name(self) -> str:  # type: ignore[override]
        return self.policy.name

    def prepare(self, functions, training=None) -> None:
        self.policy.prepare(functions, training)

    def reset(self) -> None:
        self.policy.reset()

    def on_feedback(self, minute: int, latency_window) -> None:
        # The feedback hook belongs to the wrapped policy's decision state,
        # not to the adapter's mask bookkeeping: forward it untouched.
        self.policy.on_feedback(minute, latency_window)

    @property
    def known_functions(self):
        return self.policy.known_functions

    @property
    def extra_resident(self) -> Set[str]:  # type: ignore[override]
        """Declared-resident ids that are unknown to the bound index."""
        return self._extra

    # ------------------------------------------------------------------ #
    def on_bind(self, index: InvocationIndex) -> None:
        self._mask = np.zeros(index.n_functions, dtype=bool)
        self._declared: Set[str] = set()
        self._extra = set()
        self._minute_invocations = index.minute_invocations()
        self._duration = index.duration_minutes

    def seed_resident(self, resident: Set[str]) -> None:
        """Install the resident set entering the run (warm-up outcome).

        Mirrors how the engine used to seed ``declared_resident`` from the
        initial resident set, so the first diff is computed against the true
        entering state.
        """
        self._declared = set(resident)
        self._mask[:] = False
        self._extra = set()
        index_of = self._index_of
        for function_id in resident:
            position = index_of.get(function_id)
            if position is None:
                self._extra.add(function_id)
            else:
                self._mask[position] = True

    # ------------------------------------------------------------------ #
    def on_minute_indexed(
        self, minute: int, invoked: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        if 0 <= minute < self._duration:
            invocations: Mapping[str, int] = self._minute_invocations[minute]
        else:
            # Warm-up (negative minutes) or foreign minutes: build the
            # mapping from the index arrays.
            ids = self._function_ids
            invocations = {
                ids[position]: int(count)
                for position, count in zip(invoked.tolist(), counts.tolist())
            }

        if self.overhead_timer is not None:
            with self.overhead_timer.measure():
                next_resident = self.policy.on_minute(minute, invocations)
        else:
            next_resident = self.policy.on_minute(minute, invocations)

        if next_resident != self._declared:
            if not isinstance(next_resident, (set, frozenset)):
                next_resident = set(next_resident)
            index_of = self._index_of
            mask = self._mask
            added = next_resident - self._declared
            removed = self._declared - next_resident
            if removed:
                try:
                    mask[[index_of[f] for f in removed]] = False
                except KeyError:
                    for function_id in removed:
                        position = index_of.get(function_id)
                        if position is None:
                            self._extra.discard(function_id)
                        else:
                            mask[position] = False
            if added:
                try:
                    mask[[index_of[f] for f in added]] = True
                except KeyError:
                    for function_id in added:
                        position = index_of.get(function_id)
                        if position is None:
                            self._extra.add(function_id)
                        else:
                            mask[position] = True
            self._declared = set(next_resident)
        return self._mask
