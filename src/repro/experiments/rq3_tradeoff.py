"""RQ3: trading off memory against cold-start latency (Fig. 13).

Two knobs control the trade-off: ``theta_prewarm`` (how early a predicted
invocation justifies pre-loading) and the ``theta_givenup`` scaling (how long
an idle instance is tolerated).  Each sweep point reports memory usage
normalized to the default configuration and the resulting Q3-CSR, which the
paper shows to be approximately linearly related.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.experiments.runner import ExperimentRunner
from repro.metrics.summary import ComparisonTable


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of a trade-off sweep."""

    parameter: float
    normalized_memory: float
    q3_csr: float
    wasted_memory_time: int


def _sweep_points(
    runner: ExperimentRunner, variants: "dict[str, tuple[float, object]]"
) -> List[TradeoffPoint]:
    """Simulate ``{key: (parameter, config)}`` as one batch and build points.

    The batch goes through :meth:`ExperimentRunner.run_spes_variants`, so a
    runner constructed with ``workers > 1`` simulates every sweep point
    concurrently.
    """
    reference = runner.run_spes()
    reference_memory = reference.average_memory_usage or 1.0
    results = runner.run_spes_variants(
        {key: config for key, (_, config) in variants.items()}
    )
    return [
        TradeoffPoint(
            parameter=float(parameter),
            normalized_memory=results[key].average_memory_usage / reference_memory,
            q3_csr=results[key].q3_cold_start_rate,
            wasted_memory_time=results[key].total_wasted_memory_time,
        )
        for key, (parameter, _) in variants.items()
    ]


def prewarm_sweep(
    runner: ExperimentRunner,
    values: Sequence[int] = (1, 2, 3, 5, 10),
) -> List[TradeoffPoint]:
    """Sweep ``theta_prewarm`` (Fig. 13a)."""
    return _sweep_points(
        runner,
        {
            f"spes-prewarm-{value}": (
                float(value),
                runner.config.spes_config.replace(theta_prewarm=int(value)),
            )
            for value in values
        },
    )


def givenup_sweep(
    runner: ExperimentRunner,
    scales: Sequence[int] = (1, 2, 3, 4, 5),
) -> List[TradeoffPoint]:
    """Sweep the ``theta_givenup`` multiplier (Fig. 13b)."""
    return _sweep_points(
        runner,
        {
            f"spes-givenup-x{scale}": (
                float(scale),
                runner.config.spes_config.scaled_givenup(int(scale)),
            )
            for scale in scales
        },
    )


def linear_fit(points: Sequence[TradeoffPoint]) -> tuple[float, float]:
    """Least-squares fit ``q3_csr = slope * normalized_memory + intercept``.

    The paper reports such fits (e.g. ``y = -0.1845x + 0.3163`` for the
    pre-warm sweep) to argue the trade-off is approximately linear.
    """
    if len(points) < 2:
        raise ValueError("at least two sweep points are required for a fit")
    x = np.array([point.normalized_memory for point in points])
    y = np.array([point.q3_csr for point in points])
    slope, intercept = np.polyfit(x, y, 1)
    return float(slope), float(intercept)


def sweep_table(points: Sequence[TradeoffPoint], parameter_name: str, title: str) -> ComparisonTable:
    """Render a sweep as a table (one row per parameter value)."""
    table = ComparisonTable(
        title=title,
        columns=(parameter_name, "normalized_memory", "q3_csr", "wasted_memory_time"),
    )
    for point in points:
        table.add_row(
            **{
                parameter_name: point.parameter,
                "normalized_memory": point.normalized_memory,
                "q3_csr": point.q3_csr,
                "wasted_memory_time": float(point.wasted_memory_time),
            }
        )
    return table
