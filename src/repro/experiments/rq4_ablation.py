"""RQ4: impact of SPES's complementary designs (Figs. 14 and 15).

* Fig. 14 ablates the inter-function correlation designs: ``w/o Corr``
  removes the offline "correlated" category, ``w/o Online-Corr`` removes the
  online correlation of unseen functions.
* Fig. 15 ablates the concept-shift designs: ``w/o Forgetting`` removes the
  recency-based re-categorization, ``w/o Adjusting`` removes the online
  predictive-value updates.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.runner import ExperimentRunner
from repro.metrics.summary import ComparisonTable
from repro.simulation.results import SimulationResult


def correlation_ablation(runner: ExperimentRunner) -> Dict[str, SimulationResult]:
    """Run SPES with the correlation designs disabled (Fig. 14).

    The two ablated variants are simulated as one batch through
    :meth:`ExperimentRunner.run_spes_variants`, so a parallel runner executes
    them concurrently.
    """
    base_config = runner.config.spes_config
    variants = runner.run_spes_variants(
        {
            "spes-no-corr": base_config.replace(enable_correlation=False),
            "spes-no-online-corr": base_config.replace(enable_online_correlation=False),
        }
    )
    return {
        "spes": runner.run_spes(),
        "w/o-corr": variants["spes-no-corr"],
        "w/o-online-corr": variants["spes-no-online-corr"],
    }


def adaptivity_ablation(runner: ExperimentRunner) -> Dict[str, SimulationResult]:
    """Run SPES with the concept-shift designs disabled (Fig. 15).

    Batched like :func:`correlation_ablation`.
    """
    base_config = runner.config.spes_config
    variants = runner.run_spes_variants(
        {
            "spes-no-forgetting": base_config.replace(enable_forgetting=False),
            "spes-no-adjusting": base_config.replace(enable_adjusting=False),
        }
    )
    return {
        "spes": runner.run_spes(),
        "w/o-forgetting": variants["spes-no-forgetting"],
        "w/o-adjusting": variants["spes-no-adjusting"],
    }


def ablation_table(results: Dict[str, SimulationResult], title: str) -> ComparisonTable:
    """Render an ablation as the paper does: Q3-CSR, normalized memory and WMT."""
    reference = results.get("spes")
    reference_memory = reference.average_memory_usage if reference else 1.0
    reference_wmt = reference.total_wasted_memory_time if reference else 1
    table = ComparisonTable(
        title=title,
        columns=("variant", "q3_csr", "normalized_memory", "normalized_wmt"),
    )
    for name, result in results.items():
        table.add_row(
            variant=name,
            q3_csr=result.q3_cold_start_rate,
            normalized_memory=result.average_memory_usage / max(reference_memory, 1e-9),
            normalized_wmt=result.total_wasted_memory_time / max(reference_wmt, 1),
        )
    return table
