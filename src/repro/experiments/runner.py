"""Experiment orchestration: workload, split, policy suite and result caching."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Mapping

from repro.core import SpesConfig, SpesPolicy
from repro.experiments.parallel import ParallelRunner, PolicySpec, default_policy_specs
from repro.simulation import ProvisioningPolicy, SimulationResult, Simulator
from repro.simulation.spec import RunSpec
from repro.traces import AzureTraceGenerator, GeneratorProfile, Trace, TraceSplit, split_trace


@dataclass
class ExperimentConfig:
    """Configuration of one reproduction experiment.

    Attributes
    ----------
    n_functions:
        Number of functions in the synthetic workload.
    seed:
        Workload seed.
    duration_days:
        Total trace length (the Azure trace spans 14 days).
    training_days:
        Days used for offline pattern modelling (12 in the paper).
    warmup_minutes:
        Minutes of history replayed through each policy before metrics start.
    include_lcs:
        Whether to include the extra LCS comparator (not in the paper's set).
    spes_config:
        SPES configuration used for the main SPES run.
    """

    n_functions: int = 400
    seed: int = 2024
    duration_days: float = 14.0
    training_days: float = 12.0
    warmup_minutes: int = 1440
    include_lcs: bool = False
    spes_config: SpesConfig = field(default_factory=SpesConfig)

    def generator_profile(self) -> GeneratorProfile:
        """Profile of the synthetic workload generator for this experiment."""
        return GeneratorProfile(
            n_functions=self.n_functions,
            duration_days=self.duration_days,
            # Keep the unseen-function window inside short experiment traces.
            unseen_window_days=min(2.0, self.duration_days / 4.0),
            seed=self.seed,
        )


class ExperimentRunner:
    """Builds the workload once and simulates any number of policies over it.

    Parameters
    ----------
    config:
        Experiment configuration (defaults reproduce the benchmark setup).
    trace:
        Optional pre-built trace (e.g. the real Azure trace); when omitted a
        synthetic trace is generated from the configuration.
    split:
        Optional pre-built train/simulation split (e.g. a
        :class:`~repro.scenarios.ScenarioWorkload`'s); takes precedence over
        ``trace`` and the configuration's ``training_days``.
    workers:
        Number of worker processes used to fan out baseline and SPES-variant
        simulations (0 or 1 = serial, the default).  The main SPES run always
        executes in-process so its prepared policy instance stays available
        for category-level analyses.
    cache_dir:
        Optional directory for the on-disk result cache shared by all
        simulations fanned out through the parallel runner.
    memory_mode:
        Memory accounting mode for every simulation (``"unit"`` default,
        ``"mb"`` weighs instances by measured footprints; see
        :mod:`repro.simulation.memory`).
    spec:
        A ready-made :class:`~repro.simulation.spec.RunSpec` instead of the
        ``memory_mode`` shim (mutually exclusive with it); one validated
        object describes every simulation this runner executes.
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        trace: Trace | None = None,
        workers: int = 0,
        cache_dir: str | Path | None = None,
        memory_mode: str | None = None,
        split: TraceSplit | None = None,
        spec: RunSpec | None = None,
    ) -> None:
        self.config = config or ExperimentConfig()
        if spec is None:
            spec = RunSpec.build(
                warmup_minutes=self.config.warmup_minutes,
                memory_mode=memory_mode,
            )
        elif memory_mode is not None:
            raise ValueError(
                "pass either spec= or the individual run knobs, not both"
            )
        else:
            spec.validate()
        self.spec = spec
        self.workers = workers
        self.cache_dir = cache_dir
        self.memory_mode = spec.memory_mode
        self._trace = trace
        self._split = split
        self._results: Dict[str, SimulationResult] = {}
        self._result_specs: Dict[str, PolicySpec] = {}
        self._spes_policy: SpesPolicy | None = None
        self._parallel: ParallelRunner | None = None

    # ------------------------------------------------------------------ #
    # Workload
    # ------------------------------------------------------------------ #
    @property
    def trace(self) -> Trace:
        """The full 14-day workload (generated lazily)."""
        if self._trace is None:
            self._trace = AzureTraceGenerator(self.config.generator_profile()).generate()
        return self._trace

    @property
    def split(self) -> TraceSplit:
        """Training / simulation split of the workload."""
        if self._split is None:
            self._split = split_trace(self.trace, training_days=self.config.training_days)
        return self._split

    # ------------------------------------------------------------------ #
    # Policy suite
    # ------------------------------------------------------------------ #
    def spes_policy(self) -> SpesPolicy:
        """The SPES policy instance used for the cached main run."""
        if self._spes_policy is None:
            self._spes_policy = SpesPolicy(self.config.spes_config)
        return self._spes_policy

    def baseline_factories(self) -> Dict[str, Callable[[], ProvisioningPolicy]]:
        """Factories for every baseline policy of the paper's comparison.

        Derived from :meth:`baseline_specs` so the suite is defined in one
        place; kept for callers that want ready-to-run policy instances.
        """
        return {name: spec.build for name, spec in self.baseline_specs().items()}

    def baseline_specs(self) -> Dict[str, PolicySpec]:
        """The baseline suite as picklable :class:`PolicySpec`\\ s.

        Used by the parallel execution path; equivalent to
        :meth:`baseline_factories` (including the FaaSCache capacity rule).
        """
        spes_result = self.run_spes()
        capacity = max(1, int(spes_result.peak_memory_usage))
        return default_policy_specs(
            include_lcs=self.config.include_lcs, faascache_capacity=capacity
        )

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def parallel_runner(self) -> ParallelRunner:
        """The :class:`ParallelRunner` over this experiment's trace split."""
        if self._parallel is None:
            self._parallel = ParallelRunner(
                traces={"main": self.split},
                workers=self.workers,
                cache_dir=self.cache_dir,
                spec=self.spec,
            )
        return self._parallel

    def run_specs(self, specs: Mapping[str, PolicySpec]) -> Dict[str, SimulationResult]:
        """Simulate several policy specs, fanning out across workers when enabled.

        Results are memoized under the spec names, so repeated calls (and
        mixed calls with :meth:`simulate`) never re-simulate a policy.
        Reusing a name that is already bound to a *different* spec — or to a
        :meth:`simulate` result whose spec is unknown — is rejected rather
        than silently served from the other policy's memoized result.
        """
        missing: Dict[str, PolicySpec] = {}
        for name, spec in specs.items():
            if name in self._results:
                known = self._result_specs.get(name)
                if known != spec:
                    raise ValueError(
                        f"result name {name!r} is already bound to "
                        + ("a different policy spec" if known is not None
                           else "a result with no recorded spec")
                        + "; pick a distinct name"
                    )
            else:
                missing[name] = spec
        if missing:
            runner = self.parallel_runner()
            computed = runner.run_policies(missing, trace_key="main", base_seed=self.config.seed)
            self._results.update(computed)
            self._result_specs.update(missing)
        return {name: self._results[name] for name in specs}

    def run_spes_variants(
        self, variants: Mapping[str, SpesConfig]
    ) -> Dict[str, SimulationResult]:
        """Simulate several SPES configurations (sweeps, ablations) as one batch.

        With ``workers > 1`` the whole batch fans out across the process pool;
        otherwise the cells run serially through the same code path, so both
        modes produce identical results and share the on-disk cache.  Each
        result is memoized under its variant key.
        """
        return self.run_specs(
            {key: PolicySpec.of("spes", config=config) for key, config in variants.items()}
        )

    def simulate(self, policy: ProvisioningPolicy, cache_key: str | None = None) -> SimulationResult:
        """Simulate one policy over the experiment's simulation window."""
        if cache_key is not None and cache_key in self._results:
            return self._results[cache_key]
        simulator = Simulator(
            simulation_trace=self.split.simulation,
            training_trace=self.split.training,
            spec=self.spec,
        )
        result = simulator.run(policy)
        if cache_key is not None:
            self._results[cache_key] = result
        return result

    def run_spes(self) -> SimulationResult:
        """Run (or return the cached) main SPES simulation."""
        if "spes" not in self._results:
            self._results["spes"] = self.simulate(self.spes_policy())
            # The main run's spec is known, so run_specs({"spes": ...}) with
            # the same configuration is recognized instead of rejected.
            self._result_specs["spes"] = PolicySpec.of(
                "spes", config=self.config.spes_config
            )
        return self._results["spes"]

    def run_baselines(self) -> Dict[str, SimulationResult]:
        """Run (or return cached) simulations of every baseline.

        Serial and parallel modes share one code path (:meth:`run_specs` over
        :meth:`baseline_specs`): with ``workers > 1`` the baselines fan out
        across the process pool (after the in-process SPES run that fixes the
        FaaSCache capacity), and in both modes results are memoized per
        policy name and persisted to ``cache_dir`` when configured.
        """
        return self.run_specs(self.baseline_specs())

    def run_all(self) -> Dict[str, SimulationResult]:
        """Run SPES and every baseline; returns ``{policy_name: result}``."""
        results = {"spes": self.run_spes()}
        results.update(self.run_baselines())
        return results

    def run_spes_variant(self, config: SpesConfig, cache_key: str | None = None) -> SimulationResult:
        """Run a SPES variant with a different configuration (sweeps, ablations)."""
        if cache_key is not None and cache_key in self._results:
            return self._results[cache_key]
        result = self.simulate(SpesPolicy(config), cache_key=cache_key)
        if cache_key is not None:
            self._result_specs[cache_key] = PolicySpec.of("spes", config=config)
        return result
