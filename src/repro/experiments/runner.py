"""Experiment orchestration: workload, split, policy suite and result caching."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.baselines import (
    DefusePolicy,
    FaasCachePolicy,
    FixedKeepAlivePolicy,
    HybridApplicationPolicy,
    HybridFunctionPolicy,
    LcsPolicy,
)
from repro.core import SpesConfig, SpesPolicy
from repro.simulation import ProvisioningPolicy, SimulationResult, Simulator
from repro.traces import AzureTraceGenerator, GeneratorProfile, Trace, TraceSplit, split_trace


@dataclass
class ExperimentConfig:
    """Configuration of one reproduction experiment.

    Attributes
    ----------
    n_functions:
        Number of functions in the synthetic workload.
    seed:
        Workload seed.
    duration_days:
        Total trace length (the Azure trace spans 14 days).
    training_days:
        Days used for offline pattern modelling (12 in the paper).
    warmup_minutes:
        Minutes of history replayed through each policy before metrics start.
    include_lcs:
        Whether to include the extra LCS comparator (not in the paper's set).
    spes_config:
        SPES configuration used for the main SPES run.
    """

    n_functions: int = 400
    seed: int = 2024
    duration_days: float = 14.0
    training_days: float = 12.0
    warmup_minutes: int = 1440
    include_lcs: bool = False
    spes_config: SpesConfig = field(default_factory=SpesConfig)

    def generator_profile(self) -> GeneratorProfile:
        """Profile of the synthetic workload generator for this experiment."""
        return GeneratorProfile(
            n_functions=self.n_functions,
            duration_days=self.duration_days,
            # Keep the unseen-function window inside short experiment traces.
            unseen_window_days=min(2.0, self.duration_days / 4.0),
            seed=self.seed,
        )


class ExperimentRunner:
    """Builds the workload once and simulates any number of policies over it.

    Parameters
    ----------
    config:
        Experiment configuration (defaults reproduce the benchmark setup).
    trace:
        Optional pre-built trace (e.g. the real Azure trace); when omitted a
        synthetic trace is generated from the configuration.
    """

    def __init__(self, config: ExperimentConfig | None = None, trace: Trace | None = None) -> None:
        self.config = config or ExperimentConfig()
        self._trace = trace
        self._split: TraceSplit | None = None
        self._results: Dict[str, SimulationResult] = {}
        self._spes_policy: SpesPolicy | None = None

    # ------------------------------------------------------------------ #
    # Workload
    # ------------------------------------------------------------------ #
    @property
    def trace(self) -> Trace:
        """The full 14-day workload (generated lazily)."""
        if self._trace is None:
            self._trace = AzureTraceGenerator(self.config.generator_profile()).generate()
        return self._trace

    @property
    def split(self) -> TraceSplit:
        """Training / simulation split of the workload."""
        if self._split is None:
            self._split = split_trace(self.trace, training_days=self.config.training_days)
        return self._split

    # ------------------------------------------------------------------ #
    # Policy suite
    # ------------------------------------------------------------------ #
    def spes_policy(self) -> SpesPolicy:
        """The SPES policy instance used for the cached main run."""
        if self._spes_policy is None:
            self._spes_policy = SpesPolicy(self.config.spes_config)
        return self._spes_policy

    def baseline_factories(self) -> Dict[str, Callable[[], ProvisioningPolicy]]:
        """Factories for every baseline policy of the paper's comparison.

        FaaSCache needs a memory capacity; following the paper, it is set to
        the peak memory SPES used during the simulation, so the SPES run is
        executed first if needed.
        """
        spes_result = self.run_spes()
        capacity = max(1, int(spes_result.peak_memory_usage))
        factories: Dict[str, Callable[[], ProvisioningPolicy]] = {
            "fixed-10min": lambda: FixedKeepAlivePolicy(keep_alive_minutes=10),
            "hybrid-function": HybridFunctionPolicy,
            "hybrid-application": HybridApplicationPolicy,
            "defuse": DefusePolicy,
            "faascache": lambda: FaasCachePolicy(capacity=capacity),
        }
        if self.config.include_lcs:
            factories["lcs"] = LcsPolicy
        return factories

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def simulate(self, policy: ProvisioningPolicy, cache_key: str | None = None) -> SimulationResult:
        """Simulate one policy over the experiment's simulation window."""
        if cache_key is not None and cache_key in self._results:
            return self._results[cache_key]
        simulator = Simulator(
            simulation_trace=self.split.simulation,
            training_trace=self.split.training,
            warmup_minutes=self.config.warmup_minutes,
        )
        result = simulator.run(policy)
        if cache_key is not None:
            self._results[cache_key] = result
        return result

    def run_spes(self) -> SimulationResult:
        """Run (or return the cached) main SPES simulation."""
        if "spes" not in self._results:
            self._results["spes"] = self.simulate(self.spes_policy())
        return self._results["spes"]

    def run_baselines(self) -> Dict[str, SimulationResult]:
        """Run (or return cached) simulations of every baseline."""
        results: Dict[str, SimulationResult] = {}
        for name, factory in self.baseline_factories().items():
            results[name] = self.simulate(factory(), cache_key=name)
        return results

    def run_all(self) -> Dict[str, SimulationResult]:
        """Run SPES and every baseline; returns ``{policy_name: result}``."""
        results = {"spes": self.run_spes()}
        results.update(self.run_baselines())
        return results

    def run_spes_variant(self, config: SpesConfig, cache_key: str | None = None) -> SimulationResult:
        """Run a SPES variant with a different configuration (sweeps, ablations)."""
        if cache_key is not None and cache_key in self._results:
            return self._results[cache_key]
        result = self.simulate(SpesPolicy(config), cache_key=cache_key)
        return result
