"""RQ2: wasted memory time, memory efficiency and scheduler overhead (Figs. 11, 12)."""

from __future__ import annotations

from typing import Dict, Mapping

from repro.core.categories import FunctionCategory
from repro.core.policy import SpesPolicy
from repro.metrics.memory import (
    normalized_wasted_memory_time,
    per_category_wmt_ratio,
)
from repro.metrics.summary import ComparisonTable
from repro.simulation.results import SimulationResult


def wmt_and_emcr_table(
    results: Mapping[str, SimulationResult], reference: str = "spes"
) -> ComparisonTable:
    """Normalized wasted memory time and EMCR per policy (Fig. 11)."""
    normalized = normalized_wasted_memory_time(results, reference)
    table = ComparisonTable(
        title="Fig. 11 - normalized wasted memory time and EMCR",
        columns=("policy", "normalized_wmt", "emcr_pct"),
    )
    for name, result in results.items():
        table.add_row(
            policy=name,
            normalized_wmt=normalized[name],
            emcr_pct=100.0 * result.emcr,
        )
    return table


def wmt_ratio_per_type(
    spes_policy: SpesPolicy, spes_result: SimulationResult
) -> Dict[FunctionCategory, float]:
    """Mean per-function WMT ratio of each SPES category (Fig. 12)."""
    return per_category_wmt_ratio(spes_result, spes_policy.category_assignments())


def wmt_ratio_per_type_table(
    spes_policy: SpesPolicy, spes_result: SimulationResult
) -> ComparisonTable:
    """Fig. 12 rendered as a table."""
    ratios = wmt_ratio_per_type(spes_policy, spes_result)
    table = ComparisonTable(
        title="Fig. 12 - wasted-memory-time ratio per category",
        columns=("category", "wmt_ratio"),
    )
    for category, ratio in sorted(ratios.items(), key=lambda item: item[0].value):
        table.add_row(category=category.value, wmt_ratio=ratio)
    return table


def report(
    results: Mapping[str, SimulationResult], reference: str = "spes"
) -> list[ComparisonTable]:
    """The RQ2 tables derivable from a plain ``{policy: result}`` mapping.

    Used by the ``spes-repro sweep`` command to render each seed's memory
    findings.
    """
    return [
        wmt_and_emcr_table(results, reference=reference),
        overhead_comparison(results),
    ]


def overhead_comparison(results: Mapping[str, SimulationResult]) -> ComparisonTable:
    """Scheduler decision overhead per simulated minute (RQ2 overhead discussion)."""
    table = ComparisonTable(
        title="RQ2 - scheduler overhead per simulated minute",
        columns=("policy", "overhead_s_per_min", "total_overhead_s"),
    )
    for name, result in results.items():
        table.add_row(
            policy=name,
            overhead_s_per_min=result.overhead_per_minute,
            total_overhead_s=result.overhead_seconds,
        )
    return table
