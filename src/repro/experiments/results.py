"""The consolidated RQ1–RQ6 results book behind ``spes-repro results``.

One entry point, :func:`generate_results`, runs every research question of
the evaluation — the RQ1/RQ2 policy comparison, the RQ3 trade-off sweeps,
the RQ4 ablations, the RQ5 latency-tail report and the RQ6 slowdown report —
over a single workload source and renders the findings as one markdown
document (committed as ``docs/RESULTS.md``).

Two workload sources share the code path:

* ``azure_dir=None`` (default) — the hermetic ``azure2019-fixture``
  scenario: the full real-trace ingestion pipeline over generated fixture
  CSVs.  Deterministic in the configuration alone, which is what makes the
  committed document diffable: CI regenerates it and fails on drift.
* ``azure_dir=PATH`` — the real Azure Functions 2019 dataset via the
  ``azure2019`` scenario, at whatever population/day span the configuration
  asks for (sharded across workers and cached like any sweep).

Every table in the document is deterministic: wall-clock measurement
columns (scheduler overhead) are excluded, simulation outputs are not.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Sequence

from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.experiments.suite import DEFAULT_SUITE_POLICIES, ExperimentSuite, SuiteResult
from repro.experiments import rq1_coldstart, rq2_memory
from repro.experiments.rq3_tradeoff import (
    givenup_sweep,
    linear_fit,
    prewarm_sweep,
    sweep_table,
)
from repro.experiments.rq4_ablation import (
    ablation_table,
    adaptivity_ablation,
    correlation_ablation,
)
from repro.experiments.rq5_latency import latency_rq, latency_rq_table
from repro.experiments.rq6_slowdown import slowdown_rq, slowdown_rq_table
from repro.metrics.summary import ComparisonTable
from repro.scenarios import build_scenario
from repro.simulation import SimulationResult
from repro.simulation.spec import RunSpec

__all__ = ["ResultsConfig", "generate_results", "write_results"]


@dataclass(frozen=True)
class ResultsConfig:
    """Configuration of one results-book run.

    Attributes
    ----------
    azure_dir:
        Directory holding the real Azure 2019 CSVs, or ``None`` for the
        hermetic fixture pipeline (the CI-sized default).
    n_functions:
        Functions selected into the workload (pass the full population,
        e.g. 83000, for the paper-scale campaign on the real dataset).
    population:
        Fixture-only: functions *generated* before selection (0 keeps the
        fixture at ``n_functions``); lets the selection stage do real work.
    days / training_days:
        Workload span and offline-modelling window.
    day_start:
        Real-dataset-only: first dataset day of the span.
    seeds:
        Workload seeds; multi-seed runs add the aggregate table.
    workers / cache_dir / shards:
        Fan-out, on-disk result caching and function-sharding, exactly as
        ``spes-repro sweep`` wires them.
    memory_mode:
        ``"mb"`` (default) adds the measured-memory table to RQ2; ``"unit"``
        reproduces the paper's abstract accounting only.
    """

    azure_dir: str | None = None
    n_functions: int = 24
    population: int = 48
    days: float = 3.0
    training_days: float = 2.0
    day_start: int = 1
    seeds: Sequence[int] = (2024, 7)
    workers: int = 0
    cache_dir: str | Path | None = None
    shards: int = 0
    memory_mode: str = "mb"

    def scenario(self) -> tuple[str, Dict[str, object]]:
        """The scenario name and parameters this configuration runs on."""
        if self.azure_dir is not None:
            return "azure2019", {
                "azure_dir": str(self.azure_dir),
                "day_start": int(self.day_start),
            }
        return "azure2019-fixture", {"population": int(self.population)}

    def experiment_config(self, seed: int) -> ExperimentConfig:
        return ExperimentConfig(
            n_functions=self.n_functions,
            seed=seed,
            duration_days=self.days,
            training_days=self.training_days,
        )

    def run_spec(self) -> RunSpec:
        """The validated :class:`RunSpec` the book's RQ1/RQ2 suite runs under."""
        return RunSpec.build(shards=self.shards, memory_mode=self.memory_mode)

    def command_line(self) -> str:
        """The ``spes-repro results`` invocation reproducing this document."""
        parts = ["spes-repro results"]
        if self.azure_dir is not None:
            parts.append(f"--azure-dir {self.azure_dir}")
            if self.day_start != 1:
                parts.append(f"--day-start {self.day_start}")
        elif self.population != 48:
            parts.append(f"--population {self.population}")
        if self.n_functions != 24:
            parts.append(f"--functions {self.n_functions}")
        if self.days != 3.0:
            parts.append(f"--days {self.days:g}")
        if self.training_days != 2.0:
            parts.append(f"--training-days {self.training_days:g}")
        if tuple(self.seeds) != (2024, 7):
            parts.append("--seeds " + " ".join(str(seed) for seed in self.seeds))
        if self.memory_mode != "mb":
            parts.append(f"--memory-mode {self.memory_mode}")
        if self.shards:
            parts.append(f"--shards {self.shards}")
        parts.append("--output docs/RESULTS.md")
        return " ".join(parts)


def _measured_memory_table(
    results: Mapping[str, SimulationResult], seed: int
) -> ComparisonTable:
    """Measured-footprint memory metrics per policy (MB-mode runs only)."""
    table = ComparisonTable(
        title=f"RQ2 - measured memory (seed {seed}; footprints joined from the dataset)",
        columns=("policy", "avg_mb", "peak_mb", "wmt_mb_min", "emcr_mb_pct"),
    )
    for name, result in results.items():
        table.add_row(
            policy=name,
            avg_mb=result.average_memory_usage_mb,
            peak_mb=result.peak_memory_usage_mb,
            wmt_mb_min=result.wasted_memory_mb_minutes,
            emcr_mb_pct=100.0 * getattr(result, "emcr_mb", 0.0),
        )
    return table


def _progress(message: str, echo: bool) -> None:
    if echo:
        print(f"results: {message}", file=sys.stderr, flush=True)


def generate_results(config: ResultsConfig | None = None, echo: bool = False) -> str:
    """Run the full RQ campaign and return the markdown results book.

    With ``echo=True`` a one-line progress note per section goes to stderr
    (the document itself stays deterministic).
    """
    config = config or ResultsConfig()
    scenario, scenario_params = config.scenario()
    seeds = tuple(config.seeds)
    sections: List[str] = []

    source = (
        f"real Azure 2019 dataset at `{config.azure_dir}`"
        if config.azure_dir is not None
        else "hermetic fixture pipeline (generated CSVs through the real ingestion path)"
    )
    functions_line = f"- functions: {config.n_functions}"
    if config.azure_dir is None:
        functions_line += f" (fixture population {config.population})"
    sections.append(
        "\n".join(
            [
                "# SPES reproduction — results book",
                "",
                "<!-- Generated by `spes-repro results`; do not edit by hand. -->",
                "",
                f"Workload source: {source}.",
                "",
                f"- scenario: `{scenario}`",
                functions_line,
                f"- span: {config.days:g} day(s), {config.training_days:g} training",
                f"- seeds: {', '.join(str(seed) for seed in seeds)}",
                f"- memory accounting: {config.memory_mode}",
                "",
                "Regenerate with:",
                "",
                "```sh",
                config.command_line(),
                "```",
            ]
        )
    )

    # ------------------------------------------------------------------ #
    # RQ1 + RQ2: the multi-seed policy comparison.
    # ------------------------------------------------------------------ #
    _progress("RQ1/RQ2 policy suite", echo)
    suite = ExperimentSuite(
        config=config.experiment_config(seeds[0]),
        seeds=seeds,
        policies=DEFAULT_SUITE_POLICIES,
        workers=config.workers,
        cache_dir=config.cache_dir,
        scenario=scenario,
        scenario_params=scenario_params,
        spec=config.run_spec(),
    )
    outcome: SuiteResult = suite.run()

    rq1_parts = ["## RQ1 — cold-start reduction", ""]
    for seed in seeds:
        for table in rq1_coldstart.report(outcome.results[seed]):
            table.title = f"{table.title} (seed {seed})"
            rq1_parts.append(table.to_markdown())
            rq1_parts.append("")
    if len(seeds) > 1:
        rq1_parts.append(outcome.aggregate_table().to_markdown())
        rq1_parts.append("")
    sections.append("\n".join(rq1_parts).rstrip())

    rq2_parts = ["## RQ2 — wasted memory time and memory efficiency", ""]
    for seed in seeds:
        table = rq2_memory.wmt_and_emcr_table(outcome.results[seed])
        table.title = f"{table.title} (seed {seed})"
        rq2_parts.append(table.to_markdown(float_format="{:.6f}"))
        rq2_parts.append("")
        if config.memory_mode == "mb":
            rq2_parts.append(
                _measured_memory_table(outcome.results[seed], seed).to_markdown(
                    float_format="{:.2f}"
                )
            )
            rq2_parts.append("")
    rq2_parts.append(
        "_Scheduler-overhead columns are wall-clock measurements and are "
        "reported by `spes-repro sweep --rq-tables`, not in this book, so "
        "the document stays byte-reproducible._"
    )
    sections.append("\n".join(rq2_parts).rstrip())

    # ------------------------------------------------------------------ #
    # RQ3 + RQ4: SPES-variant batches on the first seed's workload.
    # ------------------------------------------------------------------ #
    _progress("RQ3 trade-off sweeps", echo)
    workload = build_scenario(
        scenario,
        seed=seeds[0],
        n_functions=config.n_functions,
        days=config.days,
        training_days=config.training_days,
        **scenario_params,
    )
    runner = ExperimentRunner(
        config=config.experiment_config(seeds[0]),
        split=workload.split,
        workers=config.workers,
        cache_dir=config.cache_dir,
        memory_mode=config.memory_mode,
    )
    rq3_parts = ["## RQ3 — memory / cold-start trade-off", ""]
    prewarm_points = prewarm_sweep(runner)
    table = sweep_table(
        prewarm_points, "theta_prewarm", f"Fig. 13a - theta_prewarm sweep (seed {seeds[0]})"
    )
    rq3_parts.append(table.to_markdown())
    slope, intercept = linear_fit(prewarm_points)
    rq3_parts += ["", f"Linear fit: `q3_csr = {slope:.4f} * memory + {intercept:.4f}`", ""]
    givenup_points = givenup_sweep(runner)
    table = sweep_table(
        givenup_points, "givenup_scale", f"Fig. 13b - theta_givenup sweep (seed {seeds[0]})"
    )
    rq3_parts.append(table.to_markdown())
    slope, intercept = linear_fit(givenup_points)
    rq3_parts += ["", f"Linear fit: `q3_csr = {slope:.4f} * memory + {intercept:.4f}`"]
    sections.append("\n".join(rq3_parts).rstrip())

    _progress("RQ4 ablations", echo)
    rq4_parts = ["## RQ4 — ablations of the complementary designs", ""]
    table = ablation_table(
        correlation_ablation(runner), f"Fig. 14 - correlation ablation (seed {seeds[0]})"
    )
    rq4_parts += [table.to_markdown(), ""]
    table = ablation_table(
        adaptivity_ablation(runner), f"Fig. 15 - adaptivity ablation (seed {seeds[0]})"
    )
    rq4_parts.append(table.to_markdown())
    sections.append("\n".join(rq4_parts).rstrip())

    # ------------------------------------------------------------------ #
    # RQ5: latency tail, feedback vs. open loop, on this workload source.
    # ------------------------------------------------------------------ #
    _progress("RQ5 latency tail (event-feedback engine)", echo)
    rq5_report = latency_rq(
        scenarios=(scenario,),
        seeds=seeds,
        config=config.experiment_config(seeds[0]),
        workers=config.workers,
        cache_dir=config.cache_dir,
        scenario_params=scenario_params,
    )
    rq5_parts = [
        "## RQ5 — cold-start latency tail (feedback vs. open loop)",
        "",
        latency_rq_table(rq5_report).to_markdown(float_format="{:.1f}"),
        "",
        "_Streaming evaluation on the `event-feedback` engine: policies "
        "receive no training window and adapt online._",
    ]
    sections.append("\n".join(rq5_parts).rstrip())

    # ------------------------------------------------------------------ #
    # RQ6: slowdown under finite cores, on this workload source.
    # ------------------------------------------------------------------ #
    _progress("RQ6 slowdown under finite cores (event engine)", echo)
    rq6_report = slowdown_rq(
        scenarios=(scenario,),
        seeds=seeds,
        config=config.experiment_config(seeds[0]),
        slo_ms=1000.0,
        workers=config.workers,
        cache_dir=config.cache_dir,
        scenario_params=scenario_params,
    )
    rq6_parts = [
        "## RQ6 — per-invocation slowdown under finite cores",
        "",
        slowdown_rq_table(rq6_report).to_markdown(float_format="{:.2f}"),
        "",
        "_`event` engine with 2 cores per node and a 1000 ms SLO; fifo vs. "
        "srtf disciplines._",
    ]
    sections.append("\n".join(rq6_parts).rstrip())

    return "\n\n".join(sections) + "\n"


def write_results(
    path: str | Path, config: ResultsConfig | None = None, echo: bool = False
) -> Path:
    """Generate the results book and write it to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(generate_results(config, echo=echo))
    return path
