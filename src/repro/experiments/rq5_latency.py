"""RQ5: does closing the latency feedback loop shrink the cold-start tail?

The minute-granular RQs (1–4) count cold starts; this module asks the
production question behind the count — how long requests actually waited —
and whether a policy that *sees* those waits (through the ``event-feedback``
engine's rolling :class:`~repro.simulation.events.LatencyWindow`) beats the
open-loop policies that don't.

The report runs one streaming event-feedback sweep per continuous-drift
scenario and tabulates, per ``(scenario, policy)``, the p50/p95/p99/max of
the pooled cold-start-wait distribution (merged across seeds with
:meth:`~repro.simulation.results.LatencyStats.merge`, so the percentiles are
exact).  The default policy set pairs the feedback consumer
(``latency-keepalive``) against its open-loop twin at the same base horizon
(``fixed-10min-indexed``): both start from identical keep-alive behaviour,
so any divergence in the table is attributable to the feedback loop alone.

This module backs the ``spes-repro latency-rq`` CLI subcommand.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Mapping, Sequence

from repro.experiments.runner import ExperimentConfig
from repro.experiments.suite import ExperimentSuite
from repro.metrics.summary import ComparisonTable
from repro.simulation import LatencyStats

__all__ = [
    "DEFAULT_LATENCY_RQ_SCENARIOS",
    "DEFAULT_LATENCY_RQ_POLICIES",
    "latency_rq",
    "latency_rq_table",
]

#: The continuous-drift catalog: the shapes the feedback loop exists for.
DEFAULT_LATENCY_RQ_SCENARIOS = ("rotating-periods", "load-ramp", "seasonal-mix")

#: Feedback consumer vs. its open-loop twin at the same base horizon.
DEFAULT_LATENCY_RQ_POLICIES = ("fixed-10min-indexed", "latency-keepalive")


def latency_rq(
    scenarios: Sequence[str] = DEFAULT_LATENCY_RQ_SCENARIOS,
    policies: Sequence[str] = DEFAULT_LATENCY_RQ_POLICIES,
    seeds: Sequence[int] = (2024,),
    config: ExperimentConfig | None = None,
    streaming: bool = True,
    workers: int = 0,
    cache_dir: str | Path | None = None,
    scenario_params: Mapping[str, object] | None = None,
) -> Dict[str, Dict[str, LatencyStats]]:
    """Run the per-scenario feedback sweeps and pool latency across seeds.

    Returns ``{scenario: {policy: merged LatencyStats}}``.  Every sweep runs
    on the ``event-feedback`` engine; with ``streaming=True`` (default)
    policies additionally receive zero training window, the evaluation
    regime the continuous-drift scenarios are built for.
    """
    config = config or ExperimentConfig()
    report: Dict[str, Dict[str, LatencyStats]] = {}
    for scenario in scenarios:
        suite = ExperimentSuite(
            config=config,
            seeds=seeds,
            policies=policies,
            workers=workers,
            cache_dir=cache_dir,
            scenario=scenario,
            scenario_params=scenario_params,
            engine="event-feedback",
            streaming=streaming,
        )
        outcome = suite.run()
        merged: Dict[str, LatencyStats] = {}
        for policy in policies:
            stats = outcome.merged_latency(policy)
            if stats is not None:
                merged[policy] = stats
        report[scenario] = merged
    return report


def latency_rq_table(
    report: Mapping[str, Mapping[str, LatencyStats]],
    title: str = "RQ5 - cold-start latency tail, feedback vs. open loop",
) -> ComparisonTable:
    """Tabulate a :func:`latency_rq` report: one row per (scenario, policy)."""
    table = ComparisonTable(
        title=title,
        columns=(
            "scenario",
            "policy",
            "cold_events",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "max_ms",
        ),
    )
    for scenario, per_policy in report.items():
        for policy, stats in per_policy.items():
            table.add_row(
                scenario=scenario,
                policy=policy,
                cold_events=float(stats.cold_start_events + stats.delayed_events),
                p50_ms=stats.p50_ms,
                p95_ms=stats.p95_ms,
                p99_ms=stats.p99_ms,
                max_ms=stats.max_ms,
            )
    return table
