"""RQ1: effectiveness in cold-start reduction (Figs. 8, 9 and 10)."""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.core.categories import FunctionCategory
from repro.core.policy import SpesPolicy
from repro.metrics.coldstart import (
    cold_start_cdf,
    csr_improvement,
    per_category_cold_start_rate,
)
from repro.metrics.memory import normalized_memory_usage
from repro.metrics.summary import ComparisonTable
from repro.simulation.results import SimulationResult


def csr_cdf_table(
    results: Mapping[str, SimulationResult],
    grid: np.ndarray | None = None,
) -> ComparisonTable:
    """The CDF of function-wise cold-start rates per policy (Fig. 8).

    Each row is one grid point of the cold-start-rate axis; each policy column
    holds the fraction of invoked functions whose CSR is at most that value.
    """
    if grid is None:
        grid = np.round(np.arange(0.0, 1.01, 0.05), 2)
    table = ComparisonTable(
        title="Fig. 8 - CDF of function-wise cold-start rate",
        columns=("csr",) + tuple(results),
    )
    cdfs = {name: cold_start_cdf(result, grid)[1] for name, result in results.items()}
    for index, value in enumerate(grid):
        row: Dict[str, object] = {"csr": float(value)}
        for name in results:
            row[name] = float(cdfs[name][index]) if cdfs[name].size else 0.0
        table.add_row(**row)
    return table


def headline_improvements(
    results: Mapping[str, SimulationResult], candidate: str = "spes"
) -> ComparisonTable:
    """SPES's Q3-CSR reduction over every baseline (the paper's headline numbers)."""
    if candidate not in results:
        raise KeyError(f"candidate policy {candidate!r} not in results")
    table = ComparisonTable(
        title="RQ1 - 75th-percentile CSR and SPES's relative reduction",
        columns=("policy", "q3_csr", "p90_csr", "never_cold", "always_cold", "q3_reduction_by_spes"),
    )
    candidate_result = results[candidate]
    for name, result in results.items():
        reduction = None if name == candidate else csr_improvement(candidate_result, result)
        table.add_row(
            policy=name,
            q3_csr=result.q3_cold_start_rate,
            p90_csr=result.cold_start_rate_percentile(90.0),
            never_cold=result.never_cold_fraction,
            always_cold=result.always_cold_fraction,
            q3_reduction_by_spes=reduction,
        )
    return table


def memory_and_always_cold(
    results: Mapping[str, SimulationResult], reference: str = "spes"
) -> ComparisonTable:
    """Normalized memory usage and always-cold percentage per policy (Fig. 9)."""
    normalized = normalized_memory_usage(results, reference)
    table = ComparisonTable(
        title="Fig. 9 - normalized memory usage and always-cold functions",
        columns=("policy", "normalized_memory", "always_cold_pct"),
    )
    for name, result in results.items():
        table.add_row(
            policy=name,
            normalized_memory=normalized[name],
            always_cold_pct=100.0 * result.always_cold_fraction,
        )
    return table


def report(
    results: Mapping[str, SimulationResult], candidate: str = "spes"
) -> list[ComparisonTable]:
    """The RQ1 tables derivable from a plain ``{policy: result}`` mapping.

    Used by the ``spes-repro sweep`` command to render each seed's cold-start
    findings; the category-level tables need a prepared SPES policy instance
    and are therefore not part of this report.
    """
    return [
        headline_improvements(results, candidate=candidate),
        memory_and_always_cold(results, reference=candidate),
    ]


def per_category_csr(
    spes_policy: SpesPolicy, spes_result: SimulationResult
) -> Dict[FunctionCategory, float]:
    """Average cold-start rate of each SPES category (Fig. 10)."""
    return per_category_cold_start_rate(spes_result, spes_policy.category_assignments())


def per_category_csr_table(
    spes_policy: SpesPolicy, spes_result: SimulationResult
) -> ComparisonTable:
    """Fig. 10 rendered as a table ordered like the paper's bar chart."""
    rates = per_category_csr(spes_policy, spes_result)
    order = [
        FunctionCategory.UNKNOWN,
        FunctionCategory.ALWAYS_WARM,
        FunctionCategory.REGULAR,
        FunctionCategory.APPRO_REGULAR,
        FunctionCategory.DENSE,
        FunctionCategory.SUCCESSIVE,
        FunctionCategory.PULSED,
        FunctionCategory.POSSIBLE,
        FunctionCategory.CORRELATED,
        FunctionCategory.NEWLY_POSSIBLE,
    ]
    table = ComparisonTable(
        title="Fig. 10 - average cold-start rate per category",
        columns=("category", "cold_start_rate"),
    )
    for category in order:
        if category in rates:
            table.add_row(category=category.value, cold_start_rate=rates[category])
    return table
