"""Parallel fan-out of simulation cells across worker processes.

A *cell* is one ``(policy spec, trace, seed)`` combination; a sweep is a list
of cells.  :class:`ParallelRunner` executes sweeps either serially in-process
or across a :class:`concurrent.futures.ProcessPoolExecutor`, with three
guarantees:

* **Shared workload** — the training/simulation traces are pickled *once* in
  the parent and shipped to every worker through the pool initializer, so a
  sweep of N cells never re-generates or re-serializes the workload N times.
* **Determinism** — every cell carries a seed derived stably (SHA-256) from
  the sweep's base seed, its trace key and its policy spec, so serial and
  parallel executions of the same sweep produce identical
  :class:`~repro.simulation.results.SimulationResult`\\ s (modulo wall-clock
  overhead timings, which are measurements, not simulation outputs; compare
  with :meth:`SimulationResult.deterministic_fingerprint`).
* **On-disk caching** — with a ``cache_dir``, each finished cell is persisted
  keyed by a content hash of (engine version, trace fingerprints, warm-up,
  policy spec, seed); re-running a sweep only simulates the missing cells.

Policies are described by :class:`PolicySpec` — a picklable ``(name,
parameters)`` pair resolved against :data:`POLICY_REGISTRY` inside the worker
— rather than by policy *instances*, so a cell's payload stays tiny and
factories with unpicklable closures are never shipped across processes.
"""

from __future__ import annotations

import inspect
import os
import pickle
import tempfile
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.baselines import (
    DefusePolicy,
    FaasCachePolicy,
    FixedKeepAlivePolicy,
    HybridApplicationPolicy,
    HybridFunctionPolicy,
    IndexedDefusePolicy,
    IndexedFaasCachePolicy,
    IndexedFixedKeepAlivePolicy,
    IndexedHybridApplicationPolicy,
    IndexedHybridFunctionPolicy,
    IndexedLcsPolicy,
    LatencyAwareKeepAlivePolicy,
    LcsPolicy,
)
from repro.core import IndexedSpesPolicy, SpesPolicy
from repro.simulation import (
    ClusterModel,
    EventConfig,
    ProvisioningPolicy,
    SimulationResult,
    Simulator,
)
from repro.simulation.engine import ShardFallbackWarning
from repro.simulation.policy_base import AlwaysWarmPolicy, NoKeepAlivePolicy
from repro.simulation.sharding import shard_assignment, shard_fallback_reason
from repro.simulation.spec import (
    ENGINE_VERSION,
    EVENT_ENGINES,
    RunSpec,
    canonical_value as _canonical,
    content_digest as _digest,
)
from repro.traces import TraceSplit

__all__ = [
    "POLICY_REGISTRY",
    "PolicySpec",
    "SweepCell",
    "ResultCache",
    "ParallelRunner",
    "register_policy",
    "default_policy_specs",
    "derive_cell_seed",
]


# --------------------------------------------------------------------- #
# Policy registry and specs
# --------------------------------------------------------------------- #
#: Maps spec names to policy factories.  Factories are called with the spec's
#: keyword parameters; a factory declaring a ``seed`` parameter additionally
#: receives the cell's deterministic seed.
POLICY_REGISTRY: Dict[str, Callable[..., ProvisioningPolicy]] = {
    "spes": SpesPolicy,
    "fixed-keepalive": FixedKeepAlivePolicy,
    "fixed-10min": lambda: FixedKeepAlivePolicy(keep_alive_minutes=10),
    "hybrid-function": HybridFunctionPolicy,
    "hybrid-application": HybridApplicationPolicy,
    "defuse": DefusePolicy,
    "faascache": FaasCachePolicy,
    "lcs": LcsPolicy,
    "no-keepalive": NoKeepAlivePolicy,
    "always-warm": AlwaysWarmPolicy,
    # Index-native (vectorized) ports.  Each shares its dict twin's policy
    # *name* — results are decision-identical (fingerprint-equal) — while the
    # registry key selects the faster implementation.
    "spes-indexed": IndexedSpesPolicy,
    "fixed-keepalive-indexed": IndexedFixedKeepAlivePolicy,
    "fixed-10min-indexed": lambda: IndexedFixedKeepAlivePolicy(keep_alive_minutes=10),
    "hybrid-function-indexed": IndexedHybridFunctionPolicy,
    "hybrid-application-indexed": IndexedHybridApplicationPolicy,
    "faascache-indexed": IndexedFaasCachePolicy,
    "defuse-indexed": IndexedDefusePolicy,
    "lcs-indexed": IndexedLcsPolicy,
    # Latency-aware keep-alive: index-native only (it consumes the feedback
    # engine's rolling window; there is no dict twin to port).
    "latency-keepalive": LatencyAwareKeepAlivePolicy,
}


def register_policy(name: str, factory: Callable[..., ProvisioningPolicy]) -> None:
    """Register a policy factory under ``name`` for use in :class:`PolicySpec`.

    Registration must happen at import time of a module available to worker
    processes (cells are resolved against the registry *inside* the worker).
    """
    if name in POLICY_REGISTRY:
        raise ValueError(f"policy {name!r} is already registered")
    POLICY_REGISTRY[name] = factory


# _canonical/_digest (the canonical-value and content-digest helpers) now
# live in repro.simulation.spec as canonical_value/content_digest; they are
# imported above under their historical private names for compatibility.


@dataclass(frozen=True)
class PolicySpec:
    """A picklable description of a provisioning policy.

    Parameters are stored as a sorted tuple of ``(name, value)`` pairs so two
    specs with the same semantics hash identically.
    """

    policy: str
    params: tuple = ()

    @classmethod
    def of(cls, policy: str, **params: Any) -> "PolicySpec":
        """Build a spec from keyword parameters (``PolicySpec.of("spes", config=...)``)."""
        if policy not in POLICY_REGISTRY:
            raise KeyError(
                f"unknown policy {policy!r}; registered: {sorted(POLICY_REGISTRY)}"
            )
        return cls(policy=policy, params=tuple(sorted(params.items())))

    def build(self, seed: int | None = None) -> ProvisioningPolicy:
        """Instantiate the policy, injecting ``seed`` when the factory takes one."""
        factory = POLICY_REGISTRY[self.policy]
        kwargs = dict(self.params)
        if seed is not None and "seed" not in kwargs and _accepts_seed(factory):
            kwargs["seed"] = seed
        return factory(**kwargs)


def _accepts_seed(factory: Callable[..., ProvisioningPolicy]) -> bool:
    # Only an explicitly declared ``seed`` parameter opts a factory in; a
    # bare ``**kwargs`` does not, as the factory may forward keywords to a
    # constructor that knows nothing about seeds.
    try:
        parameters = inspect.signature(factory).parameters
    except (TypeError, ValueError):
        return False
    return "seed" in parameters


def default_policy_specs(
    include_lcs: bool = False, faascache_capacity: int | None = None
) -> Dict[str, PolicySpec]:
    """The paper's baseline suite as named specs (FaaSCache needs a capacity)."""
    specs = {
        "fixed-10min": PolicySpec.of("fixed-keepalive", keep_alive_minutes=10),
        "hybrid-function": PolicySpec.of("hybrid-function"),
        "hybrid-application": PolicySpec.of("hybrid-application"),
        "defuse": PolicySpec.of("defuse"),
    }
    if faascache_capacity is not None:
        specs["faascache"] = PolicySpec.of("faascache", capacity=faascache_capacity)
    if include_lcs:
        specs["lcs"] = PolicySpec.of("lcs")
    return specs


def derive_cell_seed(base_seed: int, spec: PolicySpec) -> int:
    """Deterministic per-cell seed: stable across runs, machines and workers.

    Derived only from content (the workload's base seed and the policy
    spec), never from presentation details like trace-mapping keys, so
    identical cells submitted through different entry points (e.g.
    :class:`~repro.experiments.runner.ExperimentRunner` vs
    :class:`~repro.experiments.suite.ExperimentSuite`) share one seed and
    therefore one on-disk cache entry.  Bounded to 32 bits so it can feed
    numpy's legacy RNG seeding directly.
    """
    return int(_digest(base_seed, spec)[:8], 16)


@dataclass(frozen=True)
class SweepCell:
    """One unit of work for the runner: a policy over one trace split.

    Attributes
    ----------
    name:
        Unique result key within the sweep (e.g. ``"seed2024/defuse"``).
    trace_key:
        Key into the runner's trace mapping.
    spec:
        The policy to build and simulate.
    seed:
        Deterministic per-cell seed, forwarded to seed-aware policy factories.
    """

    name: str
    trace_key: str
    spec: PolicySpec
    seed: int = 0


# --------------------------------------------------------------------- #
# On-disk cache
# --------------------------------------------------------------------- #
class ResultCache:
    """Pickle-per-key store of simulation results under a cache directory."""

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"

    def get(self, key: str) -> SimulationResult | None:
        """Return the cached result for ``key``, or None on a miss."""
        path = self._path(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            with path.open("rb") as handle:
                result = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        """Persist ``result`` under ``key`` (atomic rename, last writer wins).

        The temporary file name is unique per writer, so concurrent sweeps
        sharing one cache directory cannot tear each other's entries.
        """
        path = self._path(key)
        descriptor, temporary = tempfile.mkstemp(
            prefix=f"{key}.", suffix=".tmp", dir=self.cache_dir
        )
        try:
            with open(descriptor, "wb") as handle:
                pickle.dump(result, handle)
            Path(temporary).replace(path)
        except BaseException:
            Path(temporary).unlink(missing_ok=True)
            raise

    def prune(self, max_age_days: float) -> int:
        """Delete cache entries older than ``max_age_days``; return the count.

        Cache keys are content hashes, so entries never become *wrong* — but
        engine-version bumps and abandoned experiment shapes leave orphans
        that nothing will ever read again.  Age is judged by file
        modification time; stray temporary files from crashed writers are
        swept on the same pass.  Files that vanish mid-scan (a concurrent
        prune or sweep) are skipped, not errors.
        """
        if max_age_days < 0:
            raise ValueError("max_age_days must be non-negative")
        cutoff = time.time() - max_age_days * 86400.0
        removed = 0
        for path in list(self.cache_dir.glob("*.pkl")) + list(
            self.cache_dir.glob("*.tmp")
        ):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue
        return removed


# --------------------------------------------------------------------- #
# Worker-side execution
# --------------------------------------------------------------------- #
#: Traces installed into each worker by the pool initializer.
_WORKER_TRACES: Dict[str, TraceSplit] = {}


def _worker_initializer(payload: bytes) -> None:
    """Unpickle the shared trace mapping once per worker process."""
    _WORKER_TRACES.clear()
    _WORKER_TRACES.update(pickle.loads(payload))


def _execute_cell(
    cell: SweepCell,
    traces: Mapping[str, TraceSplit],
    spec: RunSpec,
) -> SimulationResult:
    """Run one cell against ``traces`` (shared by serial and worker paths).

    ``spec`` is the cell's fully-resolved :class:`RunSpec` (cluster and
    events already selected for its trace key).  Streaming semantics —
    no training input, no warm-up replay, the policy enters cold — are
    applied by the :class:`Simulator` itself from ``spec.streaming``.
    """
    split = traces[cell.trace_key]
    policy = cell.spec.build(seed=cell.seed)
    simulator = Simulator(
        simulation_trace=split.simulation,
        training_trace=split.training,
        spec=spec,
    )
    return simulator.run(policy)


def _worker_run_cell(cell: SweepCell, spec: RunSpec) -> tuple[str, SimulationResult]:
    # Whole-cell worker execution never re-attempts sharding: the parent's
    # _shard_plan already decided this cell runs unsharded (or unshardable),
    # and re-warning inside the worker would be noise.
    return cell.name, _execute_cell(cell, _WORKER_TRACES, spec.override(shards=0))


def _worker_run_shard(
    cell: SweepCell,
    positions: np.ndarray,
    spec: RunSpec,
) -> SimulationResult:
    """Run one *shard* of a cell inside a worker process.

    The worker cuts the shard's trace slice from the shared pickled split
    (``positions`` is the only per-task payload beyond the cell itself) and
    runs the identical per-shard simulation the serial
    :meth:`Simulator._run_sharded` loop would, so pool and serial sharded
    executions merge to byte-identical results.
    """
    split = _WORKER_TRACES[cell.trace_key]
    simulator = Simulator(
        simulation_trace=split.simulation,
        training_trace=split.training,
        spec=spec.override(shards=0),
    )
    sub = simulator.shard_simulator(positions)
    return sub.run(cell.spec.build(seed=cell.seed))


# --------------------------------------------------------------------- #
# The runner
# --------------------------------------------------------------------- #
class ParallelRunner:
    """Executes sweeps of simulation cells, optionally across processes.

    Parameters
    ----------
    traces:
        Mapping from trace key to the :class:`~repro.traces.trace.TraceSplit`
        each cell simulates against.  Prepared once; pickled once per pool.
    workers:
        Number of worker processes.  ``0`` or ``1`` runs cells serially
        in-process (still using the cache), which is also the deterministic
        baseline the parallel path is tested against.
    cache_dir:
        Optional directory for the on-disk :class:`ResultCache`.
    warmup_minutes:
        Warm-up horizon forwarded to every cell's :class:`Simulator`.
    clusters:
        Optional per-trace-key :class:`~repro.simulation.cluster.ClusterModel`
        mapping.  Cells simulating a trace key with a cluster run in
        capacity-constrained mode; the cluster configuration is part of the
        cell's cache key.
    engine:
        Engine implementation every cell runs on (``"vectorized"`` default;
        ``"event"``/``"event-feedback"`` additionally collect per-event
        latency distributions).  Part of every cell's cache key: the engines
        are fingerprint-equivalent for no-op-hook policies, but cached event
        results carry latency blocks that vectorized runs must not serve —
        and feedback runs of latency-aware policies are different
        simulations outright.
    events:
        Optional per-trace-key :class:`~repro.simulation.events.EventConfig`
        mapping for the event engines (e.g. scenario-prescribed duration
        scaling, per-seed jitter seeds, feedback-window horizons).  Keys
        without an entry use the defaults.  Ignored by the minute-granular
        engines.
    streaming:
        When True, every cell runs in streaming evaluation mode: policies
        receive no training trace and no warm-up replay — they start cold
        and must adapt online.  Part of every cell's cache key.
    shards:
        When >= 2, shardable cells are split into that many function
        partitions (see :mod:`repro.simulation.sharding`).  With
        ``workers > 1`` each partition becomes its *own* pool task — the
        worker slices its shard from the shared pickled trace, so one big
        cell parallelizes across processes instead of serializing on the
        slowest whole-cell task; the parent merges the per-shard results.
        Serially, the :class:`Simulator` runs its in-process sharded loop.
        Cells that cannot shard fall back to whole-cell execution with a
        :class:`~repro.simulation.engine.ShardFallbackWarning`.  Part of
        every cell's cache key, together with ``shard_placement``.
    shard_placement:
        Placement strategy deriving the function→shard partition
        (default ``"hash"``).
    memory_mode:
        Memory accounting mode every cell runs in (``"unit"`` default;
        ``"mb"`` weighs loaded instances by their measured footprints — see
        :mod:`repro.simulation.memory`).  Part of every cell's cache key
        when not ``"unit"``.
    spec:
        A ready-made :class:`~repro.simulation.spec.RunSpec` instead of the
        individual run knobs above (mutually exclusive with them).  The
        spec's own ``cluster``/``events`` fields act as the default for
        trace keys without an entry in the per-key mappings.
    """

    def __init__(
        self,
        traces: Mapping[str, TraceSplit],
        workers: int = 0,
        cache_dir: str | Path | None = None,
        warmup_minutes: int | None = None,
        clusters: Mapping[str, ClusterModel | None] | None = None,
        engine: str | None = None,
        events: Mapping[str, EventConfig] | None = None,
        streaming: bool | None = None,
        shards: int | None = None,
        shard_placement: str | None = None,
        memory_mode: str | None = None,
        spec: RunSpec | None = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be non-negative")
        if spec is None:
            # Back-compat shim: the classic keywords build the spec, whose
            # constructor runs the one shared validate().
            spec = RunSpec.build(
                engine=engine,
                streaming=streaming,
                warmup_minutes=warmup_minutes,
                shards=shards,
                shard_placement=shard_placement,
                memory_mode=memory_mode,
            )
        elif any(
            value is not None
            for value in (
                warmup_minutes, engine, streaming,
                shards, shard_placement, memory_mode,
            )
        ):
            raise ValueError(
                "pass either spec= or the individual run knobs, not both"
            )
        else:
            spec.validate()
        self.spec = spec
        available = os.cpu_count() or 1
        if workers > available:
            warnings.warn(
                f"workers={workers} exceeds the {available} available CPU(s); "
                "the extra processes will only add scheduling overhead",
                RuntimeWarning,
                stacklevel=2,
            )
        self.traces = dict(traces)
        self.workers = workers
        # Attribute shims: long-standing public names, now views on the spec.
        self.warmup_minutes = spec.warmup_minutes
        self.engine = spec.engine
        self.streaming = spec.streaming
        self.shards = spec.shards
        self.shard_placement = spec.shard_placement
        self.memory_mode = spec.memory_mode
        self.clusters = dict(clusters) if clusters else {}
        unknown = set(self.clusters) - set(self.traces)
        if unknown:
            raise KeyError(f"clusters reference unknown trace key(s): {sorted(unknown)}")
        self.events = dict(events) if events else {}
        unknown = set(self.events) - set(self.traces)
        if unknown:
            raise KeyError(f"events reference unknown trace key(s): {sorted(unknown)}")
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        # Computed lazily: hashing every trace's invocation matrix is only
        # needed once cache keys are requested.
        self._trace_fingerprints: Dict[str, tuple[str, str]] | None = None

    # ------------------------------------------------------------------ #
    def cell(self, name: str, spec: PolicySpec, trace_key: str, base_seed: int = 0) -> SweepCell:
        """Build a cell with its deterministic seed for this runner's traces."""
        if trace_key not in self.traces:
            raise KeyError(f"unknown trace key {trace_key!r}; have {sorted(self.traces)}")
        return SweepCell(
            name=name,
            trace_key=trace_key,
            spec=spec,
            seed=derive_cell_seed(base_seed, spec),
        )

    def trace_fingerprints(self) -> Dict[str, tuple[str, str]]:
        """``{trace_key: (training, simulation)}`` content fingerprints.

        Computed lazily and memoized: hashing every trace's invocation
        matrix is only needed once cache keys (or run manifests) ask for it.
        """
        if self._trace_fingerprints is None:
            self._trace_fingerprints = {
                key: (split.training.fingerprint(), split.simulation.fingerprint())
                for key, split in self.traces.items()
            }
        return self._trace_fingerprints

    def cell_run_spec(self, trace_key: str) -> RunSpec:
        """The fully-resolved spec cells of ``trace_key`` run (and key) under.

        The base spec with the key's cluster and event config folded in —
        the single object both :meth:`cache_key` and the execution paths
        derive from, so a cell can never be keyed under one configuration
        and simulated under another.
        """
        return self.spec.override(
            cluster=self._cell_cluster(trace_key),
            events=self._cell_events(trace_key),
        )

    def cache_key(self, cell: SweepCell) -> str:
        """Content hash identifying a cell's simulation output.

        Derived from the resolved spec's canonical serialization (see
        :meth:`RunSpec.cache_key_parts` for the exact — legacy-stable —
        part order).
        """
        fingerprints = self.trace_fingerprints()
        return self.cell_run_spec(cell.trace_key).cache_key(
            fingerprints[cell.trace_key], cell.spec, cell.seed
        )

    def _cell_cluster(self, trace_key: str) -> ClusterModel | None:
        """The cluster model a cell runs under (per-key over spec default)."""
        return self.clusters.get(trace_key, self.spec.cluster)

    def _cell_events(self, trace_key: str) -> EventConfig | None:
        """The event config a cell runs with (None off the event engines)."""
        if self.engine not in EVENT_ENGINES:
            return None
        return self.events.get(trace_key) or self.spec.events or EventConfig()

    # ------------------------------------------------------------------ #
    def run_cells(self, cells: Sequence[SweepCell]) -> Dict[str, SimulationResult]:
        """Execute ``cells`` and return ``{cell.name: result}``.

        Cached cells are loaded from disk; the rest run serially or across the
        process pool depending on ``workers``.  Results preserve the input
        cell order regardless of completion order.
        """
        names = [cell.name for cell in cells]
        if len(set(names)) != len(names):
            raise ValueError("cell names within a sweep must be unique")

        results: Dict[str, SimulationResult] = {}
        pending: list[SweepCell] = []
        for cell in cells:
            cached = self.cache.get(self.cache_key(cell)) if self.cache else None
            if cached is not None:
                results[cell.name] = cached
            else:
                pending.append(cell)

        if pending:
            # Sharding makes even a single pending cell pool-worthy: its
            # partitions are independent tasks that spread over the workers.
            if self.workers > 1 and (len(pending) > 1 or self.shards >= 2):
                computed = self._run_pool(pending)
            else:
                computed = {
                    cell.name: _execute_cell(
                        cell, self.traces, self.cell_run_spec(cell.trace_key)
                    )
                    for cell in pending
                }
            for cell in pending:
                result = computed[cell.name]
                results[cell.name] = result
                if self.cache:
                    self.cache.put(self.cache_key(cell), result)

        return {name: results[name] for name in names}

    def run_policies(
        self,
        specs: Mapping[str, PolicySpec],
        trace_key: str,
        base_seed: int = 0,
    ) -> Dict[str, SimulationResult]:
        """Convenience sweep: every spec against one trace split."""
        cells = [
            self.cell(name, spec, trace_key, base_seed) for name, spec in specs.items()
        ]
        return self.run_cells(cells)

    # ------------------------------------------------------------------ #
    def _shard_plan(self, cell: SweepCell) -> List[np.ndarray] | None:
        """Per-shard position arrays for a shardable cell, else ``None``.

        Building the policy here is construction only (no offline phase);
        it is needed to consult ``shard_safe``.  Fallback reasons are warned
        parent-side so they surface even when the cell then runs in a worker.
        """
        if self.shards < 2:
            return None
        split = self.traces[cell.trace_key]
        training = None if self.streaming else split.training
        reason = shard_fallback_reason(
            cell.spec.build(seed=cell.seed),
            self.engine,
            self._cell_cluster(cell.trace_key),
            self.shards,
            self.shard_placement,
            True,
            set(),
            split.simulation,
            training_trace=training,
            events=self._cell_events(cell.trace_key),
        )
        if reason is not None:
            warnings.warn(
                f"cell {cell.name!r}: sharded execution disabled ({reason}); "
                "running unsharded",
                ShardFallbackWarning,
                stacklevel=2,
            )
            return None
        assignment = shard_assignment(
            self.shards, split.simulation, self.shard_placement, training_trace=training
        )
        return [np.flatnonzero(assignment == shard) for shard in range(self.shards)]

    def _run_pool(self, cells: Iterable[SweepCell]) -> Dict[str, SimulationResult]:
        payload = pickle.dumps(self.traces, protocol=pickle.HIGHEST_PROTOCOL)
        computed: Dict[str, SimulationResult] = {}
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_worker_initializer,
            initargs=(payload,),
        ) as pool:
            whole_futures = []
            sharded: List[tuple[SweepCell, list]] = []
            for cell in cells:
                spec = self.cell_run_spec(cell.trace_key)
                plan = self._shard_plan(cell)
                if plan is None:
                    whole_futures.append(
                        pool.submit(_worker_run_cell, cell, spec)
                    )
                    continue
                # One pool task per non-empty partition: a single big cell
                # spreads over every worker instead of pinning one of them.
                sharded.append(
                    (
                        cell,
                        [
                            pool.submit(_worker_run_shard, cell, positions, spec)
                            if positions.size
                            else None
                            for positions in plan
                        ],
                    )
                )
            for future in whole_futures:
                name, result = future.result()
                computed[name] = result
            for cell, futures in sharded:
                computed[cell.name] = SimulationResult.merge_shards(
                    [f.result() if f is not None else None for f in futures],
                    cluster_model=self._cell_cluster(cell.trace_key),
                )
        return computed
