"""RQ6: how much latency do finite cores add, and which scheduler contains it?

RQ5 closed the provisioning feedback loop; this module asks the next
production question — once a warm instance no longer absorbs unlimited
concurrency, how badly do requests *slow down* while queueing for CPU, and
how much of that queueing a size-aware scheduler can claw back.  The event
engines' intra-node CPU stage (:mod:`repro.simulation.scheduling`) supplies
the measurements: per-invocation **slowdown** (sojourn over service time)
and **SLO-violation** counts against the scenario's ``slo_ms``.

The report sweeps each scenario once per ``(scheduler, cores)`` combination
on the ``event`` engine and pools latency across seeds with
:meth:`~repro.simulation.results.LatencyStats.merge`, producing one row per
``(scenario, policy, scheduler, cores)``: slowdown p50/p99 plus the SLO
violation rate.  The default grid pairs the convoy-prone ``fifo`` baseline
against ``srtf`` (the strongest size-aware discipline) on the two scenarios
built for the contrast — ``cpu-starved`` (raw contention) and
``long-duration-mix`` (bimodal service times, where fifo convoys are worst).

This module backs the ``spes-repro slowdown-rq`` CLI subcommand.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Mapping, Sequence, Tuple

from repro.experiments.runner import ExperimentConfig
from repro.experiments.suite import ExperimentSuite
from repro.metrics.summary import ComparisonTable
from repro.simulation import LatencyStats

__all__ = [
    "DEFAULT_RQ6_SCENARIOS",
    "DEFAULT_RQ6_POLICIES",
    "DEFAULT_RQ6_SCHEDULERS",
    "DEFAULT_RQ6_CORES",
    "slowdown_rq",
    "slowdown_rq_table",
]

#: The contention catalog: raw CPU starvation and the bimodal convoy shape.
DEFAULT_RQ6_SCENARIOS = ("cpu-starved", "long-duration-mix")

#: A keep-alive baseline against the paper's policy: provisioning quality
#: still matters (a cold start delays the CPU arrival), but under contention
#: the scheduler column should move the numbers more than the policy column.
DEFAULT_RQ6_POLICIES = ("fixed-10min-indexed", "spes-indexed")

#: Convoy-prone baseline vs. the strongest size-aware discipline.
DEFAULT_RQ6_SCHEDULERS = ("fifo", "srtf")

#: Core counts per node to sweep.
DEFAULT_RQ6_CORES = (2,)

#: Report keys: ``(policy, scheduler, cores)``.
CellKey = Tuple[str, str, int]


def slowdown_rq(
    scenarios: Sequence[str] = DEFAULT_RQ6_SCENARIOS,
    policies: Sequence[str] = DEFAULT_RQ6_POLICIES,
    schedulers: Sequence[str] = DEFAULT_RQ6_SCHEDULERS,
    cores: Sequence[int] = DEFAULT_RQ6_CORES,
    seeds: Sequence[int] = (2024,),
    config: ExperimentConfig | None = None,
    slo_ms: float | None = None,
    workers: int = 0,
    cache_dir: str | Path | None = None,
    scenario_params: Mapping[str, object] | None = None,
) -> Dict[str, Dict[CellKey, LatencyStats]]:
    """Run the per-scenario CPU-contention sweeps and pool across seeds.

    Returns ``{scenario: {(policy, scheduler, cores): merged LatencyStats}}``.
    Every sweep runs on the ``event`` engine with the suite-level
    ``cores``/``scheduler`` override, so the grid applies uniformly even to
    scenarios that prescribe their own CPU config; ``slo_ms=None`` keeps
    each scenario's own SLO.
    """
    config = config or ExperimentConfig()
    report: Dict[str, Dict[CellKey, LatencyStats]] = {}
    for scenario in scenarios:
        merged: Dict[CellKey, LatencyStats] = {}
        for scheduler in schedulers:
            for core_count in cores:
                suite = ExperimentSuite(
                    config=config,
                    seeds=seeds,
                    policies=policies,
                    workers=workers,
                    cache_dir=cache_dir,
                    scenario=scenario,
                    scenario_params=scenario_params,
                    engine="event",
                    cores=int(core_count),
                    scheduler=scheduler,
                    slo_ms=slo_ms,
                )
                outcome = suite.run()
                for policy in policies:
                    stats = outcome.merged_latency(policy)
                    if stats is not None:
                        merged[(policy, scheduler, int(core_count))] = stats
        report[scenario] = merged
    return report


def slowdown_rq_table(
    report: Mapping[str, Mapping[CellKey, LatencyStats]],
    title: str = "RQ6 - per-invocation slowdown under finite cores",
) -> ComparisonTable:
    """Tabulate a :func:`slowdown_rq` report.

    One row per ``(scenario, policy, scheduler, cores)``: pooled slowdown
    p50/p99, the 99th-percentile CPU wait, and the SLO violation rate.
    """
    table = ComparisonTable(
        title=title,
        columns=(
            "scenario",
            "policy",
            "scheduler",
            "cores",
            "events",
            "slowdown_p50",
            "slowdown_p99",
            "cpu_wait_p99_ms",
            "slo_viol_pct",
        ),
    )
    for scenario, cells in report.items():
        for (policy, scheduler, core_count), stats in cells.items():
            table.add_row(
                scenario=scenario,
                policy=policy,
                scheduler=scheduler,
                cores=float(core_count),
                events=float(stats.cpu_scheduled_events),
                slowdown_p50=stats.slowdown_p50,
                slowdown_p99=stats.slowdown_p99,
                cpu_wait_p99_ms=stats.cpu_wait_p99_ms,
                slo_viol_pct=100.0 * stats.slo_violation_rate,
            )
    return table
