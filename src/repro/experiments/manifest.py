"""Run manifests: record a sweep's exact configuration, replay it verified.

A manifest is a small JSON document capturing everything needed to repeat a
``spes-repro sweep`` bit-for-bit and to *prove* the repeat matched:

* the canonical :class:`~repro.simulation.spec.RunSpec` (and its digest) —
  the one validated object that shapes every simulation of the sweep;
* the workload recipe (scenario, parameters, sizes, seeds, policies) plus
  the suite-level CPU/SLO overlays;
* the content fingerprints of every seed's training/simulation trace;
* :data:`~repro.simulation.spec.ENGINE_VERSION`, because results are only
  comparable within one simulation-semantics version;
* the :meth:`~repro.simulation.results.SimulationResult
  .deterministic_fingerprint` of every ``(seed × policy)`` cell.

``sweep --manifest out.json`` records one; ``sweep --from-manifest
out.json`` rebuilds the suite from it, refuses to run if the engine version
or any trace fingerprint diverges, and verifies after the run that every
cell's result fingerprint is identical to the recorded one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Tuple

from repro.core import SpesConfig
from repro.experiments.runner import ExperimentConfig
from repro.experiments.suite import ExperimentSuite, SuiteResult
from repro.simulation.spec import ENGINE_VERSION, RunSpec, canonical_value

__all__ = [
    "MANIFEST_VERSION",
    "ManifestError",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "suite_from_manifest",
    "verify_trace_fingerprints",
    "verify_results",
    "replay_manifest",
]

#: Schema version of the manifest document itself (bumped on layout changes).
MANIFEST_VERSION = 1

#: RunSpec fields serialized into (and reconstructed from) a manifest.
_SPEC_FIELDS = (
    "engine",
    "streaming",
    "warmup_minutes",
    "shards",
    "shard_placement",
    "memory_mode",
)


class ManifestError(ValueError):
    """A manifest cannot be loaded, rebuilt, or verified against a run."""


def _jsonable(value: object) -> object:
    """JSON-safe rendering of one scenario-parameter value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def build_manifest(suite: ExperimentSuite, outcome: SuiteResult) -> Dict[str, object]:
    """The manifest document of one executed sweep.

    Call after :meth:`ExperimentSuite.run` so every cell of ``outcome`` can
    contribute its deterministic result fingerprint.
    """
    fingerprints = suite.parallel_runner().trace_fingerprints()
    results = {
        f"{suite.trace_key(seed)}/{policy}": result.deterministic_fingerprint()
        for seed, per_policy in outcome.results.items()
        for policy, result in per_policy.items()
    }
    return {
        "manifest_version": MANIFEST_VERSION,
        "engine_version": ENGINE_VERSION,
        "spec": suite.spec.canonical(),
        "spec_digest": suite.spec.spec_digest(),
        "workload": {
            "n_functions": suite.config.n_functions,
            "duration_days": suite.config.duration_days,
            "training_days": suite.config.training_days,
            "scenario": suite.scenario,
            "scenario_params": {
                name: _jsonable(value)
                for name, value in sorted(suite.scenario_params.items())
            },
            "placement": suite.placement,
            "cores": suite.cores,
            "scheduler": suite.scheduler,
            "slo_ms": suite.slo_ms,
            "spes_config": canonical_value(suite.config.spes_config),
        },
        "seeds": list(suite.seeds),
        "policies": list(suite.policies),
        "trace_fingerprints": {
            key: list(pair) for key, pair in sorted(fingerprints.items())
        },
        "results": dict(sorted(results.items())),
    }


def write_manifest(path: str | Path, manifest: Mapping[str, object]) -> Path:
    """Write ``manifest`` as stable (sorted-key) JSON; returns the path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return target


def load_manifest(path: str | Path) -> Dict[str, object]:
    """Load and vet a manifest: schema version and engine version must match.

    An engine-version mismatch is a hard error — the recorded fingerprints
    describe a different simulation semantics and can never verify.
    """
    source = Path(path)
    try:
        data = json.loads(source.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ManifestError(f"cannot read manifest {source}: {error}") from None
    if not isinstance(data, dict) or "manifest_version" not in data:
        raise ManifestError(f"{source} is not a run manifest (no manifest_version)")
    if data["manifest_version"] != MANIFEST_VERSION:
        raise ManifestError(
            f"manifest {source} has schema version {data['manifest_version']}; "
            f"this build reads version {MANIFEST_VERSION}"
        )
    recorded = data.get("engine_version")
    if recorded != ENGINE_VERSION:
        raise ManifestError(
            f"manifest {source} was recorded at engine version {recorded}, but "
            f"this build is engine version {ENGINE_VERSION}; simulation "
            "semantics changed between the two, so the recorded fingerprints "
            "cannot verify — re-record with `sweep --manifest`"
        )
    return data


def suite_from_manifest(
    manifest: Mapping[str, object],
    workers: int = 0,
    cache_dir: str | Path | None = None,
) -> ExperimentSuite:
    """Rebuild the recorded sweep as a ready-to-run :class:`ExperimentSuite`.

    ``workers`` and ``cache_dir`` are execution-host choices, not part of
    the recorded configuration (both are fingerprint-neutral), so the caller
    picks them fresh.
    """
    spec_doc = manifest["spec"]
    if not isinstance(spec_doc, Mapping):
        raise ManifestError("manifest field 'spec' must be an object")
    if spec_doc.get("cluster") is not None or spec_doc.get("events") is not None:
        # Suite-level specs never carry these: clusters/events are per-seed
        # workload products, re-derived from the scenario on replay.
        raise ManifestError(
            "manifest records a per-cell spec (cluster/events set); expected "
            "the suite's base spec"
        )
    try:
        spec = RunSpec(**{name: spec_doc[name] for name in _SPEC_FIELDS})
    except (KeyError, ValueError) as error:
        raise ManifestError(f"manifest spec is invalid: {error}") from None
    digest = manifest.get("spec_digest")
    if digest is not None and digest != spec.spec_digest():
        raise ManifestError(
            "manifest spec_digest does not match its spec fields — the "
            "manifest was edited or corrupted"
        )
    workload = manifest["workload"]
    if canonical_value(SpesConfig()) != workload.get(
        "spes_config", canonical_value(SpesConfig())
    ):
        raise ManifestError(
            "manifest records a non-default SPES configuration, which the "
            "replay cannot reconstruct from the CLI"
        )
    seeds = [int(seed) for seed in manifest["seeds"]]
    config = ExperimentConfig(
        n_functions=int(workload["n_functions"]),
        seed=seeds[0],
        duration_days=float(workload["duration_days"]),
        training_days=float(workload["training_days"]),
        warmup_minutes=spec.warmup_minutes,
    )
    return ExperimentSuite(
        config=config,
        seeds=seeds,
        policies=list(manifest["policies"]),
        workers=workers,
        cache_dir=cache_dir,
        scenario=workload["scenario"],
        scenario_params=dict(workload.get("scenario_params") or {}),
        placement=workload.get("placement"),
        cores=workload.get("cores"),
        scheduler=workload.get("scheduler"),
        slo_ms=workload.get("slo_ms"),
        spec=spec,
    )


def verify_trace_fingerprints(
    manifest: Mapping[str, object], suite: ExperimentSuite
) -> Dict[str, Tuple[str, str]]:
    """Check the rebuilt workloads against the recorded trace fingerprints.

    Runs *before* any simulation: a diverging workload (different dataset
    contents, generator change, altered scenario) can never reproduce the
    recorded results, so replay refuses early with the diverging keys.
    """
    recorded = {
        key: tuple(pair) for key, pair in manifest["trace_fingerprints"].items()
    }
    actual = suite.parallel_runner().trace_fingerprints()
    missing = sorted(set(recorded) ^ set(actual))
    if missing:
        raise ManifestError(
            f"trace keys differ between manifest and rebuilt suite: {missing}"
        )
    diverged = sorted(key for key in recorded if recorded[key] != actual[key])
    if diverged:
        raise ManifestError(
            "trace fingerprints diverge for "
            + ", ".join(diverged)
            + " — the rebuilt workload is not the recorded one (different "
            "dataset contents, generator, or scenario behaviour); refusing "
            "to replay"
        )
    return actual


def verify_results(
    manifest: Mapping[str, object], outcome: SuiteResult
) -> int:
    """Check a replay's per-cell result fingerprints; returns the cell count.

    Every recorded cell must be present and fingerprint-identical.  Extra
    cells in ``outcome`` are ignored (the manifest's cell set is the
    contract).
    """
    recorded = manifest["results"]
    actual = {
        f"seed{seed}/{policy}": result.deterministic_fingerprint()
        for seed, per_policy in outcome.results.items()
        for policy, result in per_policy.items()
    }
    missing = sorted(set(recorded) - set(actual))
    if missing:
        raise ManifestError(f"replay produced no result for cell(s): {missing}")
    diverged = sorted(name for name in recorded if recorded[name] != actual[name])
    if diverged:
        raise ManifestError(
            "result fingerprints diverge for "
            + ", ".join(diverged)
            + " — the replay is not bit-identical to the recorded run"
        )
    return len(recorded)


def replay_manifest(
    manifest: Mapping[str, object],
    workers: int = 0,
    cache_dir: str | Path | None = None,
) -> Tuple[ExperimentSuite, SuiteResult]:
    """Rebuild, verify, run, and verify again: the full replay pipeline."""
    suite = suite_from_manifest(manifest, workers=workers, cache_dir=cache_dir)
    verify_trace_fingerprints(manifest, suite)
    outcome = suite.run()
    verify_results(manifest, outcome)
    return suite, outcome
