"""Multi-seed experiment suite: the full policy comparison as one sweep.

:class:`ExperimentSuite` scales the paper's evaluation from "one workload,
one policy at a time" to "(policy × seed) cells fanned out over a process
pool".  It prepares one workload per seed (generated and split once, shipped
to the workers in pickled form by :class:`~repro.experiments.parallel
.ParallelRunner`), then runs the sweep in two stages:

1. every seed's SPES cell — these fix the FaaSCache capacity per seed
   (the paper sets it to SPES's peak memory usage on the same workload);
2. every remaining ``(baseline × seed)`` cell.

Within each stage all cells are independent, so the wall-clock of a full
RQ1/RQ2 sweep approaches ``serial time / workers`` plus the one-off workload
preparation.  Results are keyed ``{seed: {policy: SimulationResult}}`` and,
with a ``cache_dir``, persisted so repeated sweeps only simulate new cells.

This module is the engine behind the ``spes-repro sweep`` CLI subcommand.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Mapping, Sequence

from repro.experiments.parallel import (
    POLICY_REGISTRY,
    ParallelRunner,
    PolicySpec,
    default_policy_specs,
)
from repro.experiments.runner import ExperimentConfig
from repro.metrics.summary import ComparisonTable
from repro.simulation import EventConfig, LatencyStats, SimulationResult
from repro.simulation.spec import EVENT_ENGINES, RunSpec
from repro.traces import AzureTraceGenerator, TraceSplit, split_trace

__all__ = ["ExperimentSuite", "SuiteResult", "DEFAULT_SUITE_POLICIES"]

#: Policy names of the paper's comparison, in presentation order.
DEFAULT_SUITE_POLICIES = (
    "spes",
    "fixed-10min",
    "hybrid-function",
    "hybrid-application",
    "defuse",
    "faascache",
)


@dataclass
class SuiteResult:
    """Outcome of one suite sweep.

    Attributes
    ----------
    results:
        ``{seed: {policy: SimulationResult}}`` for every simulated cell.
    wall_seconds:
        End-to-end sweep duration (workload preparation included).
    workers:
        Worker processes the sweep ran with (0/1 = serial).
    cache_hits / cache_misses:
        On-disk cache statistics (both 0 when caching is disabled).
    """

    results: Dict[int, Dict[str, SimulationResult]] = field(default_factory=dict)
    wall_seconds: float = 0.0
    workers: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def seed_table(self, seed: int) -> ComparisonTable:
        """Headline metrics of every policy for one seed's workload.

        Capacity-constrained sweeps (scenario with a cluster model) get two
        extra columns: arbiter evictions and capacity-induced cold starts.
        Event-engine sweeps get the cold-start latency percentiles
        (p50/p95/p99 over latency-affected events).
        """
        capacity_run = any(
            result.cluster is not None for result in self.results[seed].values()
        )
        latency_run = any(
            result.latency is not None for result in self.results[seed].values()
        )
        cpu_run = any(
            result.latency is not None
            and getattr(result.latency, "cpu_scheduled_events", 0) > 0
            for result in self.results[seed].values()
        )
        slo_run = any(
            result.latency is not None
            and getattr(result.latency, "slo_checked_events", 0) > 0
            for result in self.results[seed].values()
        )
        mb_run = any(
            getattr(result, "memory_mode", "unit") == "mb"
            for result in self.results[seed].values()
        )
        columns = ["policy", "q3_csr", "always_cold_pct", "avg_memory", "wmt", "emcr_pct"]
        if mb_run:
            columns += ["avg_mb", "wmt_mb_min", "emcr_mb_pct"]
        if capacity_run:
            columns += ["evictions", "cap_cold_starts"]
        if latency_run:
            columns += ["lat_p50_ms", "lat_p95_ms", "lat_p99_ms"]
        if cpu_run:
            columns += ["slowdown_p50", "slowdown_p99"]
        if slo_run:
            columns += ["slo_viol_pct"]
        table = ComparisonTable(
            title=f"Policy suite (seed {seed})",
            columns=tuple(columns),
        )
        for name, result in self.results[seed].items():
            row = dict(
                policy=name,
                q3_csr=result.q3_cold_start_rate,
                always_cold_pct=100.0 * result.always_cold_fraction,
                avg_memory=result.average_memory_usage,
                wmt=float(result.total_wasted_memory_time),
                emcr_pct=100.0 * result.emcr,
            )
            if mb_run:
                row["avg_mb"] = result.average_memory_usage_mb
                row["wmt_mb_min"] = result.wasted_memory_mb_minutes
                row["emcr_mb_pct"] = 100.0 * getattr(result, "emcr_mb", 0.0)
            if capacity_run:
                cluster = result.cluster
                row["evictions"] = float(cluster.evictions) if cluster else 0.0
                row["cap_cold_starts"] = (
                    float(cluster.capacity_cold_starts) if cluster else 0.0
                )
            if latency_run:
                latency = result.latency
                row["lat_p50_ms"] = latency.p50_ms if latency else 0.0
                row["lat_p95_ms"] = latency.p95_ms if latency else 0.0
                row["lat_p99_ms"] = latency.p99_ms if latency else 0.0
            if cpu_run:
                latency = result.latency
                row["slowdown_p50"] = latency.slowdown_p50 if latency else 0.0
                row["slowdown_p99"] = latency.slowdown_p99 if latency else 0.0
            if slo_run:
                latency = result.latency
                row["slo_viol_pct"] = (
                    100.0 * latency.slo_violation_rate if latency else 0.0
                )
            table.add_row(**row)
        return table

    def latency_table(self, seed: int) -> ComparisonTable | None:
        """Cold-start latency distribution per policy, or ``None`` off the
        event engine."""
        rows = {
            name: result.latency
            for name, result in self.results[seed].items()
            if result.latency is not None
        }
        if not rows:
            return None
        cpu_run = any(
            getattr(latency, "cpu_scheduled_events", 0) > 0
            for latency in rows.values()
        )
        slo_run = any(
            getattr(latency, "slo_checked_events", 0) > 0
            for latency in rows.values()
        )
        columns = [
            "policy",
            "events",
            "cold_pct",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "max_ms",
        ]
        if cpu_run:
            columns += ["slowdown_p50", "slowdown_p99", "cpu_wait_p99_ms"]
        if slo_run:
            columns += ["slo_viol_pct"]
        table = ComparisonTable(
            title=f"Cold-start latency (seed {seed}; event engine)",
            columns=tuple(columns),
        )
        for name, latency in rows.items():
            row = dict(
                policy=name,
                events=float(latency.total_events),
                cold_pct=100.0 * latency.cold_event_fraction,
                p50_ms=latency.p50_ms,
                p95_ms=latency.p95_ms,
                p99_ms=latency.p99_ms,
                max_ms=latency.max_ms,
            )
            if cpu_run:
                row["slowdown_p50"] = latency.slowdown_p50
                row["slowdown_p99"] = latency.slowdown_p99
                row["cpu_wait_p99_ms"] = latency.cpu_wait_p99_ms
            if slo_run:
                row["slo_viol_pct"] = 100.0 * latency.slo_violation_rate
            table.add_row(**row)
        return table

    def merged_latency(self, policy: str) -> LatencyStats | None:
        """One policy's latency distribution pooled across every seed.

        Uses :meth:`LatencyStats.merge` (associative sample pooling), so the
        result is independent of seed order.  ``None`` off the event engine.
        """
        stats = [
            per_policy[policy].latency
            for per_policy in self.results.values()
            if policy in per_policy and per_policy[policy].latency is not None
        ]
        if not stats:
            return None
        return LatencyStats.merge(stats)

    def cluster_table(self, seed: int) -> ComparisonTable | None:
        """Capacity effects per policy, or ``None`` for uncapped sweeps."""
        rows = {
            name: result.cluster
            for name, result in self.results[seed].items()
            if result.cluster is not None
        }
        if not rows:
            return None
        first = next(iter(rows.values()))
        placement = getattr(first, "placement", "hash")
        unit = "MB" if getattr(first, "capacity_unit", "instances") == "mb" else "units"
        table = ComparisonTable(
            title=(
                f"Capacity effects (seed {seed}; cap {first.memory_capacity} {unit} "
                f"over {first.n_nodes} node(s); placement {placement})"
            ),
            columns=(
                "policy",
                "evictions",
                "cap_cold_starts",
                "migrations",
                "mean_util_pct",
                "imbalance",
                "peak_node_usage",
            ),
        )
        for name, cluster in rows.items():
            table.add_row(
                policy=name,
                evictions=float(cluster.evictions),
                cap_cold_starts=float(cluster.capacity_cold_starts),
                migrations=float(getattr(cluster, "migrations", 0)),
                mean_util_pct=100.0 * float(cluster.mean_node_utilization.mean()),
                imbalance=float(getattr(cluster, "load_imbalance", 0.0)),
                peak_node_usage=float(cluster.peak_node_usage),
            )
        return table

    def aggregate_table(self) -> ComparisonTable:
        """Mean (and spread) of each policy's Q3-CSR and memory across seeds."""
        table = ComparisonTable(
            title=f"Policy suite aggregated over {len(self.results)} seed(s)",
            columns=("policy", "mean_q3_csr", "stdev_q3_csr", "mean_avg_memory", "mean_emcr_pct"),
        )
        policies: list[str] = []
        for per_policy in self.results.values():
            for name in per_policy:
                if name not in policies:
                    policies.append(name)
        for name in policies:
            q3 = [r[name].q3_cold_start_rate for r in self.results.values() if name in r]
            memory = [r[name].average_memory_usage for r in self.results.values() if name in r]
            emcr = [r[name].emcr for r in self.results.values() if name in r]
            table.add_row(
                policy=name,
                mean_q3_csr=statistics.fmean(q3),
                stdev_q3_csr=statistics.stdev(q3) if len(q3) > 1 else 0.0,
                mean_avg_memory=statistics.fmean(memory),
                mean_emcr_pct=100.0 * statistics.fmean(emcr),
            )
        return table


class ExperimentSuite:
    """Runs the policy comparison over several seeds with shared machinery.

    Parameters
    ----------
    config:
        Base experiment configuration; its ``seed`` field is overridden by
        each entry of ``seeds``.
    seeds:
        Workload seeds to sweep.  Each seed yields an independent synthetic
        workload, so multiple seeds quantify the variance of every headline
        metric.
    policies:
        Policy names to simulate (see
        :data:`~repro.experiments.parallel.POLICY_REGISTRY` and
        :data:`DEFAULT_SUITE_POLICIES`).  ``"faascache"`` requires ``"spes"``
        to also be listed, since its capacity is derived from SPES's peak
        memory usage on the same workload.
    workers:
        Worker processes for the fan-out (0/1 = serial).
    cache_dir:
        Optional on-disk result cache shared across sweeps.
    scenario:
        Optional name from :data:`repro.scenarios.SCENARIO_REGISTRY`.  Each
        seed's workload is then built by the scenario instead of the plain
        synthetic generator, and a scenario-prescribed cluster model (e.g.
        ``capacity-squeeze``) puts every cell into capacity-constrained mode.
    scenario_params:
        Overrides for the scenario's parameters (see each scenario's
        ``defaults``).
    placement:
        Optional placement-strategy override (a name from
        :data:`repro.simulation.placement.PLACEMENT_REGISTRY`) applied to
        the scenario-prescribed cluster model of every seed's workload.
        Requires a scenario that actually prescribes a cluster (e.g.
        ``capacity-squeeze`` or ``hot-shard``); ``None`` keeps each
        scenario's own configuration (the ``hash`` default).
    engine:
        Engine implementation every cell runs on.  ``"event"`` turns cold
        starts into latency distributions: each seed's workload gets an
        :class:`~repro.simulation.events.EventConfig` (the scenario's when a
        scenario is set, defaults keyed to the seed otherwise) and the
        result tables grow p50/p95/p99 cold-start latency columns.
        ``"event-feedback"`` additionally streams the rolling latency window
        into every policy's ``on_feedback`` hook between minutes — a no-op
        for the classic policies, the adaptation signal for latency-aware
        ones.
    streaming:
        When True, the sweep runs in streaming evaluation mode: policies
        receive *zero* training window (no offline phase input, no warm-up
        replay) and must adapt online, from inside the simulation window.
        This is the evaluation regime the continuous-drift scenarios
        (``rotating-periods``, ``load-ramp``, ``seasonal-mix``) are designed
        for — an offline histogram trained on a window that no longer
        describes the traffic is exactly what streaming mode takes away.
    shards:
        When >= 2, shardable cells run as function partitions (merged back
        into one result per cell; see
        :mod:`repro.simulation.sharding`) — with ``workers > 1`` every
        partition is its own pool task.  Cells that cannot shard fall back
        to whole-cell execution with a warning.
    shard_placement:
        Placement strategy deriving the function→shard partition.
    cores:
        Optional per-node core count: enables the event engines' intra-node
        CPU stage (see :class:`~repro.simulation.scheduling.CpuConfig`),
        overriding any scenario-prescribed CPU config.  Requires an event
        engine.
    scheduler:
        CPU scheduler name (``fifo``/``rr``/``srtf``/``las``) for the core
        pool; requires ``cores``.
    slo_ms:
        Optional sojourn-time SLO in milliseconds, checked per event (see
        :attr:`~repro.simulation.events.EventConfig.slo_ms`); overrides any
        scenario-prescribed SLO.  Requires an event engine.
    memory_mode:
        Memory accounting mode for every cell (``"unit"`` default; ``"mb"``
        weighs loaded instances by measured footprints and adds MB columns
        to the result tables).  Requires a mask-based engine.
    """

    def __init__(
        self,
        config: ExperimentConfig | None = None,
        seeds: Sequence[int] | None = None,
        policies: Sequence[str] = DEFAULT_SUITE_POLICIES,
        workers: int = 0,
        cache_dir: str | Path | None = None,
        scenario: str | None = None,
        scenario_params: Mapping[str, object] | None = None,
        placement: str | None = None,
        engine: str | None = None,
        streaming: bool | None = None,
        shards: int | None = None,
        shard_placement: str | None = None,
        cores: int | None = None,
        scheduler: str | None = None,
        slo_ms: float | None = None,
        memory_mode: str | None = None,
        spec: RunSpec | None = None,
    ) -> None:
        self.config = config or ExperimentConfig()
        if spec is None:
            # Back-compat shim: the classic keywords build the spec, whose
            # constructor runs the one shared validate() — so the suite, the
            # runner and the simulator reject an invalid configuration with
            # the identical message.  The warm-up horizon comes from the
            # experiment configuration, as it always has for suite sweeps.
            spec = RunSpec.build(
                engine=engine,
                streaming=streaming,
                warmup_minutes=self.config.warmup_minutes,
                shards=shards,
                shard_placement=shard_placement,
                memory_mode=memory_mode,
            )
        elif any(
            value is not None
            for value in (engine, streaming, shards, shard_placement, memory_mode)
        ):
            raise ValueError(
                "pass either spec= or the individual run knobs, not both"
            )
        else:
            spec.validate()
        self.spec = spec
        # Attribute shims: long-standing public names, now views on the spec.
        self.engine = spec.engine
        self.memory_mode = spec.memory_mode
        self.streaming = spec.streaming
        self.shards = spec.shards
        self.shard_placement = spec.shard_placement
        # The CPU/SLO knobs stay suite-level: they are per-seed *overlays*
        # folded into each workload's EventConfig, not run-shape fields.
        if (cores is not None or scheduler is not None or slo_ms is not None) and (
            self.engine not in EVENT_ENGINES
        ):
            raise ValueError(
                "cores/scheduler/slo_ms configure the event layer's CPU stage "
                f"and require an event engine, not {self.engine!r}"
            )
        if scheduler is not None and cores is None:
            raise ValueError("scheduler requires cores (the pool it schedules)")
        if cores is not None:
            # Validates cores >= 1 and the scheduler name eagerly.
            from repro.simulation.scheduling import CpuConfig

            CpuConfig(cores_per_node=cores, scheduler=scheduler or "fifo")
        self.cores = cores
        self.scheduler = scheduler
        self.slo_ms = slo_ms
        # Deduplicate while preserving order: a repeated seed is the same
        # workload and would otherwise produce colliding sweep cells.
        self.seeds = tuple(dict.fromkeys(seeds)) if seeds else (self.config.seed,)
        self.policies = tuple(policies)
        if "faascache" in self.policies and "spes" not in self.policies:
            raise ValueError("the faascache policy requires spes in the suite")
        self.workers = workers
        self.cache_dir = cache_dir
        self.scenario = scenario
        self.scenario_params = dict(scenario_params or {})
        if scenario is not None:
            # Fail fast on unknown names/parameters, before any workload is built.
            from repro.scenarios import get_scenario

            registered = get_scenario(scenario)
            unknown = set(self.scenario_params) - set(registered.defaults)
            if unknown:
                raise KeyError(
                    f"unknown parameter(s) {sorted(unknown)} for scenario "
                    f"{scenario!r}; accepted: {sorted(registered.defaults)}"
                )
        elif self.scenario_params:
            raise ValueError("scenario_params requires a scenario")
        self.placement = placement
        if placement is not None:
            from repro.simulation.placement import placement_names

            if placement not in placement_names():
                raise ValueError(
                    f"unknown placement {placement!r}; registered: "
                    f"{placement_names()}"
                )
            if scenario is None:
                raise ValueError(
                    "placement requires a scenario that prescribes a cluster "
                    "(e.g. capacity-squeeze, hot-shard)"
                )
        self._traces: Dict[str, TraceSplit] | None = None
        self._clusters: Dict[str, object] = {}
        self._events: Dict[str, EventConfig] = {}
        self._runner: ParallelRunner | None = None

    # ------------------------------------------------------------------ #
    @staticmethod
    def trace_key(seed: int) -> str:
        """Trace-mapping key of one seed's workload."""
        return f"seed{seed}"

    def seed_config(self, seed: int) -> ExperimentConfig:
        """The base configuration with its workload seed replaced."""
        return replace(self.config, seed=seed)

    def traces(self) -> Dict[str, TraceSplit]:
        """Per-seed train/simulation splits (each workload generated once).

        With a scenario, workloads (and any cluster model) come from the
        scenario registry; otherwise from the plain synthetic generator.
        """
        if self._traces is None:
            self._traces = {}
            for seed in self.seeds:
                config = self.seed_config(seed)
                key = self.trace_key(seed)
                if self.scenario is not None:
                    from repro.scenarios import build_scenario

                    workload = build_scenario(
                        self.scenario,
                        seed=seed,
                        n_functions=config.n_functions,
                        days=config.duration_days,
                        training_days=config.training_days,
                        **self.scenario_params,
                    )
                    self._traces[key] = workload.split
                    cluster = workload.cluster
                    if self.placement is not None:
                        if cluster is None:
                            raise ValueError(
                                f"scenario {self.scenario!r} prescribes no "
                                "cluster; placement requires a cluster "
                                "scenario (e.g. capacity-squeeze, hot-shard)"
                            )
                        cluster = replace(cluster, placement=self.placement)
                    if cluster is not None:
                        self._clusters[key] = cluster
                    self._events[key] = workload.events
                else:
                    trace = AzureTraceGenerator(config.generator_profile()).generate()
                    self._traces[key] = split_trace(
                        trace, training_days=config.training_days
                    )
                    self._events[key] = EventConfig(seed=seed)
                self._events[key] = self._apply_cpu_overrides(self._events[key])
        return self._traces

    def _apply_cpu_overrides(self, events: EventConfig) -> EventConfig:
        """Overlay the suite-level CPU/SLO knobs on one seed's event config.

        ``cores``/``scheduler`` replace any scenario-prescribed
        :class:`~repro.simulation.scheduling.CpuConfig`; ``slo_ms`` replaces
        the scenario's SLO.  Knobs left at ``None`` keep whatever the
        scenario (or the plain default) prescribes.
        """
        if self.cores is None and self.slo_ms is None:
            return events
        from repro.simulation.scheduling import CpuConfig

        overrides: Dict[str, object] = {}
        if self.cores is not None:
            overrides["cpu"] = CpuConfig(
                cores_per_node=self.cores, scheduler=self.scheduler or "fifo"
            )
        if self.slo_ms is not None:
            overrides["slo_ms"] = self.slo_ms
        return replace(events, **overrides)

    def parallel_runner(self) -> ParallelRunner:
        """The shared :class:`ParallelRunner` over every seed's split."""
        if self._runner is None:
            traces = self.traces()  # also populates the cluster mapping
            self._runner = ParallelRunner(
                traces=traces,
                workers=self.workers,
                cache_dir=self.cache_dir,
                clusters=self._clusters or None,
                events=self._events if self.engine in EVENT_ENGINES else None,
                spec=self.spec,
            )
        return self._runner

    # ------------------------------------------------------------------ #
    def run(self) -> SuiteResult:
        """Execute the full (policy × seed) sweep and collect the results."""
        started = time.perf_counter()
        runner = self.parallel_runner()
        # Snapshot the cache counters so a reused suite reports per-sweep
        # statistics rather than the runner's lifetime totals.
        hits_before = runner.cache.hits if runner.cache else 0
        misses_before = runner.cache.misses if runner.cache else 0

        results: Dict[int, Dict[str, SimulationResult]] = {seed: {} for seed in self.seeds}

        # Stage 1: SPES on every seed (fixes the per-seed FaaSCache capacity).
        if "spes" in self.policies:
            spes_cells = [
                runner.cell(
                    f"{self.trace_key(seed)}/spes",
                    PolicySpec.of("spes", config=self.config.spes_config),
                    self.trace_key(seed),
                    base_seed=seed,
                )
                for seed in self.seeds
            ]
            for seed, (_, result) in zip(self.seeds, runner.run_cells(spes_cells).items()):
                results[seed]["spes"] = result

        # Stage 2: every remaining (policy × seed) cell in one fan-out.
        cells = []
        for seed in self.seeds:
            specs = self._baseline_specs(seed, results[seed].get("spes"))
            for name, spec in specs.items():
                cells.append(
                    runner.cell(
                        f"{self.trace_key(seed)}/{name}",
                        spec,
                        self.trace_key(seed),
                        base_seed=seed,
                    )
                )
        for cell_name, result in runner.run_cells(cells).items():
            trace_key, policy_name = cell_name.split("/", 1)
            seed = int(trace_key.removeprefix("seed"))
            results[seed][policy_name] = result

        # Present policies in the requested order.
        ordered = {
            seed: {
                name: results[seed][name]
                for name in self.policies
                if name in results[seed]
            }
            for seed in self.seeds
        }
        return SuiteResult(
            results=ordered,
            wall_seconds=time.perf_counter() - started,
            workers=self.workers,
            cache_hits=(runner.cache.hits - hits_before) if runner.cache else 0,
            cache_misses=(runner.cache.misses - misses_before) if runner.cache else 0,
        )

    # ------------------------------------------------------------------ #
    def static_cache_keys(self) -> tuple[Dict[str, str], tuple[str, ...]]:
        """Cache keys of every cell derivable without simulating anything.

        Returns ``(keys, skipped)``: ``keys`` maps each ``seedN/policy``
        cell name to the on-disk cache key its result would be stored
        under, and ``skipped`` lists the policies whose keys cannot be
        known statically — FaaSCache's capacity is derived from the
        same-seed SPES *result*, so its key depends on a simulation
        output.  Workloads are built (to fingerprint the traces) but no
        cell is executed.
        """
        runner = self.parallel_runner()
        keys: Dict[str, str] = {}
        skipped = tuple(name for name in self.policies if name == "faascache")
        for seed in self.seeds:
            trace_key = self.trace_key(seed)
            baselines = self._baseline_specs(seed, None)
            for name in self.policies:
                if name in skipped:
                    continue
                spec = (
                    PolicySpec.of("spes", config=self.config.spes_config)
                    if name == "spes"
                    else baselines[name]
                )
                cell = runner.cell(f"{trace_key}/{name}", spec, trace_key, base_seed=seed)
                keys[cell.name] = runner.cache_key(cell)
        return keys, skipped

    # ------------------------------------------------------------------ #
    def _baseline_specs(
        self, seed: int, spes_result: SimulationResult | None
    ) -> Mapping[str, PolicySpec]:
        """Specs for every non-SPES policy requested for ``seed``."""
        capacity = (
            max(1, int(spes_result.peak_memory_usage)) if spes_result is not None else None
        )
        available = default_policy_specs(include_lcs=True, faascache_capacity=capacity)
        available["no-keepalive"] = PolicySpec.of("no-keepalive")
        available["always-warm"] = PolicySpec.of("always-warm")
        specs = {}
        for name in self.policies:
            if name == "spes":
                continue
            if name in available:
                specs[name] = available[name]
                continue
            # Any other registered policy is accepted with its factory
            # defaults, so the CLI's --policies flag honours the registry.
            try:
                specs[name] = PolicySpec.of(name)
            except KeyError:
                raise KeyError(
                    f"unknown suite policy {name!r}; available: "
                    f"{sorted({*available, *POLICY_REGISTRY, 'spes'})}"
                ) from None
        return specs
