"""End-to-end experiment harness reproducing the paper's evaluation (§V).

:class:`ExperimentRunner` owns the workload (synthetic Azure-like trace or a
loaded real trace), the train/simulation split and the policy suite; the
``rq1``-``rq4`` modules turn simulation results into the numbers behind each
figure of the paper.
"""

from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.experiments import rq1_coldstart, rq2_memory, rq3_tradeoff, rq4_ablation

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "rq1_coldstart",
    "rq2_memory",
    "rq3_tradeoff",
    "rq4_ablation",
]
