"""End-to-end experiment harness reproducing the paper's evaluation (§V).

Layout
------
:class:`ExperimentRunner` (``runner``)
    Owns one workload (synthetic Azure-like trace or a loaded real trace),
    its train/simulation split and the policy suite, memoizing one result
    per policy.  Constructed with ``workers > 1`` it fans independent
    simulations out over a process pool.
:mod:`~repro.experiments.parallel`
    The fan-out machinery: :class:`PolicySpec` (picklable policy
    descriptions resolved against :data:`POLICY_REGISTRY`),
    :class:`SweepCell`, the on-disk :class:`ResultCache` and
    :class:`ParallelRunner` itself.
:class:`ExperimentSuite` (``suite``)
    Multi-seed orchestration of the full policy comparison — the engine
    behind the ``spes-repro sweep`` CLI subcommand.
``rq1_coldstart`` … ``rq4_ablation``
    Turn simulation results into the numbers behind each figure of the
    paper.  The RQ3 sweeps and RQ4 ablations batch their variant runs
    through :meth:`ExperimentRunner.run_spes_variants`, so they too
    parallelize when the runner has workers.
``manifest``
    Run manifests: record a sweep's canonical run spec, trace fingerprints
    and per-cell result fingerprints as JSON, then replay it later with
    bit-identical verification (``sweep --manifest`` / ``--from-manifest``).
``results``
    :func:`generate_results` — runs every RQ over one workload source (the
    hermetic azure2019 fixture by default, the real dataset with
    ``azure_dir=``) and renders the consolidated markdown results book
    committed as ``docs/RESULTS.md`` (the ``spes-repro results`` command).

Typical use::

    from repro.experiments import ExperimentConfig, ExperimentRunner

    runner = ExperimentRunner(ExperimentConfig(n_functions=400), workers=4)
    results = runner.run_all()          # {"spes": ..., "fixed-10min": ..., ...}

or, for several seeds at once::

    from repro.experiments import ExperimentSuite

    suite = ExperimentSuite(seeds=[2024, 2025, 2026], workers=4)
    outcome = suite.run()
    print(outcome.aggregate_table().render())
"""

from repro.experiments.manifest import (
    MANIFEST_VERSION,
    ManifestError,
    build_manifest,
    load_manifest,
    replay_manifest,
    suite_from_manifest,
    verify_results,
    verify_trace_fingerprints,
    write_manifest,
)
from repro.experiments.parallel import (
    POLICY_REGISTRY,
    ParallelRunner,
    PolicySpec,
    ResultCache,
    SweepCell,
    default_policy_specs,
    register_policy,
)
from repro.experiments.results import ResultsConfig, generate_results, write_results
from repro.experiments.runner import ExperimentConfig, ExperimentRunner
from repro.experiments.suite import DEFAULT_SUITE_POLICIES, ExperimentSuite, SuiteResult
from repro.experiments import (
    rq1_coldstart,
    rq2_memory,
    rq3_tradeoff,
    rq4_ablation,
    rq5_latency,
    rq6_slowdown,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "ExperimentSuite",
    "SuiteResult",
    "DEFAULT_SUITE_POLICIES",
    "ParallelRunner",
    "PolicySpec",
    "SweepCell",
    "ResultCache",
    "POLICY_REGISTRY",
    "default_policy_specs",
    "register_policy",
    "ResultsConfig",
    "generate_results",
    "write_results",
    "MANIFEST_VERSION",
    "ManifestError",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "suite_from_manifest",
    "verify_trace_fingerprints",
    "verify_results",
    "replay_manifest",
    "rq1_coldstart",
    "rq2_memory",
    "rq3_tradeoff",
    "rq4_ablation",
    "rq5_latency",
    "rq6_slowdown",
]
