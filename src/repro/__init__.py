"""SPES reproduction: differentiated serverless function provisioning.

This library reproduces *SPES: Towards Optimizing Performance-Resource
Trade-Off for Serverless Functions* (ICDE 2024): a rule-based scheduler that
categorizes serverless functions by their invocation patterns and pre-loads /
evicts instances to minimize both cold starts and wasted memory.

Quick start
-----------
>>> from repro import AzureTraceGenerator, GeneratorProfile, SpesPolicy
>>> from repro import simulate_policy, split_trace
>>> trace = AzureTraceGenerator(GeneratorProfile.small(seed=1)).generate()
>>> split = split_trace(trace, training_days=2.0)
>>> result = simulate_policy(SpesPolicy(), split.simulation, split.training)
>>> round(result.overall_cold_start_rate, 4) <= 1.0
True
"""

from repro.core import SpesConfig, SpesPolicy
from repro.core.categories import FunctionCategory
from repro.simulation import SimulationResult, Simulator, simulate_policy
from repro.traces import (
    AzureTraceGenerator,
    FunctionRecord,
    GeneratorProfile,
    Trace,
    TriggerType,
    load_azure_invocation_csv,
    split_trace,
)
from repro.experiments import ExperimentConfig, ExperimentRunner

__version__ = "1.0.0"

__all__ = [
    "SpesConfig",
    "SpesPolicy",
    "FunctionCategory",
    "Simulator",
    "SimulationResult",
    "simulate_policy",
    "Trace",
    "TriggerType",
    "FunctionRecord",
    "AzureTraceGenerator",
    "GeneratorProfile",
    "load_azure_invocation_csv",
    "split_trace",
    "ExperimentConfig",
    "ExperimentRunner",
    "__version__",
]
