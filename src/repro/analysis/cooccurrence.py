"""Co-occurrence rate study (§III-B2).

For every function that shares an application or owner with at least one
other function ("candidate" pairs), the study compares its mean co-occurrence
rate with candidates against its mean COR with negatively sampled functions
that share neither an application nor an owner.  The paper reports a ~4.6x
gap (0.2312 vs 0.0504) and a further gap between same-trigger and
different-trigger candidates (0.2710 vs 0.1307).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.correlation import co_occurrence_rate
from repro.traces.trace import Trace


@dataclass
class CooccurrenceReport:
    """Mean co-occurrence rates for candidate and negative-sample pairs.

    Attributes
    ----------
    candidate_cor:
        Mean COR between functions sharing an application or owner.
    negative_cor:
        Mean COR against randomly sampled unrelated functions.
    same_trigger_cor:
        Mean COR restricted to candidate pairs sharing the trigger type.
    different_trigger_cor:
        Mean COR restricted to candidate pairs with different trigger types.
    pairs_evaluated:
        Number of candidate pairs contributing to the averages.
    """

    candidate_cor: float
    negative_cor: float
    same_trigger_cor: float
    different_trigger_cor: float
    pairs_evaluated: int

    @property
    def candidate_to_negative_ratio(self) -> float:
        """How many times larger the candidate COR is than the negative-sample COR."""
        if self.negative_cor == 0:
            return float("inf") if self.candidate_cor > 0 else 0.0
        return self.candidate_cor / self.negative_cor


def cooccurrence_study(
    trace: Trace,
    negative_samples_per_function: int = 50,
    max_functions: int | None = 500,
    min_invocations: int = 5,
    seed: int = 0,
) -> CooccurrenceReport:
    """Run the §III-B2 co-occurrence study on ``trace``.

    Parameters
    ----------
    trace:
        Trace to analyse.
    negative_samples_per_function:
        Number of unrelated functions sampled per target (50 in the paper).
    max_functions:
        Optional cap on the number of target functions, to keep the study
        tractable on large traces; targets are the most-invoked eligible
        functions.
    min_invocations:
        Minimum invoked minutes for a function to participate.
    seed:
        Seed for the negative sampling.
    """
    rng = np.random.default_rng(seed)
    records = {record.function_id: record for record in trace.records()}

    eligible = [
        function_id
        for function_id in trace.function_ids
        if int((trace.series(function_id) > 0).sum()) >= min_invocations
    ]
    if max_functions is not None and len(eligible) > max_functions:
        eligible = sorted(
            eligible, key=lambda fid: trace.total_invocations(fid), reverse=True
        )[:max_functions]
    eligible_set = set(eligible)

    by_app = trace.functions_by_app()
    by_owner = trace.functions_by_owner()

    candidate_values: List[float] = []
    negative_values: List[float] = []
    same_trigger_values: List[float] = []
    different_trigger_values: List[float] = []
    pairs = 0

    all_ids = list(trace.function_ids)
    for target_id in eligible:
        target_record = records[target_id]
        related = set(by_app.get(target_record.app_id, ()))
        related.update(by_owner.get(target_record.owner_id, ()))
        related.discard(target_id)
        candidates = [fid for fid in related if fid in eligible_set]
        if not candidates:
            continue

        target_series = trace.series(target_id)
        for candidate_id in candidates:
            value = co_occurrence_rate(target_series, trace.series(candidate_id))
            candidate_values.append(value)
            if records[candidate_id].trigger == target_record.trigger:
                same_trigger_values.append(value)
            else:
                different_trigger_values.append(value)
            pairs += 1

        unrelated_pool = [fid for fid in all_ids if fid not in related and fid != target_id]
        if unrelated_pool:
            sample_size = min(negative_samples_per_function, len(unrelated_pool))
            sampled = rng.choice(unrelated_pool, size=sample_size, replace=False)
            for negative_id in sampled:
                negative_values.append(
                    co_occurrence_rate(target_series, trace.series(str(negative_id)))
                )

    def mean_or_zero(values: List[float]) -> float:
        return float(np.mean(values)) if values else 0.0

    return CooccurrenceReport(
        candidate_cor=mean_or_zero(candidate_values),
        negative_cor=mean_or_zero(negative_values),
        same_trigger_cor=mean_or_zero(same_trigger_values),
        different_trigger_cor=mean_or_zero(different_trigger_values),
        pairs_evaluated=pairs,
    )
