"""Co-occurrence rate study (§III-B2).

For every function that shares an application or owner with at least one
other function ("candidate" pairs), the study compares its mean co-occurrence
rate with candidates against its mean COR with negatively sampled functions
that share neither an application nor an owner.  The paper reports a ~4.6x
gap (0.2312 vs 0.0504) and a further gap between same-trigger and
different-trigger candidates (0.2710 vs 0.1307).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.correlation import co_occurrence_rate
from repro.traces.trace import Trace


@dataclass
class CooccurrenceReport:
    """Mean co-occurrence rates for candidate and negative-sample pairs.

    Attributes
    ----------
    candidate_cor:
        Mean COR between functions sharing an application or owner.
    negative_cor:
        Mean COR against randomly sampled unrelated functions.
    same_trigger_cor:
        Mean COR restricted to candidate pairs sharing the trigger type.
    different_trigger_cor:
        Mean COR restricted to candidate pairs with different trigger types.
    pairs_evaluated:
        Number of candidate pairs contributing to the averages.
    """

    candidate_cor: float
    negative_cor: float
    same_trigger_cor: float
    different_trigger_cor: float
    pairs_evaluated: int

    @property
    def candidate_to_negative_ratio(self) -> float:
        """How many times larger the candidate COR is than the negative-sample COR."""
        if self.negative_cor == 0:
            return float("inf") if self.candidate_cor > 0 else 0.0
        return self.candidate_cor / self.negative_cor


def correlated_groups(
    trace: Trace,
    min_cor: float = 0.5,
    min_invocations: int = 2,
) -> List[List[str]]:
    """Groups of functions whose invocations fire together (§III-B2 signal).

    Candidate pairs are functions sharing an application or owner — the
    relation the co-occurrence study shows carries a ~4.6x COR gap over
    unrelated pairs.  A pair joins a group when the co-occurrence rate in
    *either* direction reaches ``min_cor``; groups are the connected
    components of the resulting pair graph, so transitively correlated
    functions land in one group.

    The output is deterministic in the trace: groups are ordered by their
    first member's position in ``trace.function_ids`` and members are listed
    in that same trace order.  This is the signal the ``correlation-aware``
    placement strategy co-locates by, so determinism here is what keeps
    placed simulations cacheable and fingerprint-stable.

    Parameters
    ----------
    trace:
        Trace supplying both the grouping metadata and the series the CORs
        are measured on (placement uses the *training* window: no oracle
        knowledge of the simulated traffic).
    min_cor:
        Minimum co-occurrence rate for a pair to be linked.
    min_invocations:
        Minimum invoked minutes for a function to participate at all.
    """
    order = {fid: position for position, fid in enumerate(trace.function_ids)}
    series_cache: dict[str, np.ndarray] = {}

    def series(function_id: str) -> np.ndarray:
        cached = series_cache.get(function_id)
        if cached is None:
            cached = np.asarray(trace.series(function_id))
            series_cache[function_id] = cached
        return cached

    eligible = [
        fid
        for fid in trace.function_ids
        if int((series(fid) > 0).sum()) >= min_invocations
    ]
    eligible_set = set(eligible)

    # Union-find over candidate pairs that clear the COR bar.
    parent: dict[str, str] = {fid: fid for fid in eligible}

    def find(fid: str) -> str:
        while parent[fid] != fid:
            parent[fid] = parent[parent[fid]]
            fid = parent[fid]
        return fid

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            # Deterministic root: the earlier trace position wins.
            if order[ra] <= order[rb]:
                parent[rb] = ra
            else:
                parent[ra] = rb

    # Pairs sharing both an app and an owner appear in both groupings; the
    # seen set keeps each pair's COR from being measured twice.
    seen_pairs: set[tuple[str, str]] = set()
    for grouping in (trace.functions_by_app(), trace.functions_by_owner()):
        for members in grouping.values():
            members = [fid for fid in members if fid in eligible_set]
            if len(members) < 2:
                continue
            members.sort(key=order.__getitem__)
            for i, target_id in enumerate(members):
                target_series = series(target_id)
                for candidate_id in members[i + 1 :]:
                    pair = (target_id, candidate_id)
                    if pair in seen_pairs or find(target_id) == find(candidate_id):
                        continue
                    seen_pairs.add(pair)
                    forward = co_occurrence_rate(target_series, series(candidate_id))
                    backward = co_occurrence_rate(series(candidate_id), target_series)
                    if max(forward, backward) >= min_cor:
                        union(target_id, candidate_id)

    components: dict[str, List[str]] = {}
    for fid in eligible:
        components.setdefault(find(fid), []).append(fid)
    groups = [sorted(members, key=order.__getitem__) for members in components.values()]
    groups = [members for members in groups if len(members) >= 2]
    groups.sort(key=lambda members: order[members[0]])
    return groups


def cooccurrence_study(
    trace: Trace,
    negative_samples_per_function: int = 50,
    max_functions: int | None = 500,
    min_invocations: int = 5,
    seed: int = 0,
) -> CooccurrenceReport:
    """Run the §III-B2 co-occurrence study on ``trace``.

    Parameters
    ----------
    trace:
        Trace to analyse.
    negative_samples_per_function:
        Number of unrelated functions sampled per target (50 in the paper).
    max_functions:
        Optional cap on the number of target functions, to keep the study
        tractable on large traces; targets are the most-invoked eligible
        functions.
    min_invocations:
        Minimum invoked minutes for a function to participate.
    seed:
        Seed for the negative sampling.
    """
    rng = np.random.default_rng(seed)
    records = {record.function_id: record for record in trace.records()}

    eligible = [
        function_id
        for function_id in trace.function_ids
        if int((trace.series(function_id) > 0).sum()) >= min_invocations
    ]
    if max_functions is not None and len(eligible) > max_functions:
        eligible = sorted(
            eligible, key=lambda fid: trace.total_invocations(fid), reverse=True
        )[:max_functions]
    eligible_set = set(eligible)

    by_app = trace.functions_by_app()
    by_owner = trace.functions_by_owner()

    candidate_values: List[float] = []
    negative_values: List[float] = []
    same_trigger_values: List[float] = []
    different_trigger_values: List[float] = []
    pairs = 0

    all_ids = list(trace.function_ids)
    for target_id in eligible:
        target_record = records[target_id]
        related = set(by_app.get(target_record.app_id, ()))
        related.update(by_owner.get(target_record.owner_id, ()))
        related.discard(target_id)
        candidates = [fid for fid in related if fid in eligible_set]
        if not candidates:
            continue

        target_series = trace.series(target_id)
        for candidate_id in candidates:
            value = co_occurrence_rate(target_series, trace.series(candidate_id))
            candidate_values.append(value)
            if records[candidate_id].trigger == target_record.trigger:
                same_trigger_values.append(value)
            else:
                different_trigger_values.append(value)
            pairs += 1

        unrelated_pool = [fid for fid in all_ids if fid not in related and fid != target_id]
        if unrelated_pool:
            sample_size = min(negative_samples_per_function, len(unrelated_pool))
            sampled = rng.choice(unrelated_pool, size=sample_size, replace=False)
            for negative_id in sampled:
                negative_values.append(
                    co_occurrence_rate(target_series, trace.series(str(negative_id)))
                )

    def mean_or_zero(values: List[float]) -> float:
        return float(np.mean(values)) if values else 0.0

    return CooccurrenceReport(
        candidate_cor=mean_or_zero(candidate_values),
        negative_cor=mean_or_zero(negative_values),
        same_trigger_cor=mean_or_zero(same_trigger_values),
        different_trigger_cor=mean_or_zero(different_trigger_values),
        pairs_evaluated=pairs,
    )
