"""Empirical trace analysis reproducing §III of the paper.

* :mod:`repro.analysis.invocation_stats` -- the invocation-count histogram of
  Fig. 3 and the trigger-type proportions of Fig. 5.
* :mod:`repro.analysis.pattern_tests` -- the Kolmogorov-Smirnov periodicity
  and Poisson tests of §III-B1.
* :mod:`repro.analysis.cooccurrence` -- the co-occurrence-rate study of
  §III-B2 (candidate vs. negative samples, same vs. different trigger).
* :mod:`repro.analysis.locality` -- the temporal-locality measurements behind
  Fig. 6.
* :mod:`repro.analysis.drift` -- concept-shift detection behind Fig. 4.
"""

from repro.analysis.invocation_stats import (
    invocation_count_histogram,
    invocation_count_summary,
    trigger_proportions,
)
from repro.analysis.pattern_tests import (
    PatternTestReport,
    http_poisson_test,
    timer_periodicity_test,
)
from repro.analysis.cooccurrence import CooccurrenceReport, cooccurrence_study
from repro.analysis.locality import LocalityReport, temporal_locality_study
from repro.analysis.drift import DriftReport, detect_shifts, drift_study

__all__ = [
    "invocation_count_histogram",
    "invocation_count_summary",
    "trigger_proportions",
    "PatternTestReport",
    "timer_periodicity_test",
    "http_poisson_test",
    "CooccurrenceReport",
    "cooccurrence_study",
    "LocalityReport",
    "temporal_locality_study",
    "DriftReport",
    "detect_shifts",
    "drift_study",
]
