"""Temporal-locality analysis of infrequently invoked functions (Fig. 6).

The paper observes that many rarely invoked functions concentrate their
invocations in a few short windows (bursts), so a short keep-alive after the
first invocation of a burst avoids most of their cold starts.  This module
quantifies that: for each infrequent function it measures how much of its
activity falls inside bursts of consecutive invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.sequences import extract_sequences
from repro.traces.trace import Trace


@dataclass
class LocalityReport:
    """Population-level temporal-locality measurements.

    Attributes
    ----------
    functions_considered:
        Number of infrequently invoked functions analysed.
    bursty_functions:
        Number whose burst concentration exceeds the burstiness threshold.
    mean_burst_concentration:
        Mean fraction of invoked minutes that sit inside multi-minute bursts.
    mean_active_period_count:
        Mean number of distinct activity periods per function.
    per_function_concentration:
        Burst concentration per analysed function.
    """

    functions_considered: int
    bursty_functions: int
    mean_burst_concentration: float
    mean_active_period_count: float
    per_function_concentration: Dict[str, float] = field(default_factory=dict)

    @property
    def bursty_fraction(self) -> float:
        """Fraction of analysed functions exhibiting temporal locality."""
        if self.functions_considered == 0:
            return 0.0
        return self.bursty_functions / self.functions_considered


def temporal_locality_study(
    trace: Trace,
    max_invocations: int = 2000,
    min_invocations: int = 5,
    burst_threshold: float = 0.5,
) -> LocalityReport:
    """Measure temporal locality among infrequently invoked functions.

    Parameters
    ----------
    trace:
        Trace to analyse.
    max_invocations:
        Upper bound on total invocations for a function to count as
        "infrequent".
    min_invocations:
        Lower bound so that the concentration measure is meaningful.
    burst_threshold:
        A function is "bursty" when at least this fraction of its invoked
        minutes belongs to activity runs of two or more consecutive minutes.
    """
    concentrations: Dict[str, float] = {}
    active_period_counts: List[int] = []
    bursty = 0

    for function_id in trace.function_ids:
        series = trace.series(function_id)
        total = int((series > 0).sum())
        if not min_invocations <= total <= max_invocations:
            continue
        summary = extract_sequences(series)
        in_burst_minutes = sum(length for length in summary.active_times if length >= 2)
        concentration = in_burst_minutes / summary.invoked_slots
        concentrations[function_id] = concentration
        active_period_counts.append(len(summary.active_times))
        if concentration >= burst_threshold:
            bursty += 1

    considered = len(concentrations)
    return LocalityReport(
        functions_considered=considered,
        bursty_functions=bursty,
        mean_burst_concentration=(
            float(np.mean(list(concentrations.values()))) if concentrations else 0.0
        ),
        mean_active_period_count=(
            float(np.mean(active_period_counts)) if active_period_counts else 0.0
        ),
        per_function_concentration=concentrations,
    )


def normalized_burst_series(trace: Trace, function_id: str) -> np.ndarray:
    """Min-max normalized invocation series of one function (as plotted in Fig. 6)."""
    series = trace.series(function_id).astype(float)
    maximum = series.max()
    if maximum == 0:
        return series
    return series / maximum
