"""Concept-shift detection in invocation behaviour (Fig. 4, §III-A4).

The paper plots three functions whose invocation volume changes regime over
the 14-day window.  This module detects such shifts by comparing the
invocation-rate distribution of consecutive windows: a large relative change
in the windowed mean rate marks a change point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.traces.trace import Trace


@dataclass
class DriftReport:
    """Population-level concept-drift measurements.

    Attributes
    ----------
    functions_considered:
        Number of sufficiently active functions analysed.
    drifting_functions:
        Number of functions with at least one detected change point.
    change_points:
        Detected change points (minute indices) per drifting function.
    """

    functions_considered: int
    drifting_functions: int
    change_points: Dict[str, List[int]] = field(default_factory=dict)

    @property
    def drifting_fraction(self) -> float:
        """Fraction of analysed functions exhibiting a concept shift."""
        if self.functions_considered == 0:
            return 0.0
        return self.drifting_functions / self.functions_considered


def detect_shifts(
    series: np.ndarray,
    window_minutes: int = 1440,
    relative_change_threshold: float = 1.0,
    min_rate: float = 0.002,
) -> List[int]:
    """Detect change points in one invocation series.

    The series is split into consecutive windows of ``window_minutes``; a
    change point is reported between two windows whose mean rates differ by
    more than ``relative_change_threshold`` (relative to the smaller one),
    provided at least one side is active (above ``min_rate``).
    """
    counts = np.asarray(series, dtype=float)
    if counts.ndim != 1:
        raise ValueError("series must be one-dimensional")
    if window_minutes < 1:
        raise ValueError("window_minutes must be >= 1")
    n_windows = counts.shape[0] // window_minutes
    if n_windows < 2:
        return []
    rates = [
        counts[i * window_minutes : (i + 1) * window_minutes].mean()
        for i in range(n_windows)
    ]
    change_points: List[int] = []
    for index in range(1, n_windows):
        before, after = rates[index - 1], rates[index]
        if max(before, after) < min_rate:
            continue
        smaller = max(min(before, after), min_rate)
        relative_change = abs(after - before) / smaller
        if relative_change > relative_change_threshold:
            change_points.append(index * window_minutes)
    return change_points


def drift_study(
    trace: Trace,
    window_minutes: int = 1440,
    relative_change_threshold: float = 1.0,
    min_invocations: int = 50,
) -> DriftReport:
    """Detect concept shifts across all sufficiently active functions of a trace."""
    change_points: Dict[str, List[int]] = {}
    considered = 0
    for function_id in trace.function_ids:
        series = trace.series(function_id)
        if int(series.sum()) < min_invocations:
            continue
        considered += 1
        points = detect_shifts(
            series,
            window_minutes=window_minutes,
            relative_change_threshold=relative_change_threshold,
        )
        if points:
            change_points[function_id] = points
    return DriftReport(
        functions_considered=considered,
        drifting_functions=len(change_points),
        change_points=change_points,
    )
