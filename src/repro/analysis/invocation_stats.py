"""Invocation-count distribution and trigger proportions (Fig. 3 and Fig. 5)."""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.traces.trace import Trace


def invocation_count_histogram(
    trace: Trace, bins_per_decade: int = 1, max_decade: int = 10
) -> Dict[str, int]:
    """Histogram of per-function total invocation counts on a log scale.

    Reproduces Fig. 3: the x-axis spans decades of invocation counts and the
    y-axis counts how many functions fall into each range.  Functions with
    zero invocations are reported under the ``"0"`` bucket.

    Parameters
    ----------
    trace:
        The trace to analyse.
    bins_per_decade:
        Number of buckets per factor-of-ten range.
    max_decade:
        Counts at or above ``10 ** max_decade`` land in the last bucket.
    """
    if bins_per_decade < 1:
        raise ValueError("bins_per_decade must be >= 1")
    if max_decade < 1:
        raise ValueError("max_decade must be >= 1")

    histogram: Dict[str, int] = {"0": 0}
    edges = np.logspace(0, max_decade, max_decade * bins_per_decade + 1)
    labels = [
        f"[{edges[i]:.0f}, {edges[i + 1]:.0f})" for i in range(len(edges) - 1)
    ]
    for label in labels:
        histogram[label] = 0

    for function_id in trace.function_ids:
        total = trace.total_invocations(function_id)
        if total == 0:
            histogram["0"] += 1
            continue
        index = int(np.searchsorted(edges, total, side="right")) - 1
        index = min(max(index, 0), len(labels) - 1)
        histogram[labels[index]] += 1
    return histogram


def invocation_count_summary(trace: Trace) -> Dict[str, float]:
    """Summary statistics of the per-function invocation-count distribution."""
    totals = np.array(
        [trace.total_invocations(function_id) for function_id in trace.function_ids],
        dtype=float,
    )
    invoked = totals[totals > 0]
    if invoked.size == 0:
        return {
            "functions": float(totals.size),
            "invoked_functions": 0.0,
            "median": 0.0,
            "p90": 0.0,
            "p99": 0.0,
            "max": 0.0,
            "skewness_ratio": 0.0,
        }
    return {
        "functions": float(totals.size),
        "invoked_functions": float(invoked.size),
        "median": float(np.median(invoked)),
        "p90": float(np.percentile(invoked, 90)),
        "p99": float(np.percentile(invoked, 99)),
        "max": float(invoked.max()),
        # Ratio of the mean to the median: > 1 indicates the heavy right tail
        # visible in Fig. 3.
        "skewness_ratio": float(invoked.mean() / max(np.median(invoked), 1.0)),
    }


def trigger_proportions(trace: Trace) -> Dict[str, float]:
    """Fraction of functions bound to each trigger type (Fig. 5)."""
    groups = trace.functions_by_trigger()
    total = sum(len(functions) for functions in groups.values())
    if total == 0:
        return {}
    return {
        trigger: len(functions) / total for trigger, functions in sorted(groups.items())
    }
