"""Invocation-pattern tests (§III-B1).

The paper checks whether single-function invocation behaviours follow a given
distribution:

* timer-triggered functions -- are the inter-invocation gaps consistent with
  a (quasi-)periodic process?  We check whether the gaps are concentrated
  around a single value (the spread between the 5th and 95th percentile stays
  within a small jitter band), mirroring the "regular" definition.
* HTTP-triggered functions -- do arrivals follow a Poisson process?  For a
  homogeneous Poisson process the inter-arrival times are exponential, so we
  KS-test the observed gaps (dithered to undo the one-minute binning) against
  an exponential distribution with the matching rate.

Functions with too few invocations are reported separately (the paper
excludes 6.65% / 36.20% of functions for insufficient counts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np
from scipy import stats as scipy_stats

from repro.traces.schema import TriggerType
from repro.traces.trace import Trace


@dataclass
class PatternTestReport:
    """Outcome of a population-level pattern test.

    Attributes
    ----------
    population:
        Number of functions with the targeted trigger type.
    tested:
        Number of functions with enough samples to test.
    insufficient:
        Number of functions skipped for lack of samples.
    matching:
        Number of tested functions consistent with the hypothesis (the test
        score at or above the significance level).
    per_function_scores:
        The test score of every tested function (a p-value for the Poisson
        test, a concentration indicator for the periodicity test).
    """

    population: int
    tested: int
    insufficient: int
    matching: int
    per_function_scores: Dict[str, float] = field(default_factory=dict)

    @property
    def matching_fraction(self) -> float:
        """Fraction of tested functions consistent with the hypothesis."""
        if self.tested == 0:
            return 0.0
        return self.matching / self.tested

    @property
    def insufficient_fraction(self) -> float:
        """Fraction of the population skipped for insufficient data."""
        if self.population == 0:
            return 0.0
        return self.insufficient / self.population


def _gaps(series: np.ndarray) -> np.ndarray:
    minutes = np.nonzero(series)[0]
    if minutes.size < 2:
        return np.zeros(0)
    return np.diff(minutes).astype(float)


def timer_periodicity_test(
    trace: Trace,
    min_invocations: int = 10,
    significance: float = 0.05,
    jitter_minutes: float = 1.0,
) -> PatternTestReport:
    """Test timer-triggered functions for (quasi-)periodic behaviour.

    A function passes when its inter-invocation gaps are concentrated around
    one value: the spread between the 5th and 95th percentile must stay
    within ``2 * jitter_minutes``.  The returned score is 1.0 for passing
    functions and 0.0 otherwise, so the shared ``significance`` threshold
    applies uniformly.
    """
    report = _run_test(
        trace,
        trigger=TriggerType.TIMER,
        min_invocations=min_invocations,
        significance=significance,
        test=lambda gaps: _periodicity_score(gaps, jitter_minutes),
    )
    return report


def http_poisson_test(
    trace: Trace,
    min_invocations: int = 10,
    significance: float = 0.05,
) -> PatternTestReport:
    """Test HTTP-triggered functions for Poisson (exponential inter-arrival) behaviour."""
    return _run_test(
        trace,
        trigger=TriggerType.HTTP,
        min_invocations=min_invocations,
        significance=significance,
        test=_poisson_pvalue,
    )


def _periodicity_score(gaps: np.ndarray, jitter_minutes: float) -> float:
    """1.0 when the gaps are (quasi-)periodic, 0.0 otherwise.

    A function counts as (quasi-)periodic when either the bulk spread of its
    gaps (P95 - P5) fits within the jitter band, or a clear majority of gaps
    sits within the jitter band around the median gap -- the latter tolerates
    the occasional spurious invocation splitting one period in two.
    """
    spread = float(np.percentile(gaps, 95) - np.percentile(gaps, 5))
    if spread <= 2 * jitter_minutes:
        return 1.0
    median = float(np.median(gaps))
    near_median = np.abs(gaps - median) <= max(jitter_minutes, 0.05 * median)
    return 1.0 if float(near_median.mean()) >= 0.6 else 0.0


#: Maximum number of gaps fed to the KS test.  The trace is binned to whole
#: minutes and real arrival processes are only approximately homogeneous, so
#: an unbounded sample size would reject every function on minor deviations.
_MAX_KS_SAMPLES = 200


def _poisson_pvalue(gaps: np.ndarray) -> float:
    """KS p-value of the (dithered, subsampled) gaps against an exponential.

    Gaps are measured in whole minutes because the trace is binned; a
    deterministic uniform dither spreads each integer gap over the preceding
    minute so the comparison against the continuous exponential is fair.
    """
    mean_gap = float(gaps.mean())
    if mean_gap <= 0:
        return 0.0
    if gaps.shape[0] > _MAX_KS_SAMPLES:
        stride = gaps.shape[0] / _MAX_KS_SAMPLES
        indices = (np.arange(_MAX_KS_SAMPLES) * stride).astype(int)
        gaps = gaps[indices]
    dither = np.random.default_rng(0).uniform(0.0, 1.0, size=gaps.shape[0])
    dithered = np.maximum(gaps - dither, 1e-6)
    result = scipy_stats.kstest(dithered, scipy_stats.expon(scale=dithered.mean()).cdf)
    return float(result.pvalue)


def _run_test(
    trace: Trace,
    trigger: TriggerType,
    min_invocations: int,
    significance: float,
    test,
) -> PatternTestReport:
    population = 0
    tested = 0
    insufficient = 0
    matching = 0
    scores: Dict[str, float] = {}

    for record in trace.records():
        if record.trigger != trigger:
            continue
        population += 1
        series = trace.series(record.function_id)
        if int((series > 0).sum()) < min_invocations:
            insufficient += 1
            continue
        gaps = _gaps(series)
        if gaps.size < 2:
            insufficient += 1
            continue
        score = test(gaps)
        scores[record.function_id] = score
        tested += 1
        if score >= significance:
            matching += 1

    return PatternTestReport(
        population=population,
        tested=tested,
        insufficient=insufficient,
        matching=matching,
        per_function_scores=scores,
    )
