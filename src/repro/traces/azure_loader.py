"""Loader for the real Azure Functions 2019 public trace.

The paper evaluates on the dataset released with Shahrad et al. (ATC'20),
distributed as CSV files named ``invocations_per_function_md.anon.d{DD}.csv``
(one per day).  Each row describes one function for one day:

``HashOwner, HashApp, HashFunction, Trigger, 1, 2, ..., 1440``

where columns ``1``..``1440`` hold per-minute invocation counts.  This module
stitches those daily files into a single :class:`~repro.traces.trace.Trace`,
so the synthetic generator can be swapped for the genuine trace whenever the
dataset is available locally.  Nothing in the rest of the library depends on
which source produced the trace.

Row parsing is delegated to :mod:`repro.traces.azure2019`, the streaming
ingestion path built for the full-scale dataset; this loader remains the
small-population dense entry point (explicit file lists, permissive parsing)
while ``azure2019`` owns selection, sparse assembly, duration joins and the
on-disk cache.

Day alignment: files whose names carry a parseable day number (``d03.csv``,
``...anon.d03.csv``) are placed at their *day-numbered* offsets, so a missing
day in the middle of the requested range contributes a silent day instead of
silently shifting every later day one slot earlier.  Files without day
numbers fall back to positional stitching in the order given.  Duplicate or
out-of-order day numbers are rejected — two files claiming the same day is a
broken download, not a loadable timeline.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.traces.azure2019 import (
    AzureIngestError,
    day_number,
    iter_invocation_rows,
    parse_trigger,
)
from repro.traces.schema import MINUTES_PER_DAY, FunctionRecord, TraceMetadata
from repro.traces.trace import Trace

__all__ = ["load_azure_invocation_csv", "parse_trigger"]


def _day_slots(paths: Sequence[Path]) -> List[int]:
    """Day slot (0-based offset in days) for every path.

    When every file name carries a day number, slots come from the numbers
    (gaps become silent days); otherwise stitching is positional.
    """
    numbers = [day_number(path) for path in paths]
    if any(number is None for number in numbers):
        return list(range(len(paths)))
    if len(set(numbers)) != len(numbers):
        duplicates = sorted({n for n in numbers if numbers.count(n) > 1})
        raise AzureIngestError(
            f"overlapping day files: day(s) {duplicates} appear more than once"
        )
    if numbers != sorted(numbers):
        raise AzureIngestError(
            f"day files out of chronological order: {[f'd{n:02d}' for n in numbers]}"
        )
    first = numbers[0]
    return [number - first for number in numbers]


def load_azure_invocation_csv(
    paths: Sequence[str | Path] | Iterable[str | Path],
    name: str = "azure-2019",
    max_functions: int | None = None,
) -> Trace:
    """Load one or more daily Azure invocation CSVs into a :class:`Trace`.

    Parameters
    ----------
    paths:
        Daily CSV files, in chronological order.  Each contributes 1440
        minute columns; a gap in the file names' day numbers (say ``d01`` and
        ``d03`` with no ``d02``) contributes a silent day, keeping every
        file's counts at its true minute offsets.
    name:
        Name recorded in the trace metadata.
    max_functions:
        Optional cap on the number of functions loaded (useful for smoke
        tests on the full dataset).

    Returns
    -------
    Trace
        A trace covering every day slot from the first file's day to the
        last's (1440 minutes per day).
    """
    path_list = [Path(path) for path in paths]
    if not path_list:
        raise ValueError("at least one daily CSV path is required")

    slots = _day_slots(path_list)
    duration = MINUTES_PER_DAY * (slots[-1] + 1)

    # The trigger label can occasionally differ between days for the same
    # function; keep the first.
    records: Dict[str, FunctionRecord] = {}
    counts: Dict[str, np.ndarray] = {}
    for slot, path in zip(slots, path_list):
        offset = slot * MINUTES_PER_DAY
        for _, owner, app, function, trigger, minutes, row_counts in (
            iter_invocation_rows(path, on_malformed="skip")
        ):
            function_id = f"{owner}:{app}:{function}"
            if function_id not in records:
                if max_functions is not None and len(records) >= max_functions:
                    continue
                records[function_id] = FunctionRecord(
                    function_id=function_id,
                    app_id=f"{owner}:{app}",
                    owner_id=owner,
                    trigger=parse_trigger(trigger),
                )
                counts[function_id] = np.zeros(duration, dtype=np.int64)
            counts[function_id][minutes + offset] += row_counts

    if not records:
        raise ValueError("no functions were loaded from the given CSV files")

    metadata = TraceMetadata(
        name=name,
        duration_minutes=duration,
        extra={"source_files": [str(path) for path in path_list]},
    )
    return Trace(records.values(), counts, metadata)
