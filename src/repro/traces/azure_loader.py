"""Loader for the real Azure Functions 2019 public trace.

The paper evaluates on the dataset released with Shahrad et al. (ATC'20),
distributed as CSV files named ``invocations_per_function_md.anon.d{DD}.csv``
(one per day).  Each row describes one function for one day:

``HashOwner, HashApp, HashFunction, Trigger, 1, 2, ..., 1440``

where columns ``1``..``1440`` hold per-minute invocation counts.  This module
stitches those daily files into a single :class:`~repro.traces.trace.Trace`,
so the synthetic generator can be swapped for the genuine trace whenever the
dataset is available locally.  Nothing in the rest of the library depends on
which source produced the trace.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.traces.schema import MINUTES_PER_DAY, FunctionRecord, TraceMetadata, TriggerType
from repro.traces.trace import Trace

#: Mapping from the trace's ``Trigger`` column values to :class:`TriggerType`.
_TRIGGER_ALIASES: Dict[str, TriggerType] = {
    "http": TriggerType.HTTP,
    "timer": TriggerType.TIMER,
    "queue": TriggerType.QUEUE,
    "storage": TriggerType.STORAGE,
    "blob": TriggerType.STORAGE,
    "event": TriggerType.EVENT,
    "eventhub": TriggerType.EVENT,
    "orchestration": TriggerType.ORCHESTRATION,
    "durable": TriggerType.ORCHESTRATION,
    "others": TriggerType.OTHERS,
    "other": TriggerType.OTHERS,
    "combination": TriggerType.COMBINATION,
}


def parse_trigger(raw: str) -> TriggerType:
    """Map a raw trigger string from the CSV to a :class:`TriggerType`.

    Unknown trigger labels are mapped to :attr:`TriggerType.OTHERS` rather than
    rejected, since the public trace contains a long tail of trigger variants.
    """
    return _TRIGGER_ALIASES.get(raw.strip().lower(), TriggerType.OTHERS)


def _read_daily_file(path: Path) -> Dict[tuple[str, str, str, str], np.ndarray]:
    """Read one daily invocation CSV into ``{(owner, app, func, trigger): counts}``."""
    rows: Dict[tuple[str, str, str, str], np.ndarray] = {}
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return rows
        minute_columns = len(header) - 4
        if minute_columns <= 0:
            raise ValueError(f"{path}: expected minute columns after the 4 id columns")
        for row in reader:
            if len(row) < 4:
                continue
            owner, app, function, trigger = row[0], row[1], row[2], row[3]
            counts = np.zeros(minute_columns, dtype=np.int64)
            for index, value in enumerate(row[4 : 4 + minute_columns]):
                if value:
                    counts[index] = int(float(value))
            key = (owner, app, function, trigger)
            if key in rows:
                rows[key] = rows[key] + counts
            else:
                rows[key] = counts
    return rows


def load_azure_invocation_csv(
    paths: Sequence[str | Path] | Iterable[str | Path],
    name: str = "azure-2019",
    max_functions: int | None = None,
) -> Trace:
    """Load one or more daily Azure invocation CSVs into a :class:`Trace`.

    Parameters
    ----------
    paths:
        Daily CSV files, in chronological order.  Each contributes 1440
        minute columns; days are concatenated in the order given.
    name:
        Name recorded in the trace metadata.
    max_functions:
        Optional cap on the number of functions loaded (useful for smoke
        tests on the full dataset).

    Returns
    -------
    Trace
        A trace whose duration is ``1440 * len(paths)`` minutes.
    """
    path_list = [Path(path) for path in paths]
    if not path_list:
        raise ValueError("at least one daily CSV path is required")

    daily = [_read_daily_file(path) for path in path_list]
    day_length = MINUTES_PER_DAY
    duration = day_length * len(daily)

    # Collect the union of function keys across days.  The trigger label can
    # occasionally differ between days for the same function; keep the first.
    key_of_function: Dict[tuple[str, str, str], str] = {}
    records: Dict[str, FunctionRecord] = {}
    counts: Dict[str, np.ndarray] = {}

    for day_index, day_rows in enumerate(daily):
        offset = day_index * day_length
        for (owner, app, function, trigger), series in day_rows.items():
            identity = (owner, app, function)
            function_id = key_of_function.get(identity)
            if function_id is None:
                if max_functions is not None and len(records) >= max_functions:
                    continue
                function_id = f"{owner}:{app}:{function}"
                key_of_function[identity] = function_id
                records[function_id] = FunctionRecord(
                    function_id=function_id,
                    app_id=f"{owner}:{app}",
                    owner_id=owner,
                    trigger=parse_trigger(trigger),
                )
                counts[function_id] = np.zeros(duration, dtype=np.int64)
            window = counts[function_id][offset : offset + day_length]
            usable = min(series.shape[0], day_length)
            window[:usable] += series[:usable]

    if not records:
        raise ValueError("no functions were loaded from the given CSV files")

    metadata = TraceMetadata(
        name=name,
        duration_minutes=duration,
        extra={"source_files": [str(path) for path in path_list]},
    )
    return Trace(records.values(), counts, metadata)
