"""Trace substrate: schemas, containers, loaders and synthetic workload generation.

The Azure Functions 2019 public trace used by the paper records per-minute
invocation counts for every function over 14 days, together with owner
(user), application and trigger metadata.  This package provides:

* :mod:`repro.traces.schema` -- value objects (:class:`TriggerType`,
  :class:`FunctionRecord`) shared by every other subsystem.
* :mod:`repro.traces.trace` -- the :class:`Trace` container holding the
  per-minute invocation matrix and metadata, with train/simulation splitting.
* :mod:`repro.traces.archetypes` -- per-pattern invocation series generators
  (periodic, Poisson, bursty, chained, ...).
* :mod:`repro.traces.synthetic` -- :class:`AzureTraceGenerator`, a full
  synthetic-workload generator whose marginal statistics match the published
  characteristics of the Azure trace.
* :mod:`repro.traces.azure_loader` -- small-population dense loader for the
  real Azure CSV schema (explicit file lists).
* :mod:`repro.traces.azure2019` -- full-scale streaming ingestion of the real
  dataset: chunked readers, trigger filtering, top-K/sample selection,
  duration-percentile joins, an on-disk ``.npz`` cache and a deterministic
  fixture generator for hermetic CI runs.
"""

from repro.traces.schema import (
    DEFAULT_DURATION_PROFILE,
    MINUTES_PER_DAY,
    DurationProfile,
    FunctionRecord,
    TraceMetadata,
    TriggerType,
)
from repro.traces.trace import SparseTrace, Trace, TraceSplit, split_trace
from repro.traces.archetypes import (
    ARCHETYPE_DURATION_PROFILES,
    TRIGGER_DURATION_PROFILES,
    ArchetypeName,
    duration_profile_for,
    generate_always_warm,
    generate_bursty,
    generate_chained,
    generate_dense_poisson,
    generate_drifting,
    generate_flash_crowd,
    generate_periodic,
    generate_pulsed,
    generate_quasi_periodic,
    generate_rare,
)
from repro.traces.synthetic import AzureTraceGenerator, GeneratorProfile
from repro.traces.azure_loader import load_azure_invocation_csv
from repro.traces.azure2019 import (
    Azure2019Config,
    Azure2019Dataset,
    AzureIngestError,
    fetch_azure2019,
    load_azure2019,
    write_azure2019_fixture,
)

__all__ = [
    "MINUTES_PER_DAY",
    "DEFAULT_DURATION_PROFILE",
    "DurationProfile",
    "ARCHETYPE_DURATION_PROFILES",
    "TRIGGER_DURATION_PROFILES",
    "duration_profile_for",
    "TriggerType",
    "FunctionRecord",
    "TraceMetadata",
    "Trace",
    "SparseTrace",
    "TraceSplit",
    "split_trace",
    "ArchetypeName",
    "generate_always_warm",
    "generate_periodic",
    "generate_quasi_periodic",
    "generate_dense_poisson",
    "generate_bursty",
    "generate_pulsed",
    "generate_chained",
    "generate_rare",
    "generate_drifting",
    "generate_flash_crowd",
    "AzureTraceGenerator",
    "GeneratorProfile",
    "load_azure_invocation_csv",
    "Azure2019Config",
    "Azure2019Dataset",
    "AzureIngestError",
    "fetch_azure2019",
    "load_azure2019",
    "write_azure2019_fixture",
]
