"""The :class:`Trace` container: per-minute invocation counts plus metadata.

A trace is conceptually a sparse matrix ``counts[function, minute]`` holding
invocation counts, together with a :class:`~repro.traces.schema.FunctionRecord`
for every function.  Functions with zero invocations may still appear in the
trace (they exist in the platform's registry even when idle), which matters
because the paper explicitly reasons about functions that never appear during
training ("unseen" functions).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.traces.schema import MINUTES_PER_DAY, FunctionRecord, TraceMetadata


@dataclass(frozen=True)
class InvocationIndex:
    """Column-compressed (per-minute) view of a trace's invocation matrix.

    The simulator's hot loop needs, for every minute, the set of invoked
    functions as *integer indices* so residency, cold-start and memory
    accounting can run on numpy boolean masks instead of Python dicts.  The
    index is the CSR layout of the ``counts[function, minute]`` matrix
    compressed along the minute axis:

    ``indices[indptr[m]:indptr[m + 1]]`` are the function indices invoked at
    minute ``m`` (ordered by function insertion order), and ``counts`` holds
    the matching invocation counts.
    """

    #: Function ids, position ``i`` corresponds to function index ``i``.
    function_ids: tuple[str, ...]
    #: Reverse mapping ``function_id -> function index``.
    index_of: Dict[str, int]
    #: CSR row pointer over minutes, length ``duration + 1``.
    indptr: np.ndarray
    #: Function indices invoked per minute, grouped by ``indptr``.
    indices: np.ndarray
    #: Invocation counts aligned with ``indices``.
    counts: np.ndarray

    @property
    def n_functions(self) -> int:
        """Number of functions covered by the index."""
        return len(self.function_ids)

    @property
    def duration_minutes(self) -> int:
        """Number of minutes covered by the index."""
        return len(self.indptr) - 1

    def minute_invocations(self) -> tuple:
        """Read-only ``{function_id: count}`` mappings, one per minute.

        Built lazily and cached on the index, so every simulation run over the
        same trace (a policy sweep, every cell of a parallel sweep worker)
        shares one set of mappings instead of rebuilding 1440+ dicts per run.
        The mappings are :class:`types.MappingProxyType` views: policies
        receive them directly, and any accidental mutation raises instead of
        corrupting the shared cache.
        """
        cached = getattr(self, "_minute_invocations", None)
        if cached is None:
            from types import MappingProxyType

            ids = self.function_ids
            indices = self.indices.tolist()
            counts = self.counts.tolist()
            indptr = self.indptr.tolist()
            cached = tuple(
                MappingProxyType(
                    {
                        ids[indices[position]]: counts[position]
                        for position in range(indptr[minute], indptr[minute + 1])
                    }
                )
                for minute in range(self.duration_minutes)
            )
            object.__setattr__(self, "_minute_invocations", cached)
        return cached


class Trace:
    """Per-minute invocation counts for a set of serverless functions.

    Parameters
    ----------
    records:
        Static metadata for every function in the trace.
    counts:
        Mapping from function id to a 1-D integer array of invocation counts,
        one entry per minute.  All arrays must share the same length.
    metadata:
        Optional trace-level metadata; a default is synthesized if omitted.
    """

    def __init__(
        self,
        records: Iterable[FunctionRecord],
        counts: Mapping[str, Sequence[int] | np.ndarray],
        metadata: TraceMetadata | None = None,
    ) -> None:
        self._records: Dict[str, FunctionRecord] = {}
        for record in records:
            if record.function_id in self._records:
                raise ValueError(f"duplicate function id: {record.function_id}")
            self._records[record.function_id] = record

        self._counts: Dict[str, np.ndarray] = {}
        duration = None
        for function_id, series in counts.items():
            if function_id not in self._records:
                raise KeyError(f"counts provided for unknown function: {function_id}")
            array = np.asarray(series, dtype=np.int64)
            if array.ndim != 1:
                raise ValueError("invocation series must be one-dimensional")
            if (array < 0).any():
                raise ValueError("invocation counts must be non-negative")
            if duration is None:
                duration = array.shape[0]
            elif array.shape[0] != duration:
                raise ValueError("all invocation series must have the same length")
            self._counts[function_id] = array

        missing = set(self._records) - set(self._counts)
        if missing and duration is None:
            raise ValueError("cannot infer trace duration: no invocation series given")
        for function_id in missing:
            self._counts[function_id] = np.zeros(duration, dtype=np.int64)

        if duration is None:
            raise ValueError("a trace must contain at least one function")

        self._duration = int(duration)
        self._invocation_index: InvocationIndex | None = None
        self._fingerprint: str | None = None
        self.metadata = metadata or TraceMetadata(
            name="unnamed", duration_minutes=self._duration
        )
        if self.metadata.duration_minutes != self._duration:
            raise ValueError(
                "metadata.duration_minutes does not match the invocation series length"
            )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def duration_minutes(self) -> int:
        """Number of one-minute slots in the trace."""
        return self._duration

    @property
    def duration_days(self) -> float:
        """Trace duration in days."""
        return self._duration / MINUTES_PER_DAY

    @property
    def function_ids(self) -> list[str]:
        """All function ids, in insertion order."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, function_id: object) -> bool:
        return function_id in self._records

    def __iter__(self) -> Iterator[str]:
        return iter(self._records)

    def record(self, function_id: str) -> FunctionRecord:
        """Return the static metadata for ``function_id``."""
        return self._records[function_id]

    def records(self) -> list[FunctionRecord]:
        """Return metadata for every function."""
        return list(self._records.values())

    def series(self, function_id: str) -> np.ndarray:
        """Return the invocation-count series for ``function_id`` (read-only view)."""
        view = self._counts[function_id].view()
        view.flags.writeable = False
        return view

    def total_invocations(self, function_id: str | None = None) -> int:
        """Total invocation count for one function, or the whole trace."""
        if function_id is not None:
            return int(self._counts[function_id].sum())
        return int(sum(int(series.sum()) for series in self._counts.values()))

    def invoked_function_ids(self) -> list[str]:
        """Ids of functions with at least one invocation in this trace."""
        return [fid for fid, series in self._counts.items() if series.any()]

    # ------------------------------------------------------------------ #
    # Identity and vectorized access
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Stable content hash of the trace (records + invocation matrix).

        Used to key on-disk result caches: two traces with the same
        fingerprint produce identical simulation results for the same policy
        and simulator settings.  The per-function metadata is included
        because policies condition on it (application grouping, trigger
        type); the trace-level metadata name is deliberately excluded so
        renaming a slice does not invalidate cached results.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(str(self._duration).encode())
            for function_id, series in self._counts.items():
                record = self._records[function_id]
                digest.update(
                    f"{function_id}\x1f{record.app_id}\x1f{record.owner_id}"
                    f"\x1f{record.trigger.value}\x1e".encode()
                )
                digest.update(series.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def invocation_index(self) -> InvocationIndex:
        """The cached :class:`InvocationIndex` of this trace.

        Built once per trace and shared across simulation runs, so sweeping
        many policies over the same window pays the trace scan only once.
        """
        if self._invocation_index is None:
            function_ids = tuple(self._counts)
            chunks_minutes: list[np.ndarray] = []
            chunks_findex: list[np.ndarray] = []
            chunks_counts: list[np.ndarray] = []
            for position, series in enumerate(self._counts.values()):
                nonzero = np.flatnonzero(series)
                if nonzero.size == 0:
                    continue
                chunks_minutes.append(nonzero)
                chunks_findex.append(np.full(nonzero.size, position, dtype=np.int64))
                chunks_counts.append(series[nonzero])
            if chunks_minutes:
                minutes = np.concatenate(chunks_minutes)
                findex = np.concatenate(chunks_findex)
                counts = np.concatenate(chunks_counts)
                # Stable sort keeps function insertion order within a minute,
                # matching the dict order produced by iter_minutes().
                order = np.argsort(minutes, kind="stable")
                minutes, findex, counts = minutes[order], findex[order], counts[order]
            else:
                minutes = np.zeros(0, dtype=np.int64)
                findex = np.zeros(0, dtype=np.int64)
                counts = np.zeros(0, dtype=np.int64)
            indptr = np.zeros(self._duration + 1, dtype=np.int64)
            np.cumsum(np.bincount(minutes, minlength=self._duration), out=indptr[1:])
            self._invocation_index = InvocationIndex(
                function_ids=function_ids,
                index_of={fid: i for i, fid in enumerate(function_ids)},
                indptr=indptr,
                indices=findex,
                counts=counts,
            )
        return self._invocation_index

    def __getstate__(self) -> Dict[str, object]:
        # The invocation index is cheap to rebuild and can triple the pickle
        # size; drop it so traces shipped to worker processes stay lean.
        state = dict(self.__dict__)
        state["_invocation_index"] = None
        return state

    # ------------------------------------------------------------------ #
    # Per-minute access used by the simulator
    # ------------------------------------------------------------------ #
    def invocations_at(self, minute: int) -> Dict[str, int]:
        """Return ``{function_id: count}`` for functions invoked at ``minute``.

        Functions with zero invocations at that minute are omitted, matching
        how the simulator and the provisioning policies consume the trace.
        """
        if not 0 <= minute < self._duration:
            raise IndexError(f"minute {minute} outside trace of {self._duration} minutes")
        result: Dict[str, int] = {}
        for function_id, series in self._counts.items():
            count = int(series[minute])
            if count > 0:
                result[function_id] = count
        return result

    def iter_minutes(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[tuple[int, Dict[str, int]]]:
        """Yield ``(minute, invocations)`` pairs over ``[start, stop)``.

        This pre-computes, per function, the minutes at which it is invoked,
        so iterating a long, sparse trace does not repeatedly scan every
        function's series.
        """
        stop = self._duration if stop is None else stop
        if not 0 <= start <= stop <= self._duration:
            raise IndexError("invalid minute range")

        per_minute: Dict[int, Dict[str, int]] = {}
        for function_id, series in self._counts.items():
            window = series[start:stop]
            for offset in np.nonzero(window)[0]:
                minute = start + int(offset)
                per_minute.setdefault(minute, {})[function_id] = int(window[offset])

        for minute in range(start, stop):
            yield minute, per_minute.get(minute, {})

    # ------------------------------------------------------------------ #
    # Grouping helpers used by application-grained policies and COR mining
    # ------------------------------------------------------------------ #
    def functions_by_app(self) -> Dict[str, list[str]]:
        """Group function ids by application id."""
        groups: Dict[str, list[str]] = {}
        for record in self._records.values():
            groups.setdefault(record.app_id, []).append(record.function_id)
        return groups

    def functions_by_owner(self) -> Dict[str, list[str]]:
        """Group function ids by owner (user) id."""
        groups: Dict[str, list[str]] = {}
        for record in self._records.values():
            groups.setdefault(record.owner_id, []).append(record.function_id)
        return groups

    def functions_by_trigger(self) -> Dict[str, list[str]]:
        """Group function ids by trigger type value."""
        groups: Dict[str, list[str]] = {}
        for record in self._records.values():
            groups.setdefault(record.trigger.value, []).append(record.function_id)
        return groups

    # ------------------------------------------------------------------ #
    # Slicing
    # ------------------------------------------------------------------ #
    def slice(self, start: int, stop: int, name: str | None = None) -> "Trace":
        """Return a new trace restricted to minutes ``[start, stop)``.

        Every function is retained, even those with no invocation in the
        window, so that "unseen during training" functions remain visible to
        downstream consumers.
        """
        if not 0 <= start < stop <= self._duration:
            raise ValueError(f"invalid slice [{start}, {stop}) for {self._duration} minutes")
        sliced = {fid: series[start:stop].copy() for fid, series in self._counts.items()}
        metadata = TraceMetadata(
            name=name or f"{self.metadata.name}[{start}:{stop}]",
            duration_minutes=stop - start,
            seed=self.metadata.seed,
            extra=dict(self.metadata.extra),
        )
        return Trace(self.records(), sliced, metadata)


@dataclass(frozen=True)
class TraceSplit:
    """A training/simulation split of a trace, as used in the paper (12 + 2 days)."""

    training: Trace
    simulation: Trace

    @property
    def unseen_function_ids(self) -> list[str]:
        """Functions invoked during simulation but never during training."""
        trained = set(self.training.invoked_function_ids())
        return [
            fid
            for fid in self.simulation.invoked_function_ids()
            if fid not in trained
        ]


def split_trace(trace: Trace, training_days: float = 12.0) -> TraceSplit:
    """Split ``trace`` into training and simulation windows.

    The paper uses the first 12 days of the 14-day Azure trace for pattern
    modelling and the final 2 days for simulation.

    Parameters
    ----------
    trace:
        The full trace to split.
    training_days:
        Number of days assigned to the training window.  Must leave at least
        one minute for simulation.
    """
    boundary = int(round(training_days * MINUTES_PER_DAY))
    if not 0 < boundary < trace.duration_minutes:
        raise ValueError(
            f"training_days={training_days} does not fit a trace of "
            f"{trace.duration_days:.2f} days"
        )
    training = trace.slice(0, boundary, name=f"{trace.metadata.name}-train")
    simulation = trace.slice(
        boundary, trace.duration_minutes, name=f"{trace.metadata.name}-sim"
    )
    return TraceSplit(training=training, simulation=simulation)
