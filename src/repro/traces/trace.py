"""The :class:`Trace` container: per-minute invocation counts plus metadata.

A trace is conceptually a sparse matrix ``counts[function, minute]`` holding
invocation counts, together with a :class:`~repro.traces.schema.FunctionRecord`
for every function.  Functions with zero invocations may still appear in the
trace (they exist in the platform's registry even when idle), which matters
because the paper explicitly reasons about functions that never appear during
training ("unseen" functions).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.traces.schema import MINUTES_PER_DAY, FunctionRecord, TraceMetadata


@dataclass(frozen=True)
class InvocationIndex:
    """Column-compressed (per-minute) view of a trace's invocation matrix.

    The simulator's hot loop needs, for every minute, the set of invoked
    functions as *integer indices* so residency, cold-start and memory
    accounting can run on numpy boolean masks instead of Python dicts.  The
    index is the CSR layout of the ``counts[function, minute]`` matrix
    compressed along the minute axis:

    ``indices[indptr[m]:indptr[m + 1]]`` are the function indices invoked at
    minute ``m`` (ordered by function insertion order), and ``counts`` holds
    the matching invocation counts.
    """

    #: Function ids, position ``i`` corresponds to function index ``i``.
    function_ids: tuple[str, ...]
    #: Reverse mapping ``function_id -> function index``.
    index_of: Dict[str, int]
    #: CSR row pointer over minutes, length ``duration + 1``.
    indptr: np.ndarray
    #: Function indices invoked per minute, grouped by ``indptr``.
    indices: np.ndarray
    #: Invocation counts aligned with ``indices``.
    counts: np.ndarray

    @property
    def n_functions(self) -> int:
        """Number of functions covered by the index."""
        return len(self.function_ids)

    @property
    def duration_minutes(self) -> int:
        """Number of minutes covered by the index."""
        return len(self.indptr) - 1

    def minute_invocations(self) -> tuple:
        """Read-only ``{function_id: count}`` mappings, one per minute.

        Built lazily and cached on the index, so every simulation run over the
        same trace (a policy sweep, every cell of a parallel sweep worker)
        shares one set of mappings instead of rebuilding 1440+ dicts per run.
        The mappings are :class:`types.MappingProxyType` views: policies
        receive them directly, and any accidental mutation raises instead of
        corrupting the shared cache.
        """
        cached = getattr(self, "_minute_invocations", None)
        if cached is None:
            from types import MappingProxyType

            ids = self.function_ids
            indices = self.indices.tolist()
            counts = self.counts.tolist()
            indptr = self.indptr.tolist()
            cached = tuple(
                MappingProxyType(
                    {
                        ids[indices[position]]: counts[position]
                        for position in range(indptr[minute], indptr[minute + 1])
                    }
                )
                for minute in range(self.duration_minutes)
            )
            object.__setattr__(self, "_minute_invocations", cached)
        return cached


class Trace:
    """Per-minute invocation counts for a set of serverless functions.

    Parameters
    ----------
    records:
        Static metadata for every function in the trace.
    counts:
        Mapping from function id to a 1-D integer array of invocation counts,
        one entry per minute.  All arrays must share the same length.
    metadata:
        Optional trace-level metadata; a default is synthesized if omitted.
    """

    def __init__(
        self,
        records: Iterable[FunctionRecord],
        counts: Mapping[str, Sequence[int] | np.ndarray],
        metadata: TraceMetadata | None = None,
    ) -> None:
        self._records: Dict[str, FunctionRecord] = {}
        for record in records:
            if record.function_id in self._records:
                raise ValueError(f"duplicate function id: {record.function_id}")
            self._records[record.function_id] = record

        self._counts: Dict[str, np.ndarray] = {}
        duration = None
        for function_id, series in counts.items():
            if function_id not in self._records:
                raise KeyError(f"counts provided for unknown function: {function_id}")
            array = np.asarray(series, dtype=np.int64)
            if array.ndim != 1:
                raise ValueError("invocation series must be one-dimensional")
            if (array < 0).any():
                raise ValueError("invocation counts must be non-negative")
            if duration is None:
                duration = array.shape[0]
            elif array.shape[0] != duration:
                raise ValueError("all invocation series must have the same length")
            self._counts[function_id] = array

        missing = set(self._records) - set(self._counts)
        if missing and duration is None:
            raise ValueError("cannot infer trace duration: no invocation series given")
        for function_id in missing:
            self._counts[function_id] = np.zeros(duration, dtype=np.int64)

        if duration is None:
            raise ValueError("a trace must contain at least one function")

        self._duration = int(duration)
        self._invocation_index: InvocationIndex | None = None
        self._fingerprint: str | None = None
        self.metadata = metadata or TraceMetadata(
            name="unnamed", duration_minutes=self._duration
        )
        if self.metadata.duration_minutes != self._duration:
            raise ValueError(
                "metadata.duration_minutes does not match the invocation series length"
            )

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def duration_minutes(self) -> int:
        """Number of one-minute slots in the trace."""
        return self._duration

    @property
    def duration_days(self) -> float:
        """Trace duration in days."""
        return self._duration / MINUTES_PER_DAY

    @property
    def function_ids(self) -> list[str]:
        """All function ids, in insertion order."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, function_id: object) -> bool:
        return function_id in self._records

    def __iter__(self) -> Iterator[str]:
        return iter(self._records)

    def record(self, function_id: str) -> FunctionRecord:
        """Return the static metadata for ``function_id``."""
        return self._records[function_id]

    def records(self) -> list[FunctionRecord]:
        """Return metadata for every function."""
        return list(self._records.values())

    def series(self, function_id: str) -> np.ndarray:
        """Return the invocation-count series for ``function_id`` (read-only view)."""
        view = self._counts[function_id].view()
        view.flags.writeable = False
        return view

    def total_invocations(self, function_id: str | None = None) -> int:
        """Total invocation count for one function, or the whole trace."""
        if function_id is not None:
            return int(self._counts[function_id].sum())
        return int(sum(int(series.sum()) for series in self._counts.values()))

    def invoked_function_ids(self) -> list[str]:
        """Ids of functions with at least one invocation in this trace."""
        return [fid for fid, series in self._counts.items() if series.any()]

    # ------------------------------------------------------------------ #
    # Identity and vectorized access
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Stable content hash of the trace (records + invocation matrix).

        Used to key on-disk result caches: two traces with the same
        fingerprint produce identical simulation results for the same policy
        and simulator settings.  The per-function metadata is included
        because policies condition on it (application grouping, trigger
        type); the trace-level metadata name is deliberately excluded so
        renaming a slice does not invalidate cached results.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(str(self._duration).encode())
            for function_id, series in self._counts.items():
                record = self._records[function_id]
                digest.update(
                    f"{function_id}\x1f{record.app_id}\x1f{record.owner_id}"
                    f"\x1f{record.trigger.value}\x1e".encode()
                )
                digest.update(series.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def invocation_index(self) -> InvocationIndex:
        """The cached :class:`InvocationIndex` of this trace.

        Built once per trace and shared across simulation runs, so sweeping
        many policies over the same window pays the trace scan only once.
        """
        if self._invocation_index is None:
            function_ids = tuple(self._counts)
            chunks_minutes: list[np.ndarray] = []
            chunks_findex: list[np.ndarray] = []
            chunks_counts: list[np.ndarray] = []
            for position, series in enumerate(self._counts.values()):
                nonzero = np.flatnonzero(series)
                if nonzero.size == 0:
                    continue
                chunks_minutes.append(nonzero)
                chunks_findex.append(np.full(nonzero.size, position, dtype=np.int64))
                chunks_counts.append(series[nonzero])
            if chunks_minutes:
                minutes = np.concatenate(chunks_minutes)
                findex = np.concatenate(chunks_findex)
                counts = np.concatenate(chunks_counts)
                # Stable sort keeps function insertion order within a minute,
                # matching the dict order produced by iter_minutes().
                order = np.argsort(minutes, kind="stable")
                minutes, findex, counts = minutes[order], findex[order], counts[order]
            else:
                minutes = np.zeros(0, dtype=np.int64)
                findex = np.zeros(0, dtype=np.int64)
                counts = np.zeros(0, dtype=np.int64)
            indptr = np.zeros(self._duration + 1, dtype=np.int64)
            np.cumsum(np.bincount(minutes, minlength=self._duration), out=indptr[1:])
            self._invocation_index = InvocationIndex(
                function_ids=function_ids,
                index_of={fid: i for i, fid in enumerate(function_ids)},
                indptr=indptr,
                indices=findex,
                counts=counts,
            )
        return self._invocation_index

    def __getstate__(self) -> Dict[str, object]:
        # The invocation index is cheap to rebuild and can triple the pickle
        # size; drop it so traces shipped to worker processes stay lean.
        state = dict(self.__dict__)
        state["_invocation_index"] = None
        return state

    # ------------------------------------------------------------------ #
    # Per-minute access used by the simulator
    # ------------------------------------------------------------------ #
    def invocations_at(self, minute: int) -> Dict[str, int]:
        """Return ``{function_id: count}`` for functions invoked at ``minute``.

        Functions with zero invocations at that minute are omitted, matching
        how the simulator and the provisioning policies consume the trace.
        """
        if not 0 <= minute < self._duration:
            raise IndexError(f"minute {minute} outside trace of {self._duration} minutes")
        result: Dict[str, int] = {}
        for function_id, series in self._counts.items():
            count = int(series[minute])
            if count > 0:
                result[function_id] = count
        return result

    def iter_minutes(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[tuple[int, Dict[str, int]]]:
        """Yield ``(minute, invocations)`` pairs over ``[start, stop)``.

        This pre-computes, per function, the minutes at which it is invoked,
        so iterating a long, sparse trace does not repeatedly scan every
        function's series.
        """
        stop = self._duration if stop is None else stop
        if not 0 <= start <= stop <= self._duration:
            raise IndexError("invalid minute range")

        per_minute: Dict[int, Dict[str, int]] = {}
        for function_id, series in self._counts.items():
            window = series[start:stop]
            for offset in np.nonzero(window)[0]:
                minute = start + int(offset)
                per_minute.setdefault(minute, {})[function_id] = int(window[offset])

        for minute in range(start, stop):
            yield minute, per_minute.get(minute, {})

    # ------------------------------------------------------------------ #
    # Grouping helpers used by application-grained policies and COR mining
    # ------------------------------------------------------------------ #
    def functions_by_app(self) -> Dict[str, list[str]]:
        """Group function ids by application id."""
        groups: Dict[str, list[str]] = {}
        for record in self._records.values():
            groups.setdefault(record.app_id, []).append(record.function_id)
        return groups

    def functions_by_owner(self) -> Dict[str, list[str]]:
        """Group function ids by owner (user) id."""
        groups: Dict[str, list[str]] = {}
        for record in self._records.values():
            groups.setdefault(record.owner_id, []).append(record.function_id)
        return groups

    def functions_by_trigger(self) -> Dict[str, list[str]]:
        """Group function ids by trigger type value."""
        groups: Dict[str, list[str]] = {}
        for record in self._records.values():
            groups.setdefault(record.trigger.value, []).append(record.function_id)
        return groups

    # ------------------------------------------------------------------ #
    # Slicing
    # ------------------------------------------------------------------ #
    def slice(self, start: int, stop: int, name: str | None = None) -> "Trace":
        """Return a new trace restricted to minutes ``[start, stop)``.

        Every function is retained, even those with no invocation in the
        window, so that "unseen during training" functions remain visible to
        downstream consumers.
        """
        if not 0 <= start < stop <= self._duration:
            raise ValueError(f"invalid slice [{start}, {stop}) for {self._duration} minutes")
        sliced = {fid: series[start:stop].copy() for fid, series in self._counts.items()}
        metadata = TraceMetadata(
            name=name or f"{self.metadata.name}[{start}:{stop}]",
            duration_minutes=stop - start,
            seed=self.metadata.seed,
            extra=dict(self.metadata.extra),
        )
        return Trace(self.records(), sliced, metadata)

    def _checked_shard_positions(self, positions: Sequence[int] | np.ndarray) -> np.ndarray:
        """Validate a function-position subset for :meth:`shard`.

        Positions must be strictly increasing: a shard preserves the parent's
        function insertion order, which is what keeps within-minute invocation
        order — and therefore every order-sensitive tie-break downstream —
        identical to the unsharded run restricted to the shard.
        """
        selected = np.asarray(positions, dtype=np.int64)
        if selected.ndim != 1 or selected.size == 0:
            raise ValueError("a shard needs at least one function position")
        if selected[0] < 0 or selected[-1] >= len(self._records):
            raise ValueError(
                f"shard positions outside [0, {len(self._records)}) function range"
            )
        if selected.size > 1 and (np.diff(selected) <= 0).any():
            raise ValueError("shard positions must be strictly increasing")
        return selected

    def shard(self, positions: Sequence[int] | np.ndarray, name: str | None = None) -> "Trace":
        """Return the sub-trace holding only the functions at ``positions``.

        The complement of :meth:`slice`: same minute range, a subset of the
        function population (by insertion-order position, strictly
        increasing).  Used by the sharded execution mode to hand each
        partition its own trace without densifying or copying the rest.
        """
        selected = self._checked_shard_positions(positions)
        all_ids = list(self._records)
        kept = {all_ids[p]: self._counts[all_ids[p]] for p in selected.tolist()}
        metadata = TraceMetadata(
            name=name or f"{self.metadata.name}/shard{selected.size}",
            duration_minutes=self._duration,
            seed=self.metadata.seed,
            extra=dict(self.metadata.extra),
        )
        return Trace([self._records[fid] for fid in kept], kept, metadata)


class SparseTrace(Trace):
    """A :class:`Trace` stored function-major sparse instead of dense.

    The dense container keeps one ``int64`` array per function covering every
    minute — perfect for the synthetic populations (hundreds of functions),
    impossible for the real Azure 2019 dataset, where 83k functions over 14
    days would be a ~13 GB dense matrix even though well under 2% of its
    entries are non-zero.  ``SparseTrace`` stores the same matrix as one CSR
    layout compressed along the *function* axis:

    ``fn_minutes[fn_indptr[i]:fn_indptr[i + 1]]`` are the minutes at which
    function ``i`` (in record insertion order) is invoked, strictly
    increasing, and ``fn_counts`` holds the matching invocation counts.

    Every :class:`Trace` consumer works unchanged: ``series()`` densifies one
    function on demand (one array, not the whole matrix),
    :meth:`invocation_index` transposes the CSR layout to the minute-major
    index the engines run on — with the same within-minute function order as
    the dense build, so simulation fingerprints cannot depend on which
    container carried the workload — and :meth:`slice`/:func:`split_trace`
    stay sparse end to end.

    The content :meth:`fingerprint` is computed from the sparse arrays
    directly (hashing 13 GB of implicit zeros would defeat the point) and
    additionally covers each record's measured duration profile, so sweep
    cache keys change when the dataset's duration files do.  It lives in a
    distinct ``sparse:`` domain: a sparse and a dense trace never share a
    fingerprint, which keeps cached results unambiguous about their source.
    """

    def __init__(
        self,
        records: Iterable[FunctionRecord],
        fn_indptr: np.ndarray,
        fn_minutes: np.ndarray,
        fn_counts: np.ndarray,
        duration: int,
        metadata: TraceMetadata | None = None,
    ) -> None:
        self._records = {}
        for record in records:
            if record.function_id in self._records:
                raise ValueError(f"duplicate function id: {record.function_id}")
            self._records[record.function_id] = record
        if not self._records:
            raise ValueError("a trace must contain at least one function")

        fn_indptr = np.ascontiguousarray(fn_indptr, dtype=np.int64)
        fn_minutes = np.ascontiguousarray(fn_minutes, dtype=np.int64)
        fn_counts = np.ascontiguousarray(fn_counts, dtype=np.int64)
        if fn_indptr.shape != (len(self._records) + 1,):
            raise ValueError("fn_indptr must have one entry per function plus one")
        if fn_indptr[0] != 0 or (np.diff(fn_indptr) < 0).any():
            raise ValueError("fn_indptr must be non-decreasing and start at 0")
        if fn_minutes.shape != fn_counts.shape or fn_minutes.ndim != 1:
            raise ValueError("fn_minutes and fn_counts must be 1-D and aligned")
        if fn_indptr[-1] != fn_minutes.shape[0]:
            raise ValueError("fn_indptr does not cover the fn_minutes entries")
        if int(duration) <= 0:
            raise ValueError("duration must be positive")
        if fn_minutes.size:
            if fn_minutes.min() < 0 or fn_minutes.max() >= int(duration):
                raise ValueError("fn_minutes outside the trace duration")
            if (fn_counts <= 0).any():
                raise ValueError("sparse entries must hold positive counts")
            # Strictly increasing within each function's row: the only
            # allowed non-positive jumps in the concatenated minute stream
            # are the resets at row boundaries.
            jumps = np.diff(fn_minutes) <= 0
            boundaries = np.zeros(fn_minutes.size - 1, dtype=bool)
            interior = fn_indptr[1:-1]
            boundaries[interior[(interior > 0) & (interior < fn_minutes.size)] - 1] = True
            if (jumps & ~boundaries).any():
                raise ValueError("fn_minutes must be strictly increasing per function")

        self._fn_indptr = fn_indptr
        self._fn_minutes = fn_minutes
        self._fn_counts = fn_counts
        self._duration = int(duration)
        self._invocation_index: InvocationIndex | None = None
        self._fingerprint: str | None = None
        self.metadata = metadata or TraceMetadata(
            name="unnamed", duration_minutes=self._duration
        )
        if self.metadata.duration_minutes != self._duration:
            raise ValueError(
                "metadata.duration_minutes does not match the declared duration"
            )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, trace: Trace) -> "SparseTrace":
        """Compress a dense :class:`Trace` (mostly useful in tests)."""
        records = trace.records()
        chunks_minutes: list[np.ndarray] = []
        chunks_counts: list[np.ndarray] = []
        lengths = np.zeros(len(records), dtype=np.int64)
        for position, record in enumerate(records):
            series = trace.series(record.function_id)
            nonzero = np.flatnonzero(series)
            lengths[position] = nonzero.size
            if nonzero.size:
                chunks_minutes.append(nonzero)
                chunks_counts.append(series[nonzero])
        indptr = np.zeros(len(records) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        minutes = (
            np.concatenate(chunks_minutes) if chunks_minutes else np.zeros(0, np.int64)
        )
        counts = (
            np.concatenate(chunks_counts) if chunks_counts else np.zeros(0, np.int64)
        )
        return cls(
            records, indptr, minutes, counts, trace.duration_minutes, trace.metadata
        )

    def densify(self) -> Trace:
        """The equivalent dense :class:`Trace` (small populations only)."""
        counts = {fid: np.array(self.series(fid)) for fid in self._records}
        return Trace(self.records(), counts, self.metadata)

    def _row(self, position: int) -> tuple[np.ndarray, np.ndarray]:
        start, stop = self._fn_indptr[position], self._fn_indptr[position + 1]
        return self._fn_minutes[start:stop], self._fn_counts[start:stop]

    def _position_of(self, function_id: str) -> int:
        cached = getattr(self, "_index_of", None)
        if cached is None:
            cached = {fid: i for i, fid in enumerate(self._records)}
            self._index_of = cached
        return cached[function_id]

    # ------------------------------------------------------------------ #
    # Overridden dense-storage accessors
    # ------------------------------------------------------------------ #
    def series(self, function_id: str) -> np.ndarray:
        """Densify one function's series on demand (not cached)."""
        minutes, counts = self._row(self._position_of(function_id))
        series = np.zeros(self._duration, dtype=np.int64)
        series[minutes] = counts
        series.flags.writeable = False
        return series

    def total_invocations(self, function_id: str | None = None) -> int:
        if function_id is not None:
            _, counts = self._row(self._position_of(function_id))
            return int(counts.sum())
        return int(self._fn_counts.sum())

    def invoked_function_ids(self) -> list[str]:
        active = np.diff(self._fn_indptr) > 0
        return [fid for position, fid in enumerate(self._records) if active[position]]

    def fingerprint(self) -> str:
        """Content hash over the sparse layout and per-function metadata.

        Unlike the dense fingerprint this also covers measured duration
        profiles and memory footprints: the real dataset's duration files
        feed the event engine and its ``app_memory_percentiles`` files feed
        MB-mode accounting, so two loads differing only in those joins must
        not share cached simulation results.  The memory field is appended
        only when present, keeping fingerprints of memory-less traces
        byte-identical to earlier releases.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(f"sparse:{self._duration}".encode())
            for record in self._records.values():
                duration = record.duration
                measured = (
                    f"{duration.cold_start_ms!r}:{duration.execution_ms!r}"
                    if duration is not None
                    else "-"
                )
                token = (
                    f"{record.function_id}\x1f{record.app_id}\x1f{record.owner_id}"
                    f"\x1f{record.trigger.value}\x1f{measured}"
                )
                if record.memory_mb is not None:
                    token += f"\x1f{record.memory_mb!r}"
                digest.update(f"{token}\x1e".encode())
            digest.update(self._fn_indptr.tobytes())
            digest.update(self._fn_minutes.tobytes())
            digest.update(self._fn_counts.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def invocation_index(self) -> InvocationIndex:
        """Transpose the function-major CSR into the minute-major index.

        The stable sort by minute preserves the function-major input order
        within each minute — i.e. function insertion order, exactly the
        order the dense build produces — so engines see identical per-minute
        function sequences whichever container loaded the trace.
        """
        if self._invocation_index is None:
            function_ids = tuple(self._records)
            findex = np.repeat(
                np.arange(len(function_ids), dtype=np.int64),
                np.diff(self._fn_indptr),
            )
            order = np.argsort(self._fn_minutes, kind="stable")
            minutes = self._fn_minutes[order]
            indptr = np.zeros(self._duration + 1, dtype=np.int64)
            np.cumsum(np.bincount(minutes, minlength=self._duration), out=indptr[1:])
            self._invocation_index = InvocationIndex(
                function_ids=function_ids,
                index_of={fid: i for i, fid in enumerate(function_ids)},
                indptr=indptr,
                indices=findex[order],
                counts=self._fn_counts[order],
            )
        return self._invocation_index

    def invocations_at(self, minute: int) -> Dict[str, int]:
        if not 0 <= minute < self._duration:
            raise IndexError(f"minute {minute} outside trace of {self._duration} minutes")
        index = self.invocation_index()
        start, stop = index.indptr[minute], index.indptr[minute + 1]
        return {
            index.function_ids[index.indices[position]]: int(index.counts[position])
            for position in range(start, stop)
        }

    def iter_minutes(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[tuple[int, Dict[str, int]]]:
        stop = self._duration if stop is None else stop
        if not 0 <= start <= stop <= self._duration:
            raise IndexError("invalid minute range")
        index = self.invocation_index()
        ids, indices, counts, indptr = (
            index.function_ids,
            index.indices,
            index.counts,
            index.indptr,
        )
        for minute in range(start, stop):
            yield minute, {
                ids[indices[position]]: int(counts[position])
                for position in range(indptr[minute], indptr[minute + 1])
            }

    def slice(self, start: int, stop: int, name: str | None = None) -> "SparseTrace":
        """Return the sparse sub-trace over minutes ``[start, stop)``."""
        if not 0 <= start < stop <= self._duration:
            raise ValueError(f"invalid slice [{start}, {stop}) for {self._duration} minutes")
        keep = (self._fn_minutes >= start) & (self._fn_minutes < stop)
        findex = np.repeat(
            np.arange(len(self._records), dtype=np.int64), np.diff(self._fn_indptr)
        )[keep]
        indptr = np.zeros(len(self._records) + 1, dtype=np.int64)
        np.cumsum(np.bincount(findex, minlength=len(self._records)), out=indptr[1:])
        metadata = TraceMetadata(
            name=name or f"{self.metadata.name}[{start}:{stop}]",
            duration_minutes=stop - start,
            seed=self.metadata.seed,
            extra=dict(self.metadata.extra),
        )
        return SparseTrace(
            self.records(),
            indptr,
            self._fn_minutes[keep] - start,
            self._fn_counts[keep],
            stop - start,
            metadata,
        )

    def shard(
        self, positions: Sequence[int] | np.ndarray, name: str | None = None
    ) -> "SparseTrace":
        """CSR row-gather of the functions at ``positions`` — never densifies.

        A pure row slice of the function-major layout: the selected rows'
        ``(minutes, counts)`` runs are gathered into a fresh CSR with a
        reindexed ``fn_indptr``, so sharding an 83k-function trace costs one
        ``np.repeat`` over the kept entries, independent of the population
        left behind.  Positions must be strictly increasing (see
        :meth:`Trace.shard` for why order preservation matters).
        """
        selected = self._checked_shard_positions(positions)
        starts = self._fn_indptr[selected]
        lengths = self._fn_indptr[selected + 1] - starts
        indptr = np.zeros(selected.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        total = int(indptr[-1])
        take = (
            np.repeat(starts - indptr[:-1], lengths)
            + np.arange(total, dtype=np.int64)
        )
        all_records = self.records()
        records = [all_records[p] for p in selected.tolist()]
        metadata = TraceMetadata(
            name=name or f"{self.metadata.name}/shard{selected.size}",
            duration_minutes=self._duration,
            seed=self.metadata.seed,
            extra=dict(self.metadata.extra),
        )
        return SparseTrace(
            records,
            indptr,
            self._fn_minutes[take],
            self._fn_counts[take],
            self._duration,
            metadata,
        )

    def __getstate__(self) -> Dict[str, object]:
        state = super().__getstate__()
        # The id -> position map rebuilds lazily; keep worker pickles lean.
        state.pop("_index_of", None)
        return state


@dataclass(frozen=True)
class TraceSplit:
    """A training/simulation split of a trace, as used in the paper (12 + 2 days)."""

    training: Trace
    simulation: Trace

    @property
    def unseen_function_ids(self) -> list[str]:
        """Functions invoked during simulation but never during training."""
        trained = set(self.training.invoked_function_ids())
        return [
            fid
            for fid in self.simulation.invoked_function_ids()
            if fid not in trained
        ]


def split_trace(trace: Trace, training_days: float = 12.0) -> TraceSplit:
    """Split ``trace`` into training and simulation windows.

    The paper uses the first 12 days of the 14-day Azure trace for pattern
    modelling and the final 2 days for simulation.

    Parameters
    ----------
    trace:
        The full trace to split.
    training_days:
        Number of days assigned to the training window.  Must leave at least
        one minute for simulation.
    """
    boundary = int(round(training_days * MINUTES_PER_DAY))
    if not 0 < boundary < trace.duration_minutes:
        raise ValueError(
            f"training_days={training_days} does not fit a trace of "
            f"{trace.duration_days:.2f} days"
        )
    training = trace.slice(0, boundary, name=f"{trace.metadata.name}-train")
    simulation = trace.slice(
        boundary, trace.duration_minutes, name=f"{trace.metadata.name}-sim"
    )
    return TraceSplit(training=training, simulation=simulation)
