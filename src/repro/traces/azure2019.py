"""Streaming ingestion of the real Azure Functions 2019 dataset.

The paper evaluates on the trace released with Shahrad et al. (ATC'20):
fourteen daily CSV files per file family, where day ``DD`` runs 01..14:

``invocations_per_function_md.anon.dDD.csv``
    ``HashOwner, HashApp, HashFunction, Trigger, 1, ..., 1440`` — per-minute
    invocation counts for every (owner, app, function) triple active that
    day.
``function_durations_percentiles.anon.dDD.csv``
    ``HashOwner, HashApp, HashFunction, Average, Count, Minimum, Maximum,
    percentile_Average_{0,1,25,50,75,99,100}`` — execution-duration
    statistics in milliseconds, weighted by ``Count``.
``app_memory_percentiles.anon.dDD.csv``
    ``HashOwner, HashApp, SampleCount, AverageAllocatedMb, ...`` — per-app
    allocated-memory percentiles in megabytes, weighted by ``SampleCount``.

At full scale (~83k functions x 14 days) the invocation matrix is ~13 GB
dense, so this module never materializes it: daily files are scanned twice
(once to *select* functions, once to *assemble* their sparse series) and the
result is a function-major :class:`~repro.traces.trace.SparseTrace` whose
:meth:`~repro.traces.trace.SparseTrace.invocation_index` feeds the engines
directly.  Duration percentiles are joined into per-function *measured*
:class:`~repro.traces.schema.DurationProfile`\\ s for the sub-minute event
engine; functions without a duration row fall back to the archetype/trigger
derivation in :func:`~repro.traces.archetypes.duration_profile_for`.
Memory percentiles are joined into per-function measured footprints
(``FunctionRecord.memory_mb``): the dataset reports memory per *app*, so
each app's allocation is fanned out equally over the functions the dataset
groups under it; functions whose app has no memory row keep
``memory_mb=None`` and MB-mode accounting falls back to its documented
default footprint.

Loads are cached on disk as ``.npz`` archives keyed by a content fingerprint
over the source files *and* the ingestion options, so re-running a sweep
against an unchanged dataset replays the cached arrays in milliseconds and
any edit to a CSV (or to the options) transparently re-ingests.

The downloader (:func:`fetch_azure2019`) is optional and never exercised by
tests: :func:`write_azure2019_fixture` emits miniature CSVs in the exact
dataset schema, so the whole pipeline runs hermetically in CI.
"""

from __future__ import annotations

import csv
import hashlib
import json
import re
import tarfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.traces.archetypes import TRIGGER_DURATION_PROFILES
from repro.traces.schema import (
    MINUTES_PER_DAY,
    DurationProfile,
    FunctionRecord,
    TraceMetadata,
    TriggerType,
)
from repro.traces.trace import SparseTrace

__all__ = [
    "AzureIngestError",
    "Azure2019Config",
    "Azure2019Dataset",
    "DATASET_URL",
    "DURATIONS_TEMPLATE",
    "INVOCATIONS_TEMPLATE",
    "MEMORY_PERCENTILES",
    "MEMORY_TEMPLATE",
    "fetch_azure2019",
    "iter_invocation_rows",
    "load_azure2019",
    "parse_trigger",
    "write_azure2019_fixture",
]

#: File-name templates of the three dataset file families (day is 1-based).
INVOCATIONS_TEMPLATE = "invocations_per_function_md.anon.d{day:02d}.csv"
DURATIONS_TEMPLATE = "function_durations_percentiles.anon.d{day:02d}.csv"
MEMORY_TEMPLATE = "app_memory_percentiles.anon.d{day:02d}.csv"

#: Number of daily files in the published dataset.
N_DAYS = 14

#: Public download location of the packed dataset (~1.9 GB compressed).
DATASET_URL = (
    "https://azurecloudpublicdataset2.blob.core.windows.net/"
    "azurepublicdatasetv2/azurefunctions_dataset2019/"
    "azurefunctions-dataset2019.tar.xz"
)

#: Version stamp of the on-disk cache layout; bump to invalidate old caches.
#: v2: archives carry a per-function ``memory_mb`` vector (NaN = no row).
CACHE_SCHEMA = 2

#: Percentile columns published by the app-memory file family.
MEMORY_PERCENTILES = (1, 5, 25, 50, 75, 95, 99, 100)

#: Mapping from the trace's ``Trigger`` column values to :class:`TriggerType`.
_TRIGGER_ALIASES: Dict[str, TriggerType] = {
    "http": TriggerType.HTTP,
    "timer": TriggerType.TIMER,
    "queue": TriggerType.QUEUE,
    "storage": TriggerType.STORAGE,
    "blob": TriggerType.STORAGE,
    "event": TriggerType.EVENT,
    "eventhub": TriggerType.EVENT,
    "orchestration": TriggerType.ORCHESTRATION,
    "durable": TriggerType.ORCHESTRATION,
    "others": TriggerType.OTHERS,
    "other": TriggerType.OTHERS,
    "combination": TriggerType.COMBINATION,
}


class AzureIngestError(ValueError):
    """A dataset file that cannot be parsed safely (truncated, garbled...)."""


def parse_trigger(raw: str) -> TriggerType:
    """Map a raw trigger string from the CSV to a :class:`TriggerType`.

    Unknown trigger labels are mapped to :attr:`TriggerType.OTHERS` rather
    than rejected, since the public trace contains a long tail of trigger
    variants.
    """
    return _TRIGGER_ALIASES.get(raw.strip().lower(), TriggerType.OTHERS)


# --------------------------------------------------------------------- #
# Row-level streaming reader (shared with the legacy azure_loader)
# --------------------------------------------------------------------- #
def iter_invocation_rows(
    path: str | Path,
    on_malformed: str = "error",
) -> Iterator[Tuple[int, str, str, str, str, np.ndarray, np.ndarray]]:
    """Stream one daily invocation CSV as sparse per-row entries.

    Yields ``(line, owner, app, func, trigger, minutes, counts)`` per data
    row, where ``minutes``/``counts`` hold only the row's non-zero entries
    (0-based minute offsets within the day, clamped to
    :data:`~repro.traces.schema.MINUTES_PER_DAY` columns).  The file is never
    materialized whole: one row is parsed at a time, with the per-minute
    conversion vectorized over the row.

    ``on_malformed`` controls rows with fewer than the four id columns:
    ``"error"`` (the strict dataset path) raises :class:`AzureIngestError`
    naming the file and line — a truncated download should fail loudly —
    while ``"skip"`` (the legacy loader's documented fallback) drops them.
    Non-numeric or negative counts always raise: silently guessing a count
    would corrupt every downstream statistic.
    """
    if on_malformed not in ("error", "skip"):
        raise ValueError("on_malformed must be 'error' or 'skip'")
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return
        minute_columns = len(header) - 4
        if minute_columns <= 0:
            raise AzureIngestError(
                f"{path.name}: expected minute columns after the 4 id columns"
            )
        usable = min(minute_columns, MINUTES_PER_DAY)
        for line, row in enumerate(reader, start=2):
            if not any(field.strip() for field in row):
                continue  # blank line
            if len(row) < 4:
                if on_malformed == "skip":
                    continue
                raise AzureIngestError(
                    f"{path.name}:{line}: truncated row "
                    f"({len(row)} column(s), expected at least 4)"
                )
            fields = np.asarray(row[4 : 4 + usable])
            mask = (fields != "0") & (fields != "")
            if mask.any():
                try:
                    values = fields[mask].astype(np.float64)
                except ValueError as error:
                    raise AzureIngestError(
                        f"{path.name}:{line}: invalid invocation count ({error})"
                    ) from None
                if (values < 0).any():
                    raise AzureIngestError(
                        f"{path.name}:{line}: negative invocation count"
                    )
                counts = values.astype(np.int64)
                nonzero = counts > 0
                minutes = np.flatnonzero(mask)[nonzero]
                counts = counts[nonzero]
            else:
                minutes = np.zeros(0, dtype=np.int64)
                counts = np.zeros(0, dtype=np.int64)
            yield line, row[0], row[1], row[2], row[3], minutes, counts


def day_number(path: str | Path) -> int | None:
    """The 1-based day a dataset file name encodes, or ``None``.

    Matches both the published names (``...anon.d07.csv``) and the short
    ``d07.csv`` spelling used throughout the test fixtures.
    """
    match = re.search(r"d(\d{2})\.csv$", Path(path).name)
    return int(match.group(1)) if match else None


# --------------------------------------------------------------------- #
# Ingestion options
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Azure2019Config:
    """Options of one ingestion pass (participates in the cache key).

    Attributes
    ----------
    days:
        1-based dataset days to load, in ascending order.  The loaded trace
        concatenates exactly these days; day-range *slicing* is therefore a
        property of the load, not a post-processing step.
    triggers:
        Optional trigger filter: keep only functions whose (first-seen)
        trigger parses to one of these :class:`TriggerType` values.  Accepts
        the enum members or their string values.
    selection / max_functions:
        ``"all"`` keeps every surviving function (optionally capped at
        ``max_functions`` in first-seen order); ``"top"`` keeps the
        ``max_functions`` most-invoked ones; ``"sample"`` draws
        ``max_functions`` uniformly with ``seed``.  Either way the loaded
        trace lists functions in dataset first-seen order, so the CSR layout
        is reproducible.
    seed:
        Seed of the ``"sample"`` selection draw (ignored otherwise).
    min_invocations:
        Drop functions with fewer total invocations across the loaded days.
    join_durations:
        When True (default), join the duration-percentile files into
        per-function measured :class:`DurationProfile`\\ s.  Functions
        without a duration row keep ``duration=None`` and fall back to the
        archetype/trigger derivation — the documented degradation for the
        dataset's partial coverage.
    join_memory:
        When True (default), join the app-memory-percentile files into
        per-function measured footprints (``FunctionRecord.memory_mb``).
        The dataset reports memory per *app*: the app's
        ``SampleCount``-weighted mean across the loaded days is divided
        equally over the functions the dataset groups under that app.
        Functions whose app has no memory row keep ``memory_mb=None``.
    memory_percentile:
        Which column of the memory family feeds the join: ``"average"``
        (default, the ``AverageAllocatedMb`` column) or one of the published
        percentiles in :data:`MEMORY_PERCENTILES` (e.g. ``95`` selects
        ``AverageAllocatedMb_pct95``).
    """

    days: Tuple[int, ...] = tuple(range(1, N_DAYS + 1))
    triggers: Tuple[str, ...] | None = None
    selection: str = "all"
    max_functions: int | None = None
    seed: int = 0
    min_invocations: int = 0
    join_durations: bool = True
    join_memory: bool = True
    memory_percentile: str | int = "average"

    def __post_init__(self) -> None:
        days = tuple(int(day) for day in self.days)
        if not days:
            raise ValueError("at least one dataset day is required")
        if len(set(days)) != len(days):
            raise ValueError(f"duplicate days in {days}")
        if any(day < 1 for day in days):
            raise ValueError("dataset days are 1-based")
        object.__setattr__(self, "days", tuple(sorted(days)))
        if self.selection not in ("all", "top", "sample"):
            raise ValueError("selection must be 'all', 'top' or 'sample'")
        if self.selection in ("top", "sample") and self.max_functions is None:
            raise ValueError(f"selection={self.selection!r} requires max_functions")
        if self.max_functions is not None and self.max_functions <= 0:
            raise ValueError("max_functions must be positive")
        if self.triggers is not None:
            normalized = tuple(
                sorted(
                    trigger.value if isinstance(trigger, TriggerType) else str(trigger)
                    for trigger in self.triggers
                )
            )
            valid = {trigger.value for trigger in TriggerType}
            unknown = set(normalized) - valid
            if unknown:
                raise ValueError(
                    f"unknown trigger filter(s) {sorted(unknown)}; valid: {sorted(valid)}"
                )
            object.__setattr__(self, "triggers", normalized)
        if self.memory_percentile != "average":
            if (
                isinstance(self.memory_percentile, bool)
                or not isinstance(self.memory_percentile, int)
                or self.memory_percentile not in MEMORY_PERCENTILES
            ):
                raise ValueError(
                    "memory_percentile must be 'average' or one of "
                    f"{list(MEMORY_PERCENTILES)}"
                )

    @property
    def duration_minutes(self) -> int:
        """Minutes the loaded trace spans (selected days, concatenated)."""
        return len(self.days) * MINUTES_PER_DAY

    def canonical(self) -> str:
        """Stable JSON form, hashed into the cache key."""
        return json.dumps(
            {
                "days": list(self.days),
                "triggers": list(self.triggers) if self.triggers else None,
                "selection": self.selection,
                "max_functions": self.max_functions,
                "seed": self.seed,
                "min_invocations": self.min_invocations,
                "join_durations": self.join_durations,
                "join_memory": self.join_memory,
                "memory_percentile": self.memory_percentile,
            },
            sort_keys=True,
        )


# --------------------------------------------------------------------- #
# The dataset handle: resolve files, fingerprint, load (with cache)
# --------------------------------------------------------------------- #
class Azure2019Dataset:
    """Handle on a directory holding the Azure 2019 CSV files.

    Parameters
    ----------
    root:
        Directory with the daily CSVs (as produced by :func:`fetch_azure2019`
        or :func:`write_azure2019_fixture`).
    cache_dir:
        Where ingested ``.npz`` archives live.  ``"auto"`` (default) uses
        ``<root>/.spes-cache``; ``None`` disables on-disk caching entirely.
    """

    def __init__(
        self, root: str | Path, cache_dir: str | Path | None = "auto"
    ) -> None:
        self.root = Path(root)
        if cache_dir == "auto":
            self.cache_dir: Path | None = self.root / ".spes-cache"
        else:
            self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._digest_memo: Dict[str, Dict[str, object]] | None = None

    # -------------------------- file resolution ----------------------- #
    def invocation_path(self, day: int) -> Path:
        return self.root / INVOCATIONS_TEMPLATE.format(day=day)

    def durations_path(self, day: int) -> Path:
        return self.root / DURATIONS_TEMPLATE.format(day=day)

    def memory_path(self, day: int) -> Path:
        return self.root / MEMORY_TEMPLATE.format(day=day)

    def available_days(self) -> List[int]:
        """Days whose invocation file is present under ``root``."""
        days = []
        for path in self.root.glob("invocations_per_function_md.anon.d*.csv"):
            day = day_number(path)
            if day is not None:
                days.append(day)
        return sorted(days)

    def _resolve(self, config: Azure2019Config) -> List[Tuple[int, Path]]:
        missing = [
            day for day in config.days if not self.invocation_path(day).is_file()
        ]
        if missing:
            available = self.available_days()
            raise AzureIngestError(
                f"{self.root}: missing invocation file(s) for day(s) {missing} "
                f"(available: {available or 'none'}; "
                f"see `spes-repro azure fetch`)"
            )
        return [(day, self.invocation_path(day)) for day in config.days]

    # ----------------------------- identity --------------------------- #
    def _file_digest(self, path: Path) -> str:
        """SHA-256 of one source file, memoized by (size, mtime) on disk."""
        stat = path.stat()
        key = str(path.resolve())
        if self._digest_memo is None:
            self._digest_memo = {}
            if self.cache_dir is not None:
                memo_path = self.cache_dir / "file-digests.json"
                try:
                    self._digest_memo = dict(json.loads(memo_path.read_text()))
                except (OSError, json.JSONDecodeError, TypeError):
                    self._digest_memo = {}
        entry = self._digest_memo.get(key)
        if (
            isinstance(entry, dict)
            and entry.get("size") == stat.st_size
            and entry.get("mtime_ns") == stat.st_mtime_ns
        ):
            return str(entry["sha256"])
        digest = hashlib.sha256()
        with path.open("rb") as handle:
            for block in iter(lambda: handle.read(1 << 20), b""):
                digest.update(block)
        self._digest_memo[key] = {
            "size": stat.st_size,
            "mtime_ns": stat.st_mtime_ns,
            "sha256": digest.hexdigest(),
        }
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            memo_path = self.cache_dir / "file-digests.json"
            memo_path.write_text(json.dumps(self._digest_memo, indent=1))
        return self._digest_memo[key]["sha256"]  # type: ignore[index]

    def fingerprint(self, config: Azure2019Config | None = None) -> str:
        """Content fingerprint of (source files x ingestion options).

        This is the dataset identity that flows into trace metadata and —
        via :meth:`~repro.traces.trace.SparseTrace.fingerprint` — into sweep
        cache keys: editing any source CSV or any option yields a new key.
        """
        config = config or Azure2019Config()
        digest = hashlib.sha256()
        digest.update(f"azure2019-cache-v{CACHE_SCHEMA}\x1e".encode())
        digest.update(config.canonical().encode())
        for day, path in self._resolve(config):
            digest.update(f"\x1ed{day:02d}:{self._file_digest(path)}".encode())
            if config.join_durations:
                durations = self.durations_path(day)
                if durations.is_file():
                    digest.update(f":{self._file_digest(durations)}".encode())
            if config.join_memory:
                memory = self.memory_path(day)
                if memory.is_file():
                    digest.update(f":m{self._file_digest(memory)}".encode())
        return digest.hexdigest()

    # ------------------------------- load ------------------------------ #
    def load(self, config: Azure2019Config | None = None) -> SparseTrace:
        """Ingest (or replay from cache) one configuration of the dataset."""
        config = config or Azure2019Config()
        day_paths = self._resolve(config)
        fingerprint = self.fingerprint(config)
        cache_path = (
            self.cache_dir / f"azure2019-{fingerprint[:24]}.npz"
            if self.cache_dir is not None
            else None
        )
        if cache_path is not None and cache_path.is_file():
            cached = _load_cached_trace(cache_path, fingerprint)
            if cached is not None:
                return cached
        trace = _ingest(self, config, day_paths, fingerprint)
        if cache_path is not None:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            _save_cached_trace(cache_path, trace, fingerprint)
        return trace


def load_azure2019(
    root: str | Path,
    cache_dir: str | Path | None = "auto",
    **options: object,
) -> SparseTrace:
    """One-call convenience: ``Azure2019Dataset(root).load(Config(**options))``."""
    return Azure2019Dataset(root, cache_dir=cache_dir).load(Azure2019Config(**options))


# --------------------------------------------------------------------- #
# Two-pass streaming ingestion
# --------------------------------------------------------------------- #
def _ingest(
    dataset: Azure2019Dataset,
    config: Azure2019Config,
    day_paths: Sequence[Tuple[int, Path]],
    fingerprint: str,
) -> SparseTrace:
    # Pass 1 — selection scan: first-seen order, first-seen trigger, totals.
    # ~83k live entries at full scale: the per-function ledger fits easily;
    # it is the per-minute matrix that must never go dense.
    stats: Dict[Tuple[str, str, str], List[object]] = {}
    for _, path in day_paths:
        for _, owner, app, func, trigger, _, counts in iter_invocation_rows(path):
            key = (owner, app, func)
            entry = stats.get(key)
            if entry is None:
                stats[key] = [len(stats), trigger, int(counts.sum())]
            else:
                entry[2] += int(counts.sum())
    if not stats:
        raise AzureIngestError(
            f"{dataset.root}: no functions found in day(s) {list(config.days)}"
        )

    selected = _select_functions(stats, config)
    if not selected:
        raise AzureIngestError(
            "function selection left nothing: filters "
            f"(triggers={config.triggers}, min_invocations={config.min_invocations}) "
            "rejected every function"
        )
    index_of = {key: position for position, key in enumerate(selected)}

    # Pass 2 — assembly: per-day sparse entries in (function, minute) COO
    # form, then one sort into the function-major CSR layout.
    day_offset = {day: slot * MINUTES_PER_DAY for slot, (day, _) in enumerate(day_paths)}
    duration = config.duration_minutes
    coo_func: List[np.ndarray] = []
    coo_minute: List[np.ndarray] = []
    coo_count: List[np.ndarray] = []
    for day, path in day_paths:
        offset = day_offset[day]
        for _, owner, app, func, _, minutes, counts in iter_invocation_rows(path):
            position = index_of.get((owner, app, func))
            if position is None or minutes.size == 0:
                continue
            coo_func.append(np.full(minutes.size, position, dtype=np.int64))
            coo_minute.append(minutes + offset)
            coo_count.append(counts)

    n = len(selected)
    if coo_func:
        func_idx = np.concatenate(coo_func)
        minute_idx = np.concatenate(coo_minute)
        count_val = np.concatenate(coo_count)
        # Duplicate rows for one function (present in the raw dataset) are
        # summed; np.unique both orders the keys function-major and exposes
        # the duplicate groups.
        keys = func_idx * np.int64(duration) + minute_idx
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        summed = np.bincount(inverse, weights=count_val).astype(np.int64)
        fn_minutes = unique_keys % duration
        fn_rows = unique_keys // duration
        fn_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(fn_rows, minlength=n), out=fn_indptr[1:])
        fn_counts = summed
    else:
        fn_minutes = np.zeros(0, dtype=np.int64)
        fn_counts = np.zeros(0, dtype=np.int64)
        fn_indptr = np.zeros(n + 1, dtype=np.int64)

    trigger_of = {
        position: parse_trigger(str(stats[key][1]))
        for key, position in index_of.items()
    }
    durations = (
        _join_duration_profiles(dataset, config, index_of, trigger_of)
        if config.join_durations
        else {}
    )
    if config.join_memory:
        # Fan-out denominator: how many functions the *dataset* groups under
        # each app (pass-1 ledger, before any filter/selection) — the app's
        # allocation covers all of them, whether or not they were selected.
        app_sizes: Dict[Tuple[str, str], int] = {}
        for owner, app, _func in stats:
            app_sizes[(owner, app)] = app_sizes.get((owner, app), 0) + 1
        footprints = _join_memory_footprints(dataset, config, index_of, app_sizes)
    else:
        footprints = {}
    records = []
    for (owner, app, func), position in index_of.items():
        records.append(
            FunctionRecord(
                function_id=f"{owner}:{app}:{func}",
                app_id=f"{owner}:{app}",
                owner_id=owner,
                trigger=trigger_of[position],
                duration=durations.get(position),
                memory_mb=footprints.get(position),
            )
        )

    first, last = config.days[0], config.days[-1]
    metadata = TraceMetadata(
        name=f"azure2019-d{first:02d}-d{last:02d}",
        duration_minutes=duration,
        extra={
            "source": "azure2019",
            "root": str(dataset.root),
            "days": list(config.days),
            "dataset_fingerprint": fingerprint,
            "selection": config.selection,
        },
    )
    return SparseTrace(records, fn_indptr, fn_minutes, fn_counts, duration, metadata)


def _select_functions(
    stats: Dict[Tuple[str, str, str], List[object]],
    config: Azure2019Config,
) -> List[Tuple[str, str, str]]:
    """Apply trigger/volume filters and the selection mode, preserving
    dataset first-seen order in the result."""
    allowed = set(config.triggers) if config.triggers is not None else None
    eligible: List[Tuple[int, int, Tuple[str, str, str]]] = []
    for key, (order, trigger, total) in stats.items():
        if int(total) < config.min_invocations:
            continue
        if allowed is not None and parse_trigger(str(trigger)).value not in allowed:
            continue
        eligible.append((int(order), int(total), key))
    eligible.sort()  # first-seen order

    if config.selection == "top":
        ranked = sorted(eligible, key=lambda item: (-item[1], item[0]))
        chosen = sorted(ranked[: config.max_functions])
    elif config.selection == "sample":
        if len(eligible) > config.max_functions:
            rng = np.random.default_rng(config.seed)
            picks = rng.choice(
                len(eligible), size=config.max_functions, replace=False
            )
            chosen = [eligible[i] for i in sorted(int(i) for i in picks)]
        else:
            chosen = eligible
    else:  # "all"
        chosen = eligible
        if config.max_functions is not None:
            chosen = chosen[: config.max_functions]
    return [key for _, _, key in chosen]


def _join_duration_profiles(
    dataset: Azure2019Dataset,
    config: Azure2019Config,
    index_of: Dict[Tuple[str, str, str], int],
    trigger_of: Dict[int, TriggerType],
) -> Dict[int, DurationProfile]:
    """Join the duration-percentile files into measured profiles.

    Execution time is the ``Count``-weighted mean of each day's ``Average``
    column.  The dataset publishes no provisioning (cold-start) latency, so
    the cold-start side keeps the trigger-level model from
    :data:`~repro.traces.archetypes.TRIGGER_DURATION_PROFILES` — measured
    where the dataset measures, modeled where it does not.  Missing files
    and missing rows are legitimate (the duration families cover fewer
    functions than the invocation files): affected functions simply keep
    ``duration=None``.
    """
    weighted: Dict[int, List[float]] = {}
    for day in config.days:
        path = dataset.durations_path(day)
        if not path.is_file():
            continue
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                continue
            try:
                average_col = header.index("Average")
                count_col = header.index("Count")
            except ValueError:
                raise AzureIngestError(
                    f"{path.name}: missing Average/Count columns in header"
                ) from None
            needed = max(average_col, count_col)
            for line, row in enumerate(reader, start=2):
                if len(row) <= needed:
                    continue
                position = index_of.get((row[0], row[1], row[2]))
                if position is None:
                    continue
                try:
                    average = float(row[average_col])
                    count = float(row[count_col])
                except ValueError:
                    raise AzureIngestError(
                        f"{path.name}:{line}: invalid duration statistics"
                    ) from None
                if count <= 0 or average < 0:
                    continue
                entry = weighted.setdefault(position, [0.0, 0.0])
                entry[0] += average * count
                entry[1] += count

    fallback = DurationProfile()
    return {
        position: DurationProfile(
            cold_start_ms=TRIGGER_DURATION_PROFILES.get(
                trigger_of[position].value, fallback
            ).cold_start_ms,
            execution_ms=max(total / count, 0.001),
        )
        for position, (total, count) in weighted.items()
        if count > 0
    }


def _join_memory_footprints(
    dataset: Azure2019Dataset,
    config: Azure2019Config,
    index_of: Dict[Tuple[str, str, str], int],
    app_sizes: Dict[Tuple[str, str], int],
) -> Dict[int, float]:
    """Join the app-memory-percentile files into per-function footprints.

    The memory family is keyed by *(owner, app)* — the dataset never
    publishes per-function memory — so the chosen column
    (``AverageAllocatedMb`` or a percentile, see
    :attr:`Azure2019Config.memory_percentile`) is first reduced to one
    ``SampleCount``-weighted mean per app across the loaded days, then
    fanned out equally over the ``app_sizes`` functions the dataset groups
    under that app.  Missing files and missing app rows are legitimate (the
    memory family covers fewer apps than the invocation files): affected
    functions simply keep ``memory_mb=None``, and MB-mode accounting falls
    back to its default footprint.
    """
    column = (
        "AverageAllocatedMb"
        if config.memory_percentile == "average"
        else f"AverageAllocatedMb_pct{config.memory_percentile}"
    )
    wanted = {(owner, app) for owner, app, _func in index_of}
    weighted: Dict[Tuple[str, str], List[float]] = {}
    for day in config.days:
        path = dataset.memory_path(day)
        if not path.is_file():
            continue
        with path.open(newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None:
                continue
            try:
                value_col = header.index(column)
                count_col = header.index("SampleCount")
            except ValueError:
                raise AzureIngestError(
                    f"{path.name}: missing {column}/SampleCount columns in header"
                ) from None
            needed = max(value_col, count_col)
            for line, row in enumerate(reader, start=2):
                if len(row) <= needed:
                    continue
                key = (row[0], row[1])
                if key not in wanted:
                    continue
                try:
                    value = float(row[value_col])
                    count = float(row[count_col])
                except ValueError:
                    raise AzureIngestError(
                        f"{path.name}:{line}: invalid memory statistics"
                    ) from None
                if count <= 0 or value <= 0:
                    continue
                entry = weighted.setdefault(key, [0.0, 0.0])
                entry[0] += value * count
                entry[1] += count

    footprints: Dict[int, float] = {}
    for (owner, app, _func), position in index_of.items():
        entry = weighted.get((owner, app))
        if entry is None or entry[1] <= 0:
            continue
        fan_out = max(app_sizes.get((owner, app), 1), 1)
        footprints[position] = (entry[0] / entry[1]) / fan_out
    return footprints


# --------------------------------------------------------------------- #
# On-disk cache (one .npz archive per (files x options) fingerprint)
# --------------------------------------------------------------------- #
def _save_cached_trace(path: Path, trace: SparseTrace, fingerprint: str) -> None:
    records = trace.records()
    durations = np.full((len(records), 2), np.nan)
    memory_mb = np.full(len(records), np.nan)
    for position, record in enumerate(records):
        if record.duration is not None:
            durations[position] = (
                record.duration.cold_start_ms,
                record.duration.execution_ms,
            )
        if record.memory_mb is not None:
            memory_mb[position] = record.memory_mb
    meta = {
        "schema": CACHE_SCHEMA,
        "fingerprint": fingerprint,
        "name": trace.metadata.name,
        "duration_minutes": trace.duration_minutes,
        "extra": trace.metadata.extra,
    }
    tmp = path.with_suffix(".tmp.npz")
    np.savez_compressed(
        tmp,
        fn_indptr=trace._fn_indptr,
        fn_minutes=trace._fn_minutes,
        fn_counts=trace._fn_counts,
        owners=np.asarray([record.owner_id for record in records]),
        apps=np.asarray([record.app_id for record in records]),
        function_ids=np.asarray([record.function_id for record in records]),
        triggers=np.asarray([record.trigger.value for record in records]),
        durations=durations,
        memory_mb=memory_mb,
        meta=np.asarray(json.dumps(meta)),
    )
    tmp.replace(path)


def _load_cached_trace(path: Path, fingerprint: str) -> SparseTrace | None:
    """Replay one cached load; ``None`` (re-ingest) on any mismatch."""
    try:
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"]))
            if meta.get("schema") != CACHE_SCHEMA or meta.get("fingerprint") != fingerprint:
                return None
            # Materialize each member once: indexing the archive re-reads
            # (and re-inflates) the whole compressed array every time.
            durations = archive["durations"]
            memory_mb = archive["memory_mb"]
            function_ids = archive["function_ids"]
            apps = archive["apps"]
            owners = archive["owners"]
            triggers = archive["triggers"]
            records = []
            for position, function_id in enumerate(function_ids):
                cold, execution = durations[position]
                footprint = memory_mb[position]
                records.append(
                    FunctionRecord(
                        function_id=str(function_id),
                        app_id=str(apps[position]),
                        owner_id=str(owners[position]),
                        trigger=TriggerType(str(triggers[position])),
                        duration=(
                            None
                            if np.isnan(cold)
                            else DurationProfile(float(cold), float(execution))
                        ),
                        memory_mb=(
                            None if np.isnan(footprint) else float(footprint)
                        ),
                    )
                )
            metadata = TraceMetadata(
                name=str(meta["name"]),
                duration_minutes=int(meta["duration_minutes"]),
                extra=dict(meta.get("extra", {})),
            )
            return SparseTrace(
                records,
                archive["fn_indptr"],
                archive["fn_minutes"],
                archive["fn_counts"],
                int(meta["duration_minutes"]),
                metadata,
            )
    except (OSError, KeyError, ValueError, json.JSONDecodeError):
        return None


# --------------------------------------------------------------------- #
# Optional downloader (never exercised by tests)
# --------------------------------------------------------------------- #
def fetch_azure2019(
    dest: str | Path,
    url: str = DATASET_URL,
    force: bool = False,
    progress: Callable[[str], None] = print,
) -> Path:
    """Download and unpack the dataset archive into ``dest``.

    Network access is required (roughly 1.9 GB compressed); the function is
    a convenience for ``spes-repro azure fetch`` and nothing in the library
    or test suite depends on it.  Extraction only accepts plain ``*.csv``
    members with safe relative names.
    """
    import urllib.request

    dest = Path(dest)
    dest.mkdir(parents=True, exist_ok=True)
    existing = Azure2019Dataset(dest, cache_dir=None).available_days()
    if existing and not force:
        progress(
            f"{dest} already holds day(s) {existing}; use --force to re-download"
        )
        return dest
    archive_path = dest / Path(url).name
    progress(f"downloading {url} -> {archive_path}")
    with urllib.request.urlopen(url) as response, archive_path.open("wb") as out:
        while True:
            block = response.read(1 << 20)
            if not block:
                break
            out.write(block)
    progress(f"unpacking {archive_path.name}")
    with tarfile.open(archive_path) as archive:
        for member in archive.getmembers():
            name = Path(member.name).name
            if not member.isfile() or not name.endswith(".csv") or name.startswith("."):
                continue
            source = archive.extractfile(member)
            if source is None:
                continue
            with (dest / name).open("wb") as out:
                while True:
                    block = source.read(1 << 20)
                    if not block:
                        break
                    out.write(block)
    progress(f"dataset ready under {dest}")
    return dest


# --------------------------------------------------------------------- #
# Deterministic fixture generator (the hermetic CI path)
# --------------------------------------------------------------------- #
#: Raw trigger labels the fixture draws from, with a deliberate unknown
#: label in the tail so the OTHERS fallback is exercised end to end.
_FIXTURE_TRIGGERS = (
    ("http", 0.42),
    ("timer", 0.27),
    ("queue", 0.14),
    ("blob", 0.05),
    ("eventhub", 0.04),
    ("durable", 0.05),
    ("cosmosDBTrigger", 0.03),
)


def _fixture_hash(seed: int, kind: str, index: int) -> str:
    """A dataset-shaped anonymized id (stable hex, like the real hashes)."""
    return hashlib.md5(f"spes:{seed}:{kind}:{index}".encode()).hexdigest()


def _fixture_series(
    rng: np.random.Generator, shape: str, params: Dict[str, float]
) -> np.ndarray:
    """One function-day of per-minute counts for one behaviour shape."""
    series = np.zeros(MINUTES_PER_DAY, dtype=np.int64)
    if shape == "periodic":
        period = int(params["period"])
        phase = int(rng.integers(0, period))
        series[phase::period] = 1
    elif shape == "poisson":
        series[:] = rng.poisson(params["rate"], MINUTES_PER_DAY)
    elif shape == "bursty":
        for _ in range(int(params["bursts"])):
            start = int(rng.integers(0, MINUTES_PER_DAY - 30))
            length = int(rng.integers(5, 30))
            series[start : start + length] += rng.poisson(
                3.0, length
            ).astype(np.int64)
    else:  # "rare"
        for minute in rng.integers(0, MINUTES_PER_DAY, size=int(params["hits"])):
            series[int(minute)] += 1
    return series


def write_azure2019_fixture(
    dest: str | Path,
    n_functions: int = 24,
    days: int = 2,
    seed: int = 2024,
    start_day: int = 1,
    duration_files: bool = True,
    memory_files: bool = True,
    missing_duration_fraction: float = 0.15,
    missing_memory_fraction: float = 0.0,
) -> List[Path]:
    """Write miniature CSVs in the exact Azure 2019 schema.

    Deterministic in every parameter: the same call always produces
    byte-identical files, so fixture-backed scenarios and golden tests are
    as reproducible as the synthetic generator.  Every function appears in
    every day's invocation file (possibly with an all-zero row), mirroring
    the registry semantics the loader documents — a function can exist
    without being invoked.

    A ``missing_duration_fraction`` of functions is deliberately left out of
    the duration files to exercise the archetype-fallback path, and one
    trigger label in the pool is unknown to exercise the OTHERS mapping.
    ``missing_memory_fraction`` drops that fraction of *apps* from every
    day's memory file (deterministically, by app id) so the
    missing-app-row → default-footprint fallback of the memory join is
    exercisable; the default of 0.0 keeps historical fixtures byte-identical.

    Returns the list of written file paths.
    """
    if days < 1:
        raise ValueError("days must be >= 1")
    if n_functions < 1:
        raise ValueError("n_functions must be >= 1")
    if not 0.0 <= missing_memory_fraction <= 1.0:
        raise ValueError("missing_memory_fraction must be in [0, 1]")
    dest = Path(dest)
    dest.mkdir(parents=True, exist_ok=True)

    labels = [label for label, _ in _FIXTURE_TRIGGERS]
    weights = np.asarray([weight for _, weight in _FIXTURE_TRIGGERS])
    weights = weights / weights.sum()
    shapes = ("poisson", "periodic", "bursty", "rare")
    shape_weights = np.asarray([0.35, 0.30, 0.15, 0.20])

    functions = []
    for i in range(n_functions):
        rng = np.random.default_rng([seed, 11, i])
        shape = shapes[int(rng.choice(len(shapes), p=shape_weights))]
        functions.append(
            {
                "owner": _fixture_hash(seed, "owner", i // 6),
                "app": _fixture_hash(seed, "app", i // 3),
                "func": _fixture_hash(seed, "func", i),
                "trigger": labels[int(rng.choice(len(labels), p=weights))],
                "shape": shape,
                "params": {
                    "period": float(rng.integers(10, 240)),
                    "rate": float(rng.uniform(0.02, 0.8)),
                    "bursts": float(rng.integers(1, 4)),
                    "hits": float(rng.integers(1, 5)),
                },
                "exec_ms": float(rng.lognormal(np.log(120.0), 0.8)),
                "has_duration_row": bool(
                    rng.random() >= missing_duration_fraction
                ),
            }
        )

    header = ["HashOwner", "HashApp", "HashFunction", "Trigger"] + [
        str(minute) for minute in range(1, MINUTES_PER_DAY + 1)
    ]
    duration_header = [
        "HashOwner", "HashApp", "HashFunction", "Average", "Count",
        "Minimum", "Maximum",
        "percentile_Average_0", "percentile_Average_1", "percentile_Average_25",
        "percentile_Average_50", "percentile_Average_75", "percentile_Average_99",
        "percentile_Average_100",
    ]
    memory_header = [
        "HashOwner", "HashApp", "SampleCount", "AverageAllocatedMb",
        "AverageAllocatedMb_pct1", "AverageAllocatedMb_pct5",
        "AverageAllocatedMb_pct25", "AverageAllocatedMb_pct50",
        "AverageAllocatedMb_pct75", "AverageAllocatedMb_pct95",
        "AverageAllocatedMb_pct99", "AverageAllocatedMb_pct100",
    ]

    written: List[Path] = []
    template = ["0"] * MINUTES_PER_DAY
    for day in range(start_day, start_day + days):
        invocation_lines = [",".join(header)]
        duration_lines = [",".join(duration_header)]
        app_totals: Dict[Tuple[str, str], int] = {}
        for i, spec in enumerate(functions):
            rng = np.random.default_rng([seed, 17, i, day])
            series = _fixture_series(rng, str(spec["shape"]), spec["params"])
            nonzero = np.flatnonzero(series)
            for minute in nonzero:
                template[minute] = str(int(series[minute]))
            invocation_lines.append(
                ",".join(
                    [
                        str(spec["owner"]),
                        str(spec["app"]),
                        str(spec["func"]),
                        str(spec["trigger"]),
                    ]
                    + template
                )
            )
            for minute in nonzero:
                template[minute] = "0"
            total = int(series.sum())
            app_totals[(str(spec["owner"]), str(spec["app"]))] = (
                app_totals.get((str(spec["owner"]), str(spec["app"])), 0) + total
            )
            if spec["has_duration_row"] and total > 0:
                average = float(spec["exec_ms"]) * float(rng.uniform(0.9, 1.1))
                duration_lines.append(
                    ",".join(
                        [str(spec["owner"]), str(spec["app"]), str(spec["func"])]
                        + [
                            f"{average:.2f}",
                            str(total),
                            f"{average * 0.4:.2f}",
                            f"{average * 3.0:.2f}",
                            f"{average * 0.4:.2f}",
                            f"{average * 0.5:.2f}",
                            f"{average * 0.8:.2f}",
                            f"{average:.2f}",
                            f"{average * 1.4:.2f}",
                            f"{average * 2.5:.2f}",
                            f"{average * 3.0:.2f}",
                        ]
                    )
                )

        invocation_path = dest / INVOCATIONS_TEMPLATE.format(day=day)
        invocation_path.write_text("\n".join(invocation_lines) + "\n")
        written.append(invocation_path)
        if duration_files:
            durations_path = dest / DURATIONS_TEMPLATE.format(day=day)
            durations_path.write_text("\n".join(duration_lines) + "\n")
            written.append(durations_path)
        if memory_files:
            memory_lines = [",".join(memory_header)]
            for (owner, app), total in sorted(app_totals.items()):
                if missing_memory_fraction > 0.0:
                    # Day-independent skip keyed by app id: a dropped app is
                    # absent from *every* day, i.e. a genuinely missed join.
                    skip_rng = np.random.default_rng([seed, 29, int(app[:8], 16)])
                    if skip_rng.random() < missing_memory_fraction:
                        continue
                rng = np.random.default_rng([seed, 23, day, total])
                average = float(rng.uniform(64.0, 512.0))
                memory_lines.append(
                    ",".join(
                        [owner, app, str(max(total, 1))]
                        + [
                            f"{average * factor:.1f}"
                            for factor in (1.0, 0.5, 0.6, 0.8, 1.0, 1.2, 1.5, 1.8, 2.0)
                        ]
                    )
                )
            memory_path = dest / MEMORY_TEMPLATE.format(day=day)
            memory_path.write_text("\n".join(memory_lines) + "\n")
            written.append(memory_path)
    return written
