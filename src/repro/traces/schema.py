"""Value objects describing serverless functions and trace metadata.

These types mirror the columns of the Azure Functions 2019 public trace that
the paper evaluates on: every function is identified by a hashed id and is
owned by an application, which in turn belongs to a user (owner).  Each
function is bound to one trigger type (2.6% of functions in the trace are
bound to a combination of triggers, which we model with
:attr:`TriggerType.COMBINATION`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

#: Number of one-minute sampling slots per day in the Azure trace.
MINUTES_PER_DAY = 1440


class TriggerType(str, enum.Enum):
    """Trigger categories used by the Azure Functions trace (paper Fig. 5).

    The paper reports the following proportions over all functions:
    HTTP 41.19%, timer 26.64%, queue 14.40%, orchestration 7.76%,
    others 2.72%, event 2.52%, storage 2.19%, combination 2.60%.
    """

    HTTP = "http"
    TIMER = "timer"
    QUEUE = "queue"
    STORAGE = "storage"
    EVENT = "event"
    ORCHESTRATION = "orchestration"
    OTHERS = "others"
    COMBINATION = "combination"

    @classmethod
    def paper_proportions(cls) -> Mapping["TriggerType", float]:
        """Return the trigger-type mix reported in the paper (Fig. 5)."""
        return {
            cls.HTTP: 0.4119,
            cls.TIMER: 0.2664,
            cls.QUEUE: 0.1440,
            cls.ORCHESTRATION: 0.0776,
            cls.OTHERS: 0.0272,
            cls.COMBINATION: 0.0260,
            cls.EVENT: 0.0252,
            cls.STORAGE: 0.0219,
        }


@dataclass(frozen=True)
class DurationProfile:
    """Latency model of one function: provisioning cost and execution time.

    The paper's minute-granular simulation assumes uniform cold-start latency
    across functions, so cold starts are a *count*.  The sub-minute event
    engine (:mod:`repro.simulation.events`) needs actual durations to turn
    cold starts into a latency *distribution*: every cold start charges
    ``cold_start_ms`` of provisioning latency, and invocations arriving while
    that provisioning is still in flight queue behind it.

    Attributes
    ----------
    cold_start_ms:
        Provisioning latency of a cold start (container fetch + runtime boot
        + application init), in milliseconds.
    execution_ms:
        Typical execution duration of one invocation, in milliseconds.
        Consistent with the paper's simulation principle, executions always
        finish within their minute; the value feeds busy-time accounting,
        never residency decisions.
    """

    cold_start_ms: float = 250.0
    execution_ms: float = 100.0

    def __post_init__(self) -> None:
        if self.cold_start_ms < 0:
            raise ValueError("cold_start_ms must be non-negative")
        if self.execution_ms < 0:
            raise ValueError("execution_ms must be non-negative")

    def scaled(self, cold_start: float = 1.0, execution: float = 1.0) -> "DurationProfile":
        """Return a copy with both durations scaled by the given factors."""
        if cold_start < 0 or execution < 0:
            raise ValueError("scale factors must be non-negative")
        return DurationProfile(
            cold_start_ms=self.cold_start_ms * cold_start,
            execution_ms=self.execution_ms * execution,
        )


#: The uniform latency model of the paper's setting (one "cold-start unit").
DEFAULT_DURATION_PROFILE = DurationProfile()


@dataclass(frozen=True)
class FunctionRecord:
    """Static metadata about a single serverless function.

    Attributes
    ----------
    function_id:
        Unique identifier of the function (hashed id in the real trace).
    app_id:
        Identifier of the application the function belongs to.
    owner_id:
        Identifier of the user (subscription) owning the application.
    trigger:
        The trigger type bound to the function.
    archetype:
        Optional name of the synthetic archetype that generated this
        function's invocation series.  ``None`` for functions loaded from a
        real trace.  This field is only used by tests and analysis tooling --
        SPES and the baselines never look at it.
    duration:
        Optional *measured* :class:`DurationProfile` for this function, as
        joined from the Azure dataset's duration-percentile files.  When
        present it takes precedence over the archetype/trigger-derived
        profile in :func:`~repro.traces.archetypes.duration_profile_for`
        (measured data needs no synthetic per-function spread).  ``None``
        for synthetic functions and for real functions whose duration row is
        missing from the dataset.
    memory_mb:
        Optional *measured* memory footprint of one loaded instance of this
        function, in megabytes, as joined from the Azure dataset's
        ``app_memory_percentiles`` files (the per-app allocation fanned out
        over the app's functions).  ``None`` for synthetic functions and for
        real functions whose app has no memory row; MB-mode accounting then
        falls back to :data:`~repro.simulation.memory.DEFAULT_MEMORY_MB`.
        Unit-mode simulation (the default) never reads this field.
    """

    function_id: str
    app_id: str
    owner_id: str
    trigger: TriggerType = TriggerType.HTTP
    archetype: str | None = None
    duration: DurationProfile | None = None
    memory_mb: float | None = None

    def __post_init__(self) -> None:
        if not self.function_id:
            raise ValueError("function_id must be a non-empty string")
        if not self.app_id:
            raise ValueError("app_id must be a non-empty string")
        if not self.owner_id:
            raise ValueError("owner_id must be a non-empty string")
        if self.memory_mb is not None and not self.memory_mb > 0:
            raise ValueError("memory_mb must be positive when provided")


@dataclass
class TraceMetadata:
    """Summary metadata describing a :class:`~repro.traces.trace.Trace`.

    Attributes
    ----------
    name:
        Human readable name of the trace (e.g. ``"azure-2019"`` or
        ``"synthetic-default"``).
    duration_minutes:
        Number of one-minute sampling slots in the trace.
    seed:
        Seed used to generate the trace, if synthetic.
    extra:
        Free-form annotations (generator profile parameters, source path...).
    """

    name: str
    duration_minutes: int
    seed: int | None = None
    extra: dict = field(default_factory=dict)

    @property
    def duration_days(self) -> float:
        """Trace duration expressed in days."""
        return self.duration_minutes / MINUTES_PER_DAY

    def __post_init__(self) -> None:
        if self.duration_minutes <= 0:
            raise ValueError("duration_minutes must be positive")
