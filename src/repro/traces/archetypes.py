"""Per-pattern invocation-series generators ("archetypes").

Each generator returns a 1-D integer array of per-minute invocation counts
exhibiting one of the behaviours the paper observes in the Azure trace:

* ``always_warm``   -- invoked (almost) every minute (§IV-A1).
* ``periodic``      -- timer-like, near-constant waiting time (§IV-A2).
* ``quasi_periodic``-- period drawn from a small set of values (§IV-A3).
* ``dense_poisson`` -- frequent, irregular Poisson arrivals (§IV-A4, HTTP).
* ``bursty``        -- long idle stretches punctuated by dense bursts, i.e.
  temporal locality / the "successive" category (§IV-A5, Fig. 6).
* ``pulsed``        -- milder, shorter bursts (§IV-B2 D1).
* ``chained``       -- invocations that follow a parent function after a lag,
  the basis of the "correlated" category (§IV-B2 D2).
* ``rare``          -- a handful of invocations, some with a repeated waiting
  time ("possible", §IV-B2 D3) and some without ("unknown").
* ``drifting``      -- a concept shift: the pattern changes mid-trace
  (§III-A4, Fig. 4).

All generators take a :class:`numpy.random.Generator` so callers control
determinism, and all return arrays of exactly ``duration`` minutes.
"""

from __future__ import annotations

import zlib
from typing import Literal

import numpy as np

from repro.traces.schema import DEFAULT_DURATION_PROFILE, DurationProfile, FunctionRecord

ArchetypeName = Literal[
    "always_warm",
    "periodic",
    "quasi_periodic",
    "dense_poisson",
    "bursty",
    "pulsed",
    "chained",
    "rare",
    "drifting",
    "flash_crowd",
    "unknown",
]


#: Baseline duration profiles per archetype, in milliseconds.  Provisioning
#: cost tracks the heaviness of the runtime the pattern implies (orchestration
#: chains and bursty batch jobs ship bigger images than HTTP ping handlers);
#: execution time tracks how much work one invocation does.  Absolute values
#: follow the cold-start measurements published for the major FaaS platforms
#: (hundreds of milliseconds to a few seconds).
ARCHETYPE_DURATION_PROFILES: dict[str, DurationProfile] = {
    "always_warm": DurationProfile(cold_start_ms=220.0, execution_ms=60.0),
    "periodic": DurationProfile(cold_start_ms=300.0, execution_ms=150.0),
    "quasi_periodic": DurationProfile(cold_start_ms=300.0, execution_ms=150.0),
    "dense_poisson": DurationProfile(cold_start_ms=250.0, execution_ms=80.0),
    "diurnal_poisson": DurationProfile(cold_start_ms=250.0, execution_ms=80.0),
    "bursty": DurationProfile(cold_start_ms=450.0, execution_ms=250.0),
    "pulsed": DurationProfile(cold_start_ms=400.0, execution_ms=200.0),
    "chained": DurationProfile(cold_start_ms=350.0, execution_ms=180.0),
    "rare_possible": DurationProfile(cold_start_ms=500.0, execution_ms=120.0),
    "rare_unknown": DurationProfile(cold_start_ms=500.0, execution_ms=120.0),
    "rare": DurationProfile(cold_start_ms=500.0, execution_ms=120.0),
    "drifting": DurationProfile(cold_start_ms=320.0, execution_ms=140.0),
    "flash_crowd": DurationProfile(cold_start_ms=280.0, execution_ms=90.0),
    "unknown": DurationProfile(cold_start_ms=400.0, execution_ms=120.0),
}

#: Fallback profiles by trigger type for functions without an archetype
#: annotation (e.g. real-trace loads), keyed by ``TriggerType.value``.
TRIGGER_DURATION_PROFILES: dict[str, DurationProfile] = {
    "http": DurationProfile(cold_start_ms=250.0, execution_ms=80.0),
    "timer": DurationProfile(cold_start_ms=300.0, execution_ms=150.0),
    "queue": DurationProfile(cold_start_ms=350.0, execution_ms=200.0),
    "storage": DurationProfile(cold_start_ms=350.0, execution_ms=220.0),
    "event": DurationProfile(cold_start_ms=300.0, execution_ms=120.0),
    "orchestration": DurationProfile(cold_start_ms=600.0, execution_ms=300.0),
    "others": DurationProfile(cold_start_ms=400.0, execution_ms=150.0),
    "combination": DurationProfile(cold_start_ms=400.0, execution_ms=150.0),
}


def duration_profile_for(
    record: FunctionRecord, base: DurationProfile | None = None
) -> DurationProfile:
    """Derive a deterministic per-function :class:`DurationProfile`.

    A *measured* profile attached to the record (joined from the real
    dataset's duration-percentile files) wins outright and is returned as-is:
    real measurements need no synthetic spread.  Otherwise the base profile
    comes from the function's archetype annotation when present, else from
    its trigger type, else ``base`` (default: the paper's uniform profile).
    On top of the base, a per-function spread factor in
    ``[0.6, 1.8)`` is derived from a CRC-32 hash of the function id — stable
    across processes and interpreter runs (like
    :meth:`~repro.simulation.cluster.ClusterModel.node_of`, Python's ``hash``
    is deliberately avoided so ``PYTHONHASHSEED`` never leaks into latency
    results) — so a population of functions yields a latency *distribution*
    rather than a single spike, without any random state to thread around.
    """
    if record.duration is not None:
        return record.duration
    profile = None
    if record.archetype is not None:
        profile = ARCHETYPE_DURATION_PROFILES.get(record.archetype)
    if profile is None:
        profile = TRIGGER_DURATION_PROFILES.get(record.trigger.value)
    if profile is None:
        profile = base or DEFAULT_DURATION_PROFILE
    # Two independent spread draws so provisioning and execution don't move
    # in lock-step for a given function.
    unit_cold = (zlib.crc32(f"cold:{record.function_id}".encode()) % 2**32) / 2**32
    unit_exec = (zlib.crc32(f"exec:{record.function_id}".encode()) % 2**32) / 2**32
    return profile.scaled(
        cold_start=0.6 + 1.2 * unit_cold,
        execution=0.6 + 1.2 * unit_exec,
    )


def _empty(duration: int) -> np.ndarray:
    if duration <= 0:
        raise ValueError("duration must be positive")
    return np.zeros(duration, dtype=np.int64)


def generate_always_warm(
    rng: np.random.Generator,
    duration: int,
    miss_probability: float = 0.0005,
    mean_rate: float = 3.0,
) -> np.ndarray:
    """Function invoked at (almost) every minute.

    Parameters
    ----------
    rng:
        Random generator.
    duration:
        Number of minutes.
    miss_probability:
        Probability that any given minute has no invocation.  The paper's
        definition tolerates a total idle time of at most one thousandth of
        the observation window, so the default stays well inside that bound.
    mean_rate:
        Mean invocations per active minute (Poisson distributed, minimum 1).
    """
    series = _empty(duration)
    active = rng.random(duration) >= miss_probability
    counts = np.maximum(rng.poisson(mean_rate, size=duration), 1)
    series[active] = counts[active]
    return series


def generate_periodic(
    rng: np.random.Generator,
    duration: int,
    period: int = 60,
    jitter_probability: float = 0.02,
    miss_probability: float = 0.0,
    extra_noise_rate: float = 0.0,
    phase: int | None = None,
    invocations_per_event: int = 1,
) -> np.ndarray:
    """Timer-like function invoked every ``period`` minutes.

    Real timer functions are rarely perfectly periodic: firings get delayed
    by a minute (``jitter_probability``), occasionally dropped
    (``miss_probability``), and unrelated events sporadically invoke the same
    function (``extra_noise_rate``, expected spurious invocations per
    minute).  These are exactly the contingencies the paper's slacking rules
    are designed to absorb.
    """
    if period < 1:
        raise ValueError("period must be >= 1")
    if not 0 <= miss_probability < 1:
        raise ValueError("miss_probability must be in [0, 1)")
    if extra_noise_rate < 0:
        raise ValueError("extra_noise_rate must be non-negative")
    series = _empty(duration)
    start = int(rng.integers(0, period)) if phase is None else phase % period
    for minute in range(start, duration, period):
        if miss_probability > 0 and rng.random() < miss_probability:
            continue
        slot = minute
        if jitter_probability > 0 and rng.random() < jitter_probability:
            slot = min(duration - 1, max(0, minute + int(rng.choice([-1, 1]))))
        series[slot] += invocations_per_event
    if extra_noise_rate > 0:
        series += rng.poisson(extra_noise_rate, size=duration)
    return series


def generate_quasi_periodic(
    rng: np.random.Generator,
    duration: int,
    periods: tuple[int, ...] = (3, 4, 5),
    weights: tuple[float, ...] | None = None,
    extra_noise_rate: float = 0.0,
    invocations_per_event: int = 1,
) -> np.ndarray:
    """Function whose inter-event gap is drawn from a small set of values.

    This mirrors the paper's "approximatively regular" example: an IoT-hub
    function expected every 3 minutes that actually fires every 3-5 minutes.
    ``extra_noise_rate`` adds sporadic unrelated invocations on top.
    """
    if not periods:
        raise ValueError("periods must be non-empty")
    if any(p < 1 for p in periods):
        raise ValueError("all periods must be >= 1")
    if weights is not None and len(weights) != len(periods):
        raise ValueError("weights must match periods in length")
    if extra_noise_rate < 0:
        raise ValueError("extra_noise_rate must be non-negative")
    probabilities = None
    if weights is not None:
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        probabilities = [w / total for w in weights]

    series = _empty(duration)
    minute = int(rng.integers(0, max(periods)))
    while minute < duration:
        series[minute] += invocations_per_event
        minute += int(rng.choice(periods, p=probabilities))
    if extra_noise_rate > 0:
        series += rng.poisson(extra_noise_rate, size=duration)
    return series


def generate_dense_poisson(
    rng: np.random.Generator,
    duration: int,
    rate_per_minute: float = 0.8,
    diurnal: bool = True,
    diurnal_amplitude: float = 0.6,
) -> np.ndarray:
    """Frequent, irregular invocations following a (optionally diurnal) Poisson process.

    The paper observes that ~45% of HTTP-triggered functions follow a Poisson
    arrival process; a diurnal modulation keeps the series realistic for
    human-generated traffic.
    """
    if rate_per_minute <= 0:
        raise ValueError("rate_per_minute must be positive")
    if not 0 <= diurnal_amplitude < 1:
        raise ValueError("diurnal_amplitude must be in [0, 1)")
    minutes = np.arange(duration)
    if diurnal:
        modulation = 1.0 + diurnal_amplitude * np.sin(2 * np.pi * minutes / 1440.0)
    else:
        modulation = np.ones(duration)
    rates = rate_per_minute * modulation
    return rng.poisson(rates).astype(np.int64)


def generate_bursty(
    rng: np.random.Generator,
    duration: int,
    burst_count: int = 6,
    burst_length_range: tuple[int, int] = (8, 40),
    burst_rate: float = 2.5,
    min_gap: int = 120,
) -> np.ndarray:
    """Long idle stretches punctuated by dense bursts (temporal locality).

    These series drive the "successive" category: once a burst starts, the
    function is invoked at (nearly) every minute until the burst ends.
    """
    low, high = burst_length_range
    if low < 1 or high < low:
        raise ValueError("invalid burst_length_range")
    series = _empty(duration)
    cursor = int(rng.integers(0, max(1, min_gap)))
    for _ in range(burst_count):
        if cursor >= duration:
            break
        length = int(rng.integers(low, high + 1))
        end = min(duration, cursor + length)
        series[cursor:end] = np.maximum(rng.poisson(burst_rate, size=end - cursor), 1)
        cursor = end + min_gap + int(rng.integers(0, min_gap + 1))
    return series


def generate_pulsed(
    rng: np.random.Generator,
    duration: int,
    pulse_count: int = 10,
    pulse_length_range: tuple[int, int] = (2, 6),
    min_gap: int = 200,
) -> np.ndarray:
    """Short, mild bursts separated by long gaps (the "pulsed" assignment).

    Pulsed functions show weaker temporal locality than "successive" ones: the
    bursts are too short to satisfy the successive-category thresholds, yet a
    short keep-alive after the first invocation still avoids most cold starts.
    """
    low, high = pulse_length_range
    if low < 1 or high < low:
        raise ValueError("invalid pulse_length_range")
    series = _empty(duration)
    cursor = int(rng.integers(0, max(1, min_gap)))
    for _ in range(pulse_count):
        if cursor >= duration:
            break
        length = int(rng.integers(low, high + 1))
        end = min(duration, cursor + length)
        series[cursor:end] = 1
        cursor = end + min_gap + int(rng.integers(0, min_gap + 1))
    return series


def generate_chained(
    rng: np.random.Generator,
    parent_series: np.ndarray,
    lag: int = 2,
    trigger_probability: float = 0.95,
    extra_noise_rate: float = 0.0,
) -> np.ndarray:
    """Invocations that follow ``parent_series`` after ``lag`` minutes.

    This models function chaining / fan-out: whenever the parent is invoked,
    the child is invoked ``lag`` minutes later with ``trigger_probability``.
    Such children become the "correlated" category through the T-lagged
    co-occurrence rate.
    """
    if lag < 0:
        raise ValueError("lag must be non-negative")
    if not 0 < trigger_probability <= 1:
        raise ValueError("trigger_probability must be in (0, 1]")
    parent = np.asarray(parent_series, dtype=np.int64)
    duration = parent.shape[0]
    series = _empty(duration)
    parent_minutes = np.nonzero(parent)[0]
    for minute in parent_minutes:
        child_minute = minute + lag
        if child_minute >= duration:
            continue
        if rng.random() < trigger_probability:
            series[child_minute] += max(1, int(parent[minute]))
    if extra_noise_rate > 0:
        series += rng.poisson(extra_noise_rate, size=duration)
    return series


def generate_rare(
    rng: np.random.Generator,
    duration: int,
    invocation_count: int = 4,
    repeated_gap: int | None = None,
) -> np.ndarray:
    """A handful of invocations scattered over the trace.

    If ``repeated_gap`` is given, consecutive invocations are separated by that
    gap (with the remainder placed randomly), producing at least one repeated
    waiting time and therefore a "possible" function.  Otherwise the
    invocations land at uniformly random minutes ("unknown" behaviour).
    """
    if invocation_count < 1:
        raise ValueError("invocation_count must be >= 1")
    series = _empty(duration)
    if repeated_gap is not None:
        if repeated_gap < 1:
            raise ValueError("repeated_gap must be >= 1")
        start = int(rng.integers(0, max(1, duration - repeated_gap * invocation_count)))
        minute = start
        placed = 0
        while placed < invocation_count and minute < duration:
            series[minute] += 1
            minute += repeated_gap
            placed += 1
        return series
    minutes = rng.choice(duration, size=min(invocation_count, duration), replace=False)
    for minute in minutes:
        series[int(minute)] += 1
    return series


def generate_flash_crowd(
    rng: np.random.Generator,
    duration: int,
    crowd_start: int,
    crowd_minutes: int = 120,
    peak_rate: float = 20.0,
    base_rate: float = 0.02,
) -> np.ndarray:
    """Quiet background traffic hit by a sudden crowd.

    Outside the crowd window the function sees sparse Poisson arrivals at
    ``base_rate``; inside it the rate ramps linearly from ``base_rate`` to
    ``peak_rate`` over the first fifth of the window and decays linearly back
    over the rest — the classic news-spike shape that no history-based
    provisioning policy can predict and that puts maximum pressure on a
    capacity-constrained cluster.
    """
    if crowd_minutes < 1:
        raise ValueError("crowd_minutes must be >= 1")
    if peak_rate <= 0 or base_rate < 0:
        raise ValueError("rates must be non-negative (peak positive)")
    series = _empty(duration)
    if base_rate > 0:
        series += rng.poisson(base_rate, size=duration).astype(np.int64)
    start = max(0, min(int(crowd_start), duration - 1))
    stop = min(duration, start + crowd_minutes)
    window = stop - start
    if window > 0:
        ramp = max(1, window // 5)
        profile = np.empty(window, dtype=float)
        profile[:ramp] = np.linspace(base_rate, peak_rate, ramp)
        profile[ramp:] = np.linspace(peak_rate, base_rate, window - ramp + 1)[1:]
        series[start:stop] += rng.poisson(profile).astype(np.int64)
    return series


def generate_drifting(
    rng: np.random.Generator,
    duration: int,
    first_period: int = 30,
    second_rate: float = 0.5,
    change_point_fraction: float = 0.5,
) -> np.ndarray:
    """A concept shift: periodic behaviour that turns into Poisson traffic.

    The change point splits the trace at ``change_point_fraction`` of its
    duration, reproducing the short-term evolution shown in Fig. 4 and
    exercising SPES's forgetting / adjusting strategies.
    """
    if not 0 < change_point_fraction < 1:
        raise ValueError("change_point_fraction must be in (0, 1)")
    change_point = int(duration * change_point_fraction)
    change_point = min(max(change_point, 1), duration - 1)
    first = generate_periodic(rng, change_point, period=first_period)
    second = generate_dense_poisson(
        rng, duration - change_point, rate_per_minute=second_rate, diurnal=False
    )
    return np.concatenate([first, second])
