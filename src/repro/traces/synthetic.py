"""Synthetic Azure-like workload generation.

The real Azure Functions 2019 trace is ~1.9 GB and cannot be downloaded in an
offline environment, so the benchmarks in this repository run on a synthetic
trace whose *marginal statistics* match the characteristics the paper reports:

* heavy-tailed invocation counts (most functions rarely invoked, Fig. 3);
* the trigger-type mix of Fig. 5;
* ~68% of timer functions (quasi-)periodic, ~45% of HTTP functions Poisson;
* temporal locality for a slice of infrequently invoked functions (Fig. 6);
* application/user grouping with chained ("correlated") functions;
* concept drift for a fraction of functions (Fig. 4);
* a small population of functions that only appear in the simulation window
  ("unseen") or never at all.

Every policy under evaluation consumes only per-minute counts plus
trigger/app/user labels, so exercising them on this generator covers exactly
the same code paths as the real trace would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.traces import archetypes
from repro.traces.schema import (
    MINUTES_PER_DAY,
    FunctionRecord,
    TraceMetadata,
    TriggerType,
)
from repro.traces.trace import Trace


@dataclass
class GeneratorProfile:
    """Tunable knobs of the synthetic workload generator.

    The default profile produces a laptop-scale trace (hundreds of functions,
    14 days) in a few seconds; ``paper_scale`` returns a profile close to the
    published trace's population mix (tens of thousands of functions), which
    is only practical for long-running experiments.

    Attributes
    ----------
    n_functions:
        Total number of functions to generate.
    duration_days:
        Trace length in days (the Azure trace covers 14 days).
    archetype_mix:
        Fraction of functions drawn from each archetype.  Values are
        normalized, so they need not sum to exactly one.
    functions_per_app_mean:
        Mean number of functions per application (geometric distribution).
    apps_per_owner_mean:
        Mean number of applications per owner (geometric distribution).
    app_archetype_affinity:
        Probability that a function adopts its application's archetype theme
        rather than an independent draw.  Real applications group functions
        serving one service, so activity levels within an app are similar --
        this is what makes application-grained provisioning a meaningful but
        imperfect heuristic.
    chained_fraction_within_app:
        Probability that a non-first function of a multi-function application
        is chained to (triggered by) another function of the same app.
    chain_lag_range:
        Inclusive range of the lag (in minutes) between a parent invocation
        and its chained child.
    timer_miss_probability:
        Probability that an individual timer firing is dropped (delays,
        concurrency limits) for periodic functions.
    timer_noise_fraction_range:
        Spurious extra invocations overlaid on periodic / quasi-periodic
        functions, expressed as a fraction of the function's own firing rate
        (other events occasionally invoking a mostly-regular function,
        §IV-A2).
    unseen_fraction:
        Fraction of functions whose invocations are confined to the last
        ``unseen_window_days`` days, so they are "unseen" during a 12-day
        training window.
    unseen_window_days:
        Width of the window (counted from the end of the trace) that holds
        all invocations of unseen functions.
    never_invoked_fraction:
        Fraction of functions registered in the platform but never invoked.
    drifting_fraction:
        Fraction of the periodic/dense population whose behaviour shifts
        mid-trace (concept drift).
    seed:
        Base random seed.
    """

    n_functions: int = 400
    duration_days: float = 14.0
    archetype_mix: Dict[str, float] = field(
        default_factory=lambda: {
            # Frequent functions dominate the invocation volume but are a
            # minority of the population, mirroring the heavy tail of Fig. 3.
            "always_warm": 0.02,
            "periodic": 0.13,
            "quasi_periodic": 0.07,
            "dense_poisson": 0.10,
            # Infrequent functions dominate the population.
            "bursty": 0.12,
            "pulsed": 0.15,
            "chained": 0.08,
            "rare_possible": 0.13,
            "rare_unknown": 0.20,
        }
    )
    functions_per_app_mean: float = 3.3
    apps_per_owner_mean: float = 1.65
    app_archetype_affinity: float = 0.85
    chained_fraction_within_app: float = 0.35
    chain_lag_range: tuple[int, int] = (1, 4)
    timer_miss_probability: float = 0.03
    timer_noise_fraction_range: tuple[float, float] = (0.03, 0.12)
    unseen_fraction: float = 0.02
    unseen_window_days: float = 2.0
    never_invoked_fraction: float = 0.01
    drifting_fraction: float = 0.06
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.n_functions < 1:
            raise ValueError("n_functions must be >= 1")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if not self.archetype_mix:
            raise ValueError("archetype_mix must not be empty")
        if any(weight < 0 for weight in self.archetype_mix.values()):
            raise ValueError("archetype_mix weights must be non-negative")
        if sum(self.archetype_mix.values()) <= 0:
            raise ValueError("archetype_mix weights must sum to a positive value")
        for fraction_name in ("unseen_fraction", "never_invoked_fraction", "drifting_fraction"):
            value = getattr(self, fraction_name)
            if not 0 <= value < 1:
                raise ValueError(f"{fraction_name} must be in [0, 1)")
        if not 0 <= self.app_archetype_affinity <= 1:
            raise ValueError("app_archetype_affinity must be in [0, 1]")
        if not 0 <= self.timer_miss_probability < 1:
            raise ValueError("timer_miss_probability must be in [0, 1)")
        low_noise, high_noise = self.timer_noise_fraction_range
        if low_noise < 0 or high_noise < low_noise:
            raise ValueError("timer_noise_fraction_range must satisfy 0 <= low <= high")
        if self.unseen_window_days <= 0 or self.unseen_window_days >= self.duration_days:
            raise ValueError("unseen_window_days must be in (0, duration_days)")

    @property
    def duration_minutes(self) -> int:
        """Trace length in minutes."""
        return int(round(self.duration_days * MINUTES_PER_DAY))

    @classmethod
    def small(cls, seed: int = 2024) -> "GeneratorProfile":
        """A fast profile for unit tests (tens of functions, 3 days)."""
        return cls(n_functions=60, duration_days=3.0, unseen_window_days=0.5, seed=seed)

    @classmethod
    def default(cls, seed: int = 2024) -> "GeneratorProfile":
        """The default benchmark profile (400 functions, 14 days)."""
        return cls(seed=seed)

    @classmethod
    def large(cls, seed: int = 2024) -> "GeneratorProfile":
        """A larger profile for longer experiments (2,000 functions, 14 days)."""
        return cls(n_functions=2000, seed=seed)

    @classmethod
    def paper_scale(cls, seed: int = 2024) -> "GeneratorProfile":
        """A profile approaching the published trace's population (slow)."""
        return cls(n_functions=83137, seed=seed)


# Trigger assigned to each archetype, mirroring the trigger/pattern pairing the
# paper describes (timers -> periodic, HTTP -> Poisson/bursty, queues -> dense,
# orchestration -> chained workflows, storage/event -> pulsed or rare).
_ARCHETYPE_TRIGGERS: Dict[str, List[TriggerType]] = {
    "always_warm": [TriggerType.TIMER, TriggerType.HTTP],
    "periodic": [TriggerType.TIMER],
    "quasi_periodic": [TriggerType.TIMER, TriggerType.QUEUE],
    "dense_poisson": [TriggerType.HTTP, TriggerType.QUEUE],
    "bursty": [TriggerType.HTTP, TriggerType.STORAGE],
    "pulsed": [TriggerType.EVENT, TriggerType.STORAGE, TriggerType.HTTP],
    "chained": [TriggerType.ORCHESTRATION, TriggerType.QUEUE],
    "rare_possible": [TriggerType.HTTP, TriggerType.OTHERS],
    "rare_unknown": [TriggerType.HTTP, TriggerType.OTHERS, TriggerType.COMBINATION],
}


class AzureTraceGenerator:
    """Generate a synthetic trace with Azure-like invocation statistics.

    Parameters
    ----------
    profile:
        Generator configuration; :meth:`GeneratorProfile.default` if omitted.

    Examples
    --------
    >>> generator = AzureTraceGenerator(GeneratorProfile.small(seed=7))
    >>> trace = generator.generate()
    >>> trace.duration_days
    3.0
    """

    def __init__(self, profile: GeneratorProfile | None = None) -> None:
        self.profile = profile or GeneratorProfile.default()

    # ------------------------------------------------------------------ #
    def generate(self) -> Trace:
        """Generate the synthetic trace described by the profile."""
        profile = self.profile
        rng = np.random.default_rng(profile.seed)
        duration = profile.duration_minutes

        app_of, owner_of = self._draw_topology(rng, profile.n_functions)
        archetype_names = self._draw_archetypes(rng, app_of)

        records: List[FunctionRecord] = []
        counts: Dict[str, np.ndarray] = {}
        app_members: Dict[str, List[str]] = {}

        n_unseen = int(round(profile.unseen_fraction * profile.n_functions))
        n_never = int(round(profile.never_invoked_fraction * profile.n_functions))
        unseen_ids = set(range(n_unseen))
        never_ids = set(range(n_unseen, n_unseen + n_never))
        unseen_start = duration - int(round(profile.unseen_window_days * MINUTES_PER_DAY))

        for index, archetype in enumerate(archetype_names):
            function_id = f"func-{index:05d}"
            app_id = app_of[index]
            owner_id = owner_of[index]
            trigger = self._trigger_for(rng, archetype)
            effective_archetype = archetype

            if index in never_ids:
                series = np.zeros(duration, dtype=np.int64)
                effective_archetype = "never_invoked"
            elif index in unseen_ids:
                window = duration - unseen_start
                inner = self._series_for(rng, archetype, window)
                series = np.zeros(duration, dtype=np.int64)
                series[unseen_start:] = inner
                effective_archetype = f"unseen_{archetype}"
            else:
                series = self._series_for(rng, archetype, duration)
                if archetype in ("periodic", "dense_poisson") and rng.random() < (
                    profile.drifting_fraction
                    / max(
                        profile.archetype_mix.get("periodic", 0.0)
                        + profile.archetype_mix.get("dense_poisson", 0.0),
                        1e-9,
                    )
                ):
                    series = archetypes.generate_drifting(
                        rng,
                        duration,
                        first_period=int(rng.integers(15, 90)),
                        second_rate=float(rng.uniform(0.2, 0.8)),
                    )
                    effective_archetype = "drifting"

            record = FunctionRecord(
                function_id=function_id,
                app_id=app_id,
                owner_id=owner_id,
                trigger=trigger,
                archetype=effective_archetype,
            )
            records.append(record)
            counts[function_id] = series
            app_members.setdefault(app_id, []).append(function_id)

        self._chain_within_apps(rng, records, counts, app_members)

        metadata = TraceMetadata(
            name=f"synthetic-azure-{profile.n_functions}f-{profile.duration_days:g}d",
            duration_minutes=duration,
            seed=profile.seed,
            extra={"profile": profile.__class__.__name__, "n_functions": profile.n_functions},
        )
        return Trace(records, counts, metadata)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _draw_archetypes(self, rng: np.random.Generator, app_of: List[str]) -> List[str]:
        """Assign an archetype to each function, biased toward its app's theme.

        Each application draws a "theme" archetype from the configured mix;
        every member function adopts the theme with probability
        ``app_archetype_affinity`` and draws independently otherwise.  This
        keeps the population mix close to the configured proportions while
        making activity levels within an application similar, as they are in
        real deployments.
        """
        profile = self.profile
        names = list(profile.archetype_mix)
        weights = np.array([profile.archetype_mix[name] for name in names], dtype=float)
        weights = weights / weights.sum()

        app_theme: Dict[str, str] = {}
        archetypes_of: List[str] = []
        for app_id in app_of:
            theme = app_theme.get(app_id)
            if theme is None:
                theme = str(rng.choice(names, p=weights))
                app_theme[app_id] = theme
            if rng.random() < profile.app_archetype_affinity:
                archetypes_of.append(theme)
            else:
                archetypes_of.append(str(rng.choice(names, p=weights)))
        return archetypes_of

    def _draw_topology(
        self, rng: np.random.Generator, n_functions: int
    ) -> tuple[List[str], List[str]]:
        """Assign every function to an application and an owner."""
        profile = self.profile
        app_of: List[str] = []
        owner_of: List[str] = []
        app_index = 0
        owner_index = 0
        apps_left_for_owner = 0
        functions_left_for_app = 0
        for _ in range(n_functions):
            if functions_left_for_app == 0:
                if apps_left_for_owner == 0:
                    owner_index += 1
                    apps_left_for_owner = self._geometric(rng, profile.apps_per_owner_mean)
                app_index += 1
                apps_left_for_owner -= 1
                functions_left_for_app = self._geometric(
                    rng, profile.functions_per_app_mean
                )
            functions_left_for_app -= 1
            app_of.append(f"app-{app_index:05d}")
            owner_of.append(f"owner-{owner_index:05d}")
        return app_of, owner_of

    @staticmethod
    def _geometric(rng: np.random.Generator, mean: float) -> int:
        """Draw a >=1 geometric size with the requested mean."""
        if mean <= 1:
            return 1
        probability = 1.0 / mean
        return int(rng.geometric(probability))

    def _trigger_for(self, rng: np.random.Generator, archetype: str) -> TriggerType:
        candidates = _ARCHETYPE_TRIGGERS.get(archetype, [TriggerType.HTTP])
        return candidates[int(rng.integers(0, len(candidates)))]

    def _series_for(
        self, rng: np.random.Generator, archetype: str, duration: int
    ) -> np.ndarray:
        """Materialize the invocation series for one function."""
        if archetype == "always_warm":
            return archetypes.generate_always_warm(rng, duration)
        low_noise, high_noise = self.profile.timer_noise_fraction_range
        if archetype == "periodic":
            period = int(
                rng.choice(
                    [5, 10, 15, 30, 60, 120, 240, 360, 720, 1440],
                    p=[0.08, 0.10, 0.10, 0.14, 0.16, 0.12, 0.10, 0.08, 0.06, 0.06],
                )
            )
            noise_rate = float(rng.uniform(low_noise, high_noise)) / period
            return archetypes.generate_periodic(
                rng,
                duration,
                period=period,
                miss_probability=self.profile.timer_miss_probability,
                extra_noise_rate=noise_rate,
            )
        if archetype == "quasi_periodic":
            base = int(rng.integers(3, 30))
            spread = int(rng.integers(1, 4))
            periods = tuple(range(base, base + spread + 1))
            noise_rate = float(rng.uniform(low_noise, high_noise)) / float(np.mean(periods))
            return archetypes.generate_quasi_periodic(
                rng,
                duration,
                periods=periods,
                extra_noise_rate=noise_rate,
            )
        if archetype == "dense_poisson":
            rate = float(rng.uniform(0.2, 1.5))
            return archetypes.generate_dense_poisson(rng, duration, rate_per_minute=rate)
        if archetype == "bursty":
            burst_count = max(2, int(duration / MINUTES_PER_DAY * rng.uniform(0.3, 0.8)))
            # Bursts separated by several hours to a day, matching the
            # temporal-locality clusters of Fig. 6.
            gap = int(rng.integers(360, 1200))
            return archetypes.generate_bursty(
                rng, duration, burst_count=burst_count, min_gap=gap
            )
        if archetype == "pulsed":
            pulse_count = max(3, int(duration / MINUTES_PER_DAY * rng.uniform(0.5, 1.2)))
            gap = int(rng.integers(400, 1400))
            return archetypes.generate_pulsed(
                rng, duration, pulse_count=pulse_count, min_gap=gap
            )
        if archetype == "chained":
            # Placeholder: chained children are re-generated from their parent
            # in _chain_within_apps; until then give them sparse noise.
            return archetypes.generate_rare(rng, duration, invocation_count=2)
        if archetype == "rare_possible":
            gap = int(rng.choice([180, 360, 720, 1440]))
            count = int(rng.integers(3, 8))
            return archetypes.generate_rare(
                rng, duration, invocation_count=count, repeated_gap=gap
            )
        if archetype == "rare_unknown":
            count = int(rng.integers(1, 5))
            return archetypes.generate_rare(rng, duration, invocation_count=count)
        raise ValueError(f"unknown archetype: {archetype}")

    def _chain_within_apps(
        self,
        rng: np.random.Generator,
        records: List[FunctionRecord],
        counts: Dict[str, np.ndarray],
        app_members: Dict[str, List[str]],
    ) -> None:
        """Rewrite 'chained' functions (and some app siblings) as children of a parent."""
        profile = self.profile
        by_id = {record.function_id: record for record in records}
        low, high = profile.chain_lag_range
        for members in app_members.values():
            if len(members) < 2:
                continue
            parent_id = max(members, key=lambda fid: int(counts[fid].sum()))
            parent_series = counts[parent_id]
            if parent_series.sum() == 0:
                continue
            for function_id in members:
                if function_id == parent_id:
                    continue
                record = by_id[function_id]
                is_chained_archetype = record.archetype is not None and "chained" in record.archetype
                if not is_chained_archetype and rng.random() >= profile.chained_fraction_within_app:
                    continue
                if record.archetype is not None and record.archetype.startswith("unseen"):
                    continue
                if record.archetype == "never_invoked":
                    continue
                lag = int(rng.integers(low, high + 1))
                counts[function_id] = archetypes.generate_chained(
                    rng, parent_series, lag=lag, trigger_probability=float(rng.uniform(0.8, 1.0))
                )


def generate_default_trace(seed: int = 2024, n_functions: int = 400) -> Trace:
    """Convenience helper: generate the default benchmark trace."""
    profile = GeneratorProfile(n_functions=n_functions, seed=seed)
    return AzureTraceGenerator(profile).generate()
