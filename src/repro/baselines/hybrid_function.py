"""Hybrid histogram policy at function granularity (HF in the paper).

The original hybrid policy of Shahrad et al. provisions whole applications;
following the paper (and Defuse), this variant applies the identical design to
individual functions, which keeps memory usage lower at the cost of more
always-cold functions.
"""

from __future__ import annotations

from repro.baselines.hybrid_base import HybridHistogramPolicyBase
from repro.traces.schema import FunctionRecord


class HybridFunctionPolicy(HybridHistogramPolicyBase):
    """Hybrid histogram keep-alive / pre-warming, one unit per function."""

    name = "hybrid-function"
    #: Unit == function: every histogram and clock is function-local.
    shard_safe = True

    def unit_of(self, record: FunctionRecord) -> str:
        return record.function_id
