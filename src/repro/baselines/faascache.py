"""FaaSCache: keep-alive as Greedy-Dual-Size-Frequency caching (ASPLOS'21).

FaaSCache treats warm function instances like objects in a cache: everything
stays resident until a memory capacity is hit, at which point the instance
with the lowest Greedy-Dual-Size-Frequency (GDSF) priority is evicted.  The
priority of a function is

``priority = clock + frequency * cost / size``

where ``clock`` is a monotonically increasing eviction clock (set to the
priority of the last evicted item), ``frequency`` counts the function's
invocations, and ``cost``/``size`` are the warm-up cost and memory footprint.
The paper's simulation assumes uniform cold-start latency and uniform memory
per instance, so cost and size default to one; both remain configurable per
function for completeness.

The capacity is expressed in memory units (instances, with unit sizes).  The
paper sets it to the maximum memory SPES used during the simulation; the
experiment harness does the same.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Mapping, Sequence, Set

from repro.simulation.policy_base import ProvisioningPolicy
from repro.traces.schema import FunctionRecord
from repro.traces.trace import Trace


class FaasCachePolicy(ProvisioningPolicy):
    """Greedy-Dual-Size-Frequency keep-alive under a memory capacity.

    Parameters
    ----------
    capacity:
        Maximum number of memory units kept warm.  If ``None``, a capacity of
        one tenth of the function population (at least one) is chosen during
        :meth:`prepare`; the experiment harness overrides this with SPES's
        peak memory usage, as the paper does.
    sizes:
        Optional per-function memory footprint (defaults to 1 unit each).
    costs:
        Optional per-function warm-up cost (defaults to 1 each).
    """

    name = "faascache"

    def __init__(
        self,
        capacity: int | None = None,
        sizes: Mapping[str, float] | None = None,
        costs: Mapping[str, float] | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 when given")
        self.capacity = capacity
        self._sizes = dict(sizes or {})
        self._costs = dict(costs or {})
        self._clock = 0.0
        self._frequency: Dict[str, int] = {}
        self._priority: Dict[str, float] = {}
        self._resident: Set[str] = set()
        self._heap: list[tuple[float, int, str]] = []
        self._counter = itertools.count()

    # ------------------------------------------------------------------ #
    def prepare(
        self,
        functions: Sequence[FunctionRecord],
        training: Trace | None = None,
    ) -> None:
        super().prepare(functions, training)
        if self.capacity is None:
            self.capacity = max(1, len(functions) // 10)
        self.reset()

    def reset(self) -> None:
        self._clock = 0.0
        self._frequency = {}
        self._priority = {}
        self._resident = set()
        self._heap = []
        self._counter = itertools.count()

    # ------------------------------------------------------------------ #
    def _size(self, function_id: str) -> float:
        return float(self._sizes.get(function_id, 1.0))

    def _cost(self, function_id: str) -> float:
        return float(self._costs.get(function_id, 1.0))

    def _compute_priority(self, function_id: str) -> float:
        frequency = self._frequency.get(function_id, 0)
        return self._clock + frequency * self._cost(function_id) / self._size(function_id)

    def _push(self, function_id: str) -> None:
        priority = self._priority[function_id]
        heapq.heappush(self._heap, (priority, next(self._counter), function_id))

    def _used_capacity(self) -> float:
        return sum(self._size(function_id) for function_id in self._resident)

    def _evict_if_needed(self) -> None:
        capacity = self.capacity if self.capacity is not None else len(self._resident)
        while self._resident and self._used_capacity() > capacity:
            while self._heap:
                priority, _, function_id = heapq.heappop(self._heap)
                if function_id in self._resident and self._priority.get(function_id) == priority:
                    self._resident.discard(function_id)
                    self._clock = max(self._clock, priority)
                    break
            else:
                # Heap exhausted (stale entries only): drop an arbitrary resident.
                self._resident.pop()
                break

    # ------------------------------------------------------------------ #
    def on_minute(self, minute: int, invocations: Mapping[str, int]) -> Set[str]:
        for function_id, count in invocations.items():
            self._frequency[function_id] = self._frequency.get(function_id, 0) + int(count)
            self._resident.add(function_id)
            self._priority[function_id] = self._compute_priority(function_id)
            self._push(function_id)

        self._evict_if_needed()
        return set(self._resident)

    # ------------------------------------------------------------------ #
    @property
    def resident_functions(self) -> Set[str]:
        """Currently warm functions (for inspection and tests)."""
        return set(self._resident)
