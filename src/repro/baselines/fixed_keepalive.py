"""Fixed keep-alive baseline.

The simplest and most widely deployed cold-start mitigation: after serving an
invocation, keep the instance resident for a fixed number of minutes before
evicting it.  OpenWhisk and several commercial platforms historically used a
10-minute window, which is the configuration the paper evaluates.
"""

from __future__ import annotations

from typing import Dict, Mapping, Set

from repro.simulation.policy_base import ProvisioningPolicy


class FixedKeepAlivePolicy(ProvisioningPolicy):
    """Keep every invoked function warm for a fixed window.

    Parameters
    ----------
    keep_alive_minutes:
        Number of minutes an instance stays resident after its last
        invocation.  The paper's fixed baseline uses 10 minutes.
    """

    #: Per-function expiry clocks only — restricts cleanly to any shard.
    shard_safe = True

    def __init__(self, keep_alive_minutes: int = 10) -> None:
        if keep_alive_minutes < 0:
            raise ValueError("keep_alive_minutes must be non-negative")
        self.keep_alive_minutes = keep_alive_minutes
        self.name = f"fixed-{keep_alive_minutes}min"
        self._expiry: Dict[str, int] = {}

    def reset(self) -> None:
        self._expiry = {}

    def on_minute(self, minute: int, invocations: Mapping[str, int]) -> Set[str]:
        for function_id in invocations:
            self._expiry[function_id] = minute + self.keep_alive_minutes

        expired = [fid for fid, expiry in self._expiry.items() if expiry <= minute]
        for function_id in expired:
            del self._expiry[function_id]

        return set(self._expiry)
