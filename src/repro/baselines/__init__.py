"""Baseline provisioning policies the paper compares SPES against.

* :class:`FixedKeepAlivePolicy` -- keep an instance warm for a fixed window
  after every invocation (10 minutes in the paper's configuration).
* :class:`HybridFunctionPolicy` / :class:`HybridApplicationPolicy` -- the
  hybrid histogram policy of Shahrad et al. (ATC'20) at function and
  application granularity.
* :class:`DefusePolicy` -- the dependency-guided scheduler of Shen et al.
  (ICDCS'21): histogram keep-alive plus dependency-driven pre-warming.
* :class:`FaasCachePolicy` -- Greedy-Dual-Size-Frequency caching of Fuerst &
  Sharma (ASPLOS'21) under a memory capacity.
* :class:`LcsPolicy` -- the LRU warm-container policy of Sethi et al.
  (ICDCN'23), included as an extra comparator beyond the paper's baseline set.
* :class:`LatencyAwareKeepAlivePolicy` -- keep-alive horizons scaled by each
  function's observed cold-start latency; the first consumer of the
  ``event-feedback`` engine's rolling latency window.

Every dict-based policy above also ships an index-native ``Indexed*`` twin
(fingerprint-identical decisions, vectorized stepping); nothing needs the
``DictPolicyAdapter`` anymore.
"""

from repro.baselines.fixed_keepalive import FixedKeepAlivePolicy
from repro.baselines.histogram import IdleTimeHistogram
from repro.baselines.hybrid_function import HybridFunctionPolicy
from repro.baselines.hybrid_application import HybridApplicationPolicy
from repro.baselines.defuse import DefusePolicy
from repro.baselines.faascache import FaasCachePolicy
from repro.baselines.lcs import LcsPolicy
from repro.baselines.latency_aware import LatencyAwareKeepAlivePolicy
from repro.baselines.vectorized import (
    IndexedDefusePolicy,
    IndexedFaasCachePolicy,
    IndexedFixedKeepAlivePolicy,
    IndexedHybridApplicationPolicy,
    IndexedHybridFunctionPolicy,
    IndexedLcsPolicy,
)

__all__ = [
    "FixedKeepAlivePolicy",
    "IdleTimeHistogram",
    "HybridFunctionPolicy",
    "HybridApplicationPolicy",
    "DefusePolicy",
    "FaasCachePolicy",
    "LcsPolicy",
    "LatencyAwareKeepAlivePolicy",
    "IndexedFixedKeepAlivePolicy",
    "IndexedHybridFunctionPolicy",
    "IndexedHybridApplicationPolicy",
    "IndexedFaasCachePolicy",
    "IndexedDefusePolicy",
    "IndexedLcsPolicy",
]
