"""Idle-time histogram shared by the hybrid policies and Defuse.

Shahrad et al. (ATC'20) model each unit's (function's or application's)
*idle times* -- the gaps between consecutive invocations -- with a bounded
histogram (4 hours at one-minute resolution).  From the histogram they derive

* a *pre-warm window*: a conservative head percentile of the idle-time
  distribution; the instance is unloaded after execution and re-loaded this
  many minutes after the last invocation, and
* a *keep-alive window*: a tail percentile; the instance stays (or is kept)
  resident until this many minutes have elapsed since the last invocation.

A histogram is only trusted when it has enough samples and is not dominated
by out-of-bounds idle times; otherwise the policy falls back to a standard
keep-alive.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


class IdleTimeHistogram:
    """Bounded idle-time histogram with percentile-based window extraction.

    Parameters
    ----------
    range_minutes:
        Histogram upper bound; idle times beyond it are counted as
        out-of-bounds (OOB).  Shahrad et al. use 4 hours (240 minutes).
    head_percentile:
        Percentile defining the pre-warm window.
    tail_percentile:
        Percentile defining the keep-alive window.
    min_samples:
        Minimum number of in-bounds samples before the histogram is trusted.
    max_oob_fraction:
        Maximum tolerated fraction of out-of-bounds samples.
    """

    def __init__(
        self,
        range_minutes: int = 240,
        head_percentile: float = 5.0,
        tail_percentile: float = 99.0,
        min_samples: int = 10,
        max_oob_fraction: float = 0.5,
    ) -> None:
        if range_minutes < 1:
            raise ValueError("range_minutes must be >= 1")
        if not 0 <= head_percentile <= tail_percentile <= 100:
            raise ValueError("percentiles must satisfy 0 <= head <= tail <= 100")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if not 0 < max_oob_fraction <= 1:
            raise ValueError("max_oob_fraction must be in (0, 1]")
        self.range_minutes = range_minutes
        self.head_percentile = head_percentile
        self.tail_percentile = tail_percentile
        self.min_samples = min_samples
        self.max_oob_fraction = max_oob_fraction
        self._bins = np.zeros(range_minutes + 1, dtype=np.int64)
        self._oob = 0

    # ------------------------------------------------------------------ #
    def observe(self, idle_minutes: int) -> None:
        """Record one idle time (gap between consecutive invocations)."""
        if idle_minutes < 0:
            raise ValueError("idle_minutes must be non-negative")
        if idle_minutes > self.range_minutes:
            self._oob += 1
        else:
            self._bins[idle_minutes] += 1

    def observe_many(self, idle_times: Iterable[int]) -> None:
        """Record several idle times."""
        for idle in idle_times:
            self.observe(int(idle))

    # ------------------------------------------------------------------ #
    @property
    def in_bounds_count(self) -> int:
        """Number of recorded idle times within the histogram range."""
        return int(self._bins.sum())

    @property
    def out_of_bounds_count(self) -> int:
        """Number of recorded idle times beyond the histogram range."""
        return self._oob

    @property
    def total_count(self) -> int:
        """Total number of recorded idle times."""
        return self.in_bounds_count + self._oob

    @property
    def is_representative(self) -> bool:
        """Whether the histogram has enough in-bounds data to be trusted."""
        total = self.total_count
        if total == 0 or self.in_bounds_count < self.min_samples:
            return False
        return (self._oob / total) <= self.max_oob_fraction

    # ------------------------------------------------------------------ #
    def percentile(self, percentile: float) -> int:
        """Return the requested percentile of the in-bounds idle times."""
        count = self.in_bounds_count
        if count == 0:
            return self.range_minutes
        target = np.ceil(count * percentile / 100.0)
        target = max(target, 1)
        cumulative = np.cumsum(self._bins)
        index = int(np.searchsorted(cumulative, target))
        return min(index, self.range_minutes)

    @property
    def prewarm_window(self) -> int:
        """Minutes to wait after an invocation before re-loading the instance."""
        return self.percentile(self.head_percentile)

    @property
    def keep_alive_window(self) -> int:
        """Minutes after an invocation until the instance is evicted."""
        return max(self.percentile(self.tail_percentile), 1)

    def as_array(self) -> np.ndarray:
        """Copy of the histogram bins (index = idle minutes)."""
        return self._bins.copy()
