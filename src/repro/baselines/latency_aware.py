"""Latency-aware keep-alive: the first consumer of the feedback engine.

Every policy shipped before this module decides from invocation *counts*;
the cost of being wrong — how long a cold start actually stalls requests —
never reaches it.  The ``event-feedback`` engine closes that loop by
streaming a rolling per-function latency window
(:class:`~repro.simulation.events.LatencyWindow`) into
:meth:`~repro.simulation.policy_base.ProvisioningPolicy.on_feedback` between
minutes, and :class:`LatencyAwareKeepAlivePolicy` is the reference consumer:
a fixed keep-alive whose horizon is no longer fixed, but proportional to each
function's *observed* cold-start cost.

The adaptation rule targets the *tail* of the per-event cold-start-wait
distribution, which is a composition metric: its p99 sits wherever the most
expensive functions' waits sit, so it improves from both directions at once.
A function whose recent cold starts cost ``w`` milliseconds gets a
keep-alive horizon of

    clip(round(base * (w / pivot) ** cost_exponent), min, max)

where ``pivot`` is the window's overall mean wait (or a fixed
``reference_cold_start_ms`` when configured).  Functions with
above-average boot cost (heavy runtimes, congested registries) are held warm
far longer — removing exactly the expensive samples that define the tail —
while functions that restart cheaply release their memory almost
immediately, adding only cheap mass to the distribution.  The relative pivot
makes the rule self-calibrating: a scenario that scales *every* boot up
(say, a congested image registry) shifts the pivot with it instead of
inflating every horizon.  Functions without a latency-affected event in the
current window keep their last learned horizon — resetting them to the base
would re-expose exactly the functions the extended horizon just made warm,
oscillating between cold and warm.

Off the feedback engine the hook never fires and the policy degrades to an
exact fixed keep-alive at the base horizon, which the no-op equivalence
tests pin down.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.vectorized import _NEVER
from repro.simulation.events import LatencyWindow
from repro.simulation.vector_policy import VectorizedPolicy
from repro.traces.trace import InvocationIndex

__all__ = ["LatencyAwareKeepAlivePolicy"]


class LatencyAwareKeepAlivePolicy(VectorizedPolicy):
    """Keep-alive horizons scaled by observed per-function cold-start cost.

    Parameters
    ----------
    base_keep_alive_minutes:
        Horizon used before any feedback arrives (and forever, on engines
        without a feedback loop).  Matches the paper's fixed baseline default.
    min_keep_alive_minutes / max_keep_alive_minutes:
        Clamp of the adapted horizon.  The floor is the immediate-release
        end for the cheapest functions; the ceiling bounds the memory a
        single expensive function can pin.
    cost_exponent:
        How sharply horizons react to relative cost.  1.0 is proportional;
        the default of 3.0 concentrates the memory budget on the top of the
        cost distribution, which is where the tail percentiles live.
    reference_cold_start_ms:
        Optional fixed pivot: the cold-start cost at which the adapted
        horizon equals the base horizon.  ``None`` (default) pivots on the
        window's overall mean wait, making the rule self-calibrating under
        scenario-level duration scaling.
    """

    name = "latency-keepalive"

    def __init__(
        self,
        base_keep_alive_minutes: int = 10,
        min_keep_alive_minutes: int = 1,
        max_keep_alive_minutes: int = 240,
        cost_exponent: float = 3.0,
        reference_cold_start_ms: float | None = None,
    ) -> None:
        if base_keep_alive_minutes < 1:
            raise ValueError("base_keep_alive_minutes must be >= 1")
        if not 1 <= min_keep_alive_minutes <= max_keep_alive_minutes:
            raise ValueError(
                "need 1 <= min_keep_alive_minutes <= max_keep_alive_minutes"
            )
        if cost_exponent <= 0:
            raise ValueError("cost_exponent must be positive")
        if reference_cold_start_ms is not None and reference_cold_start_ms <= 0:
            raise ValueError("reference_cold_start_ms must be positive when given")
        self.base_keep_alive_minutes = base_keep_alive_minutes
        self.min_keep_alive_minutes = min_keep_alive_minutes
        self.max_keep_alive_minutes = max_keep_alive_minutes
        self.cost_exponent = float(cost_exponent)
        self.reference_cold_start_ms = (
            float(reference_cold_start_ms)
            if reference_cold_start_ms is not None
            else None
        )

    # ------------------------------------------------------------------ #
    def on_bind(self, index: InvocationIndex) -> None:
        n = index.n_functions
        self._expiry = np.full(n, _NEVER, dtype=np.int64)
        self._keep_alive = np.full(n, self.base_keep_alive_minutes, dtype=np.int64)
        self._mask = np.zeros(n, dtype=bool)

    def reset(self) -> None:
        if self.is_bound:
            self._expiry.fill(_NEVER)
            self._keep_alive.fill(self.base_keep_alive_minutes)
            self._mask.fill(False)

    # ------------------------------------------------------------------ #
    def on_feedback(self, minute: int, latency_window: LatencyWindow) -> None:
        observed = latency_window.cold_events > 0
        if not observed.any():
            return
        mean_wait = latency_window.mean_wait_ms()[observed]
        if self.reference_cold_start_ms is not None:
            pivot = self.reference_cold_start_ms
        else:
            # Overall mean wait of the window.  A zero-cost duration model
            # (cold_start_scale=0) yields cold events with all-zero waits;
            # there is no cost signal to scale by, so keep current horizons.
            pivot = float(
                latency_window.total_wait_ms.sum()
                / latency_window.cold_events.sum()
            )
            if pivot <= 0.0:
                return
        scaled = np.round(
            self.base_keep_alive_minutes
            * (mean_wait / pivot) ** self.cost_exponent
        ).astype(np.int64)
        self._keep_alive[observed] = np.clip(
            scaled, self.min_keep_alive_minutes, self.max_keep_alive_minutes
        )

    def on_minute_indexed(
        self, minute: int, invoked: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        if invoked.size:
            self._expiry[invoked] = minute + self._keep_alive[invoked]
        np.greater(self._expiry, minute, out=self._mask)
        return self._mask

    # ------------------------------------------------------------------ #
    @property
    def keep_alive_minutes(self) -> np.ndarray:
        """Current per-function horizons (for inspection and tests)."""
        return self._keep_alive.copy()
