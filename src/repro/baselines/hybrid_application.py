"""Hybrid histogram policy at application granularity (HA in the paper).

This is the policy as originally proposed by Shahrad et al. (ATC'20): all
functions of an application are loaded and unloaded together, driven by the
application's aggregate idle-time histogram.  Grouping reduces always-cold
functions (a sibling's invocation keeps the whole app warm) but inflates
memory usage, which is exactly the trade-off the paper's Fig. 9 shows.
"""

from __future__ import annotations

from repro.baselines.hybrid_base import HybridHistogramPolicyBase
from repro.traces.schema import FunctionRecord


class HybridApplicationPolicy(HybridHistogramPolicyBase):
    """Hybrid histogram keep-alive / pre-warming, one unit per application."""

    name = "hybrid-application"

    def unit_of(self, record: FunctionRecord) -> str:
        return record.app_id
