"""Index-native ports of the baseline policies.

Each class here is the :class:`~repro.simulation.vector_policy
.VectorizedPolicy` twin of a dict-based baseline: same offline phase, same
decision rules, same *name* (so
:meth:`~repro.simulation.results.SimulationResult.deterministic_fingerprint`
of a run is identical to its dict counterpart's — the equivalence tests rely
on this), but the per-minute stepping runs on numpy arrays over the trace's
function-index space instead of Python dict/set churn.

* :class:`IndexedFixedKeepAlivePolicy` — the whole online state is one
  expiry array; a minute costs one scatter and one vectorized comparison.
* :class:`IndexedHybridFunctionPolicy` / :class:`IndexedHybridApplicationPolicy`
  — reuse the histogram machinery of
  :class:`~repro.baselines.hybrid_base.HybridHistogramPolicyBase` (offline
  seeding included) but cache each unit's pre-warm/keep-alive windows in
  arrays, refreshing a unit only when its histogram observes a new idle time.
  The per-minute scan over *all* units (the dominant cost of the dict
  version) becomes a handful of vectorized comparisons plus a gather from
  unit space to function space.
* :class:`IndexedFaasCachePolicy` — Greedy-Dual-Size-Frequency caching
  (:class:`~repro.baselines.faascache.FaasCachePolicy`) with the priority
  heap replaced by vectorized scoring over function arrays: one scatter per
  minute to refresh invoked priorities, and a single lexsort over the
  resident set on the (rare) minutes the capacity is exceeded.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.baselines.hybrid_base import HybridHistogramPolicyBase
from repro.simulation.vector_policy import VectorizedPolicy
from repro.traces.schema import FunctionRecord
from repro.traces.trace import InvocationIndex, Trace

__all__ = [
    "IndexedFixedKeepAlivePolicy",
    "IndexedHybridFunctionPolicy",
    "IndexedHybridApplicationPolicy",
    "IndexedFaasCachePolicy",
]

#: "Never invoked" sentinel: far below any warm-up minute, but safely away
#: from int64 overflow when minutes are subtracted from it.
_NEVER = -(2**62)


class IndexedFixedKeepAlivePolicy(VectorizedPolicy):
    """Index-native fixed keep-alive (twin of :class:`FixedKeepAlivePolicy`).

    Parameters
    ----------
    keep_alive_minutes:
        Number of minutes an instance stays resident after its last
        invocation.  The paper's fixed baseline uses 10 minutes.
    """

    def __init__(self, keep_alive_minutes: int = 10) -> None:
        if keep_alive_minutes < 0:
            raise ValueError("keep_alive_minutes must be non-negative")
        self.keep_alive_minutes = keep_alive_minutes
        self.name = f"fixed-{keep_alive_minutes}min"

    def on_bind(self, index: InvocationIndex) -> None:
        self._expiry = np.full(index.n_functions, _NEVER, dtype=np.int64)
        self._mask = np.zeros(index.n_functions, dtype=bool)

    def reset(self) -> None:
        if self.is_bound:
            self._expiry.fill(_NEVER)
            self._mask.fill(False)

    def on_minute_indexed(
        self, minute: int, invoked: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        if invoked.size:
            self._expiry[invoked] = minute + self.keep_alive_minutes
        np.greater(self._expiry, minute, out=self._mask)
        return self._mask


class _IndexedHybridBase(VectorizedPolicy, HybridHistogramPolicyBase):
    """Shared indexed implementation of the hybrid histogram policies.

    The offline phase (unit mapping, histogram seeding from the training
    trace) is inherited unchanged from :class:`HybridHistogramPolicyBase`.
    Binding compiles the unit structure into arrays:

    * ``_function_unit`` maps every function index to a unit index;
    * per-unit arrays hold the last invocation minute and the *cached*
      decision inputs (representative flag, pre-warm and keep-alive windows),
      refreshed only when a unit's histogram changes.

    A minute then costs: a Python loop over the (few) invoked units to
    observe idle times, one vectorized residency decision over unit space,
    and one gather from unit space to function space.
    """

    def on_bind(self, index: InvocationIndex) -> None:
        # Deterministic unit indexing: first appearance order over the
        # trace's function-index space.
        unit_index: dict[str, int] = {}
        function_unit = np.zeros(index.n_functions, dtype=np.int64)
        unit_states = []
        for position, function_id in enumerate(index.function_ids):
            unit = self._unit_of_function.get(function_id)
            if unit is None:
                # Function unseen at prepare time: its own unit (mirrors
                # ``_unit_for_id``).
                unit = function_id
                self._unit_of_function[function_id] = unit
            u = unit_index.get(unit)
            if u is None:
                u = len(unit_index)
                unit_index[unit] = u
                unit_states.append(self._state_for(unit))
            function_unit[position] = u

        n_units = len(unit_states)
        self._function_unit = function_unit
        self._unit_states = unit_states
        self._unit_last = np.full(n_units, _NEVER, dtype=np.int64)
        self._unit_representative = np.zeros(n_units, dtype=bool)
        self._unit_prewarm = np.zeros(n_units, dtype=np.int64)
        self._unit_keepalive = np.zeros(n_units, dtype=np.int64)
        for u in range(n_units):
            self._refresh_unit(u)

    def _refresh_unit(self, u: int) -> None:
        """Re-derive one unit's cached decision inputs from its histogram."""
        histogram = self._unit_states[u].histogram
        representative = histogram.is_representative
        self._unit_representative[u] = representative
        if representative:
            self._unit_prewarm[u] = histogram.prewarm_window
            self._unit_keepalive[u] = histogram.keep_alive_window

    def reset(self) -> None:
        super().reset()
        if self.is_bound:
            self._unit_last.fill(_NEVER)

    # ------------------------------------------------------------------ #
    def on_minute_indexed(
        self, minute: int, invoked: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        if invoked.size:
            invoked_units = np.unique(self._function_unit[invoked])
            for u in invoked_units.tolist():
                last = self._unit_last[u]
                if last != _NEVER:
                    idle = minute - last
                    if idle > 0:
                        self._unit_states[u].histogram.observe(int(idle))
                        self._refresh_unit(u)
                self._unit_last[u] = minute

        # Vectorized form of ``_unit_resident_next_minute`` over all units.
        elapsed_next = (minute + 1) - self._unit_last
        keep_alive_ok = elapsed_next <= self._unit_keepalive
        prewarm_blocked = (self._unit_prewarm > 1) & (elapsed_next < self._unit_prewarm)
        resident_units = np.where(
            self._unit_representative,
            keep_alive_ok & ~prewarm_blocked,
            elapsed_next <= self.uncertain_keep_alive_minutes,
        )
        resident_units &= self._unit_last != _NEVER
        return resident_units[self._function_unit]


class IndexedFaasCachePolicy(VectorizedPolicy):
    """Index-native FaaSCache (twin of :class:`FaasCachePolicy`).

    The dict version keeps a lazy priority heap with stale-entry skipping;
    here the whole cache state is four arrays over the trace's function-index
    space (frequency, GDSF priority, residency, last-update sequence) plus
    the scalar eviction clock.  A minute costs one scatter to refresh the
    invoked functions' priorities; eviction — only on minutes the capacity is
    actually exceeded — is one lexsort of the resident set by
    ``(priority, last-update sequence)``, which reproduces the heap's exact
    pop order: GDSF priorities are strictly increasing per function update
    (frequency grows on every invocation), so the heap's only *valid* entry
    for a function is its most recent push, and ties between functions break
    on push order.  The equivalence tests assert fingerprint-identity against
    the dict twin under every engine.

    Parameters
    ----------
    capacity / sizes / costs:
        As for :class:`FaasCachePolicy`.  ``sizes`` must be positive (the
        GDSF priority divides by them, exactly as the dict twin does).
    """

    name = "faascache"

    def __init__(
        self,
        capacity: int | None = None,
        sizes: Mapping[str, float] | None = None,
        costs: Mapping[str, float] | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 when given")
        self.capacity = capacity
        self._size_overrides = dict(sizes or {})
        self._cost_overrides = dict(costs or {})
        self._clock = 0.0
        self._sequence = 0

    # ------------------------------------------------------------------ #
    def prepare(
        self,
        functions: Sequence[FunctionRecord],
        training: Trace | None = None,
    ) -> None:
        super().prepare(functions, training)
        if self.capacity is None:
            self.capacity = max(1, len(functions) // 10)
        self.reset()

    def on_bind(self, index: InvocationIndex) -> None:
        n = index.n_functions
        self._sizes = np.ones(n, dtype=float)
        self._costs = np.ones(n, dtype=float)
        for function_id, size in self._size_overrides.items():
            position = index.index_of.get(function_id)
            if position is not None:
                self._sizes[position] = float(size)
        for function_id, cost in self._cost_overrides.items():
            position = index.index_of.get(function_id)
            if position is not None:
                self._costs[position] = float(cost)
        self._frequency = np.zeros(n, dtype=np.int64)
        self._priority = np.zeros(n, dtype=float)
        self._resident = np.zeros(n, dtype=bool)
        self._updated = np.zeros(n, dtype=np.int64)
        self._clock = 0.0
        self._sequence = 0

    def reset(self) -> None:
        self._clock = 0.0
        self._sequence = 0
        if self.is_bound:
            self._frequency.fill(0)
            self._priority.fill(0.0)
            self._resident.fill(False)
            self._updated.fill(0)

    # ------------------------------------------------------------------ #
    def on_minute_indexed(
        self, minute: int, invoked: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        if invoked.size:
            self._frequency[invoked] += counts
            # Same operation order as the dict twin's `clock + freq * cost /
            # size`: multiplying by a precomputed cost/size ratio rounds
            # differently for non-dyadic ratios and can flip eviction order.
            self._priority[invoked] = (
                self._clock
                + self._frequency[invoked] * self._costs[invoked] / self._sizes[invoked]
            )
            self._resident[invoked] = True
            self._updated[invoked] = np.arange(
                self._sequence, self._sequence + invoked.size, dtype=np.int64
            )
            self._sequence += invoked.size
        self._evict_if_needed()
        return self._resident

    def _evict_if_needed(self) -> None:
        resident = np.flatnonzero(self._resident)
        if resident.size == 0:
            return
        capacity = float(self.capacity) if self.capacity is not None else resident.size
        used = float(self._sizes[resident].sum())
        if used <= capacity:
            return
        # Heap pop order: lowest priority first, push order breaking ties.
        order = np.lexsort((self._updated[resident], self._priority[resident]))
        victims = resident[order]
        freed = np.cumsum(self._sizes[victims])
        evict_count = int(np.searchsorted(freed, used - capacity, side="left")) + 1
        evicted = victims[:evict_count]
        self._resident[evicted] = False
        self._clock = max(self._clock, float(self._priority[evicted].max()))

    # ------------------------------------------------------------------ #
    @property
    def resident_functions(self) -> set[str]:
        """Currently warm function ids (for inspection and tests)."""
        if not self.is_bound:
            return set()
        ids = self._function_ids
        return {ids[position] for position in np.flatnonzero(self._resident)}


class IndexedHybridFunctionPolicy(_IndexedHybridBase):
    """Index-native hybrid histogram policy, one unit per function."""

    name = "hybrid-function"

    def unit_of(self, record: FunctionRecord) -> str:
        return record.function_id


class IndexedHybridApplicationPolicy(_IndexedHybridBase):
    """Index-native hybrid histogram policy, one unit per application."""

    name = "hybrid-application"

    def unit_of(self, record: FunctionRecord) -> str:
        return record.app_id
