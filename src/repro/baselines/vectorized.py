"""Index-native ports of the baseline policies.

Each class here is the :class:`~repro.simulation.vector_policy
.VectorizedPolicy` twin of a dict-based baseline: same offline phase, same
decision rules, same *name* (so
:meth:`~repro.simulation.results.SimulationResult.deterministic_fingerprint`
of a run is identical to its dict counterpart's — the equivalence tests rely
on this), but the per-minute stepping runs on numpy arrays over the trace's
function-index space instead of Python dict/set churn.

* :class:`IndexedFixedKeepAlivePolicy` — the whole online state is one
  expiry array; a minute costs one scatter and one vectorized comparison.
* :class:`IndexedHybridFunctionPolicy` / :class:`IndexedHybridApplicationPolicy`
  — reuse the histogram machinery of
  :class:`~repro.baselines.hybrid_base.HybridHistogramPolicyBase` (offline
  seeding included) but cache each unit's pre-warm/keep-alive windows in
  arrays, refreshing a unit only when its histogram observes a new idle time.
  The per-minute scan over *all* units (the dominant cost of the dict
  version) becomes a handful of vectorized comparisons plus a gather from
  unit space to function space.
* :class:`IndexedFaasCachePolicy` — Greedy-Dual-Size-Frequency caching
  (:class:`~repro.baselines.faascache.FaasCachePolicy`) with the priority
  heap replaced by vectorized scoring over function arrays: one scatter per
  minute to refresh invoked priorities, and a single lexsort over the
  resident set on the (rare) minutes the capacity is exceeded.
* :class:`IndexedDefusePolicy` — dependency-guided pre-warming
  (:class:`~repro.baselines.defuse.DefusePolicy`) on top of the indexed
  hybrid histogram base: the mined dependency graph is compiled into a CSR
  successor table at bind time, and a minute costs one ``np.maximum.at``
  scatter of pre-warm horizons plus one mask comparison — no per-minute
  Python over the dependency dict.
* :class:`IndexedLcsPolicy` — LRU warm containers
  (:class:`~repro.baselines.lcs.LcsPolicy`) with the ``OrderedDict`` recency
  bookkeeping replaced by a monotone per-invocation sequence array; capacity
  eviction is an argsort of the (rarely oversized) live set by that
  sequence, and an explicit tombstone mask reproduces the dict twin's
  "evicted stays evicted until re-invoked" semantics.  This was the last
  baseline still stepping through the :class:`~repro.simulation
  .vector_policy.DictPolicyAdapter`; every policy now has an index-native
  implementation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.baselines.defuse import Dependency, mine_dependencies
from repro.baselines.hybrid_base import HybridHistogramPolicyBase
from repro.simulation.vector_policy import VectorizedPolicy
from repro.traces.schema import FunctionRecord
from repro.traces.trace import InvocationIndex, Trace

__all__ = [
    "IndexedFixedKeepAlivePolicy",
    "IndexedHybridFunctionPolicy",
    "IndexedHybridApplicationPolicy",
    "IndexedFaasCachePolicy",
    "IndexedDefusePolicy",
    "IndexedLcsPolicy",
]

#: "Never invoked" sentinel: far below any warm-up minute, but safely away
#: from int64 overflow when minutes are subtracted from it.
_NEVER = -(2**62)


class IndexedFixedKeepAlivePolicy(VectorizedPolicy):
    """Index-native fixed keep-alive (twin of :class:`FixedKeepAlivePolicy`).

    Parameters
    ----------
    keep_alive_minutes:
        Number of minutes an instance stays resident after its last
        invocation.  The paper's fixed baseline uses 10 minutes.
    """

    shard_safe = True

    def __init__(self, keep_alive_minutes: int = 10) -> None:
        if keep_alive_minutes < 0:
            raise ValueError("keep_alive_minutes must be non-negative")
        self.keep_alive_minutes = keep_alive_minutes
        self.name = f"fixed-{keep_alive_minutes}min"

    def on_bind(self, index: InvocationIndex) -> None:
        self._expiry = np.full(index.n_functions, _NEVER, dtype=np.int64)
        self._mask = np.zeros(index.n_functions, dtype=bool)

    def reset(self) -> None:
        if self.is_bound:
            self._expiry.fill(_NEVER)
            self._mask.fill(False)

    def on_minute_indexed(
        self, minute: int, invoked: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        if invoked.size:
            self._expiry[invoked] = minute + self.keep_alive_minutes
        np.greater(self._expiry, minute, out=self._mask)
        return self._mask


class _IndexedHybridBase(VectorizedPolicy, HybridHistogramPolicyBase):
    """Shared indexed implementation of the hybrid histogram policies.

    The offline phase (unit mapping, histogram seeding from the training
    trace) is inherited unchanged from :class:`HybridHistogramPolicyBase`.
    Binding compiles the unit structure into arrays:

    * ``_function_unit`` maps every function index to a unit index;
    * per-unit arrays hold the last invocation minute and the *cached*
      decision inputs (representative flag, pre-warm and keep-alive windows),
      refreshed only when a unit's histogram changes.

    A minute then costs: a Python loop over the (few) invoked units to
    observe idle times, one vectorized residency decision over unit space,
    and one gather from unit space to function space.
    """

    def on_bind(self, index: InvocationIndex) -> None:
        # Deterministic unit indexing: first appearance order over the
        # trace's function-index space.
        unit_index: dict[str, int] = {}
        function_unit = np.zeros(index.n_functions, dtype=np.int64)
        unit_states = []
        for position, function_id in enumerate(index.function_ids):
            unit = self._unit_of_function.get(function_id)
            if unit is None:
                # Function unseen at prepare time: its own unit (mirrors
                # ``_unit_for_id``).
                unit = function_id
                self._unit_of_function[function_id] = unit
            u = unit_index.get(unit)
            if u is None:
                u = len(unit_index)
                unit_index[unit] = u
                unit_states.append(self._state_for(unit))
            function_unit[position] = u

        n_units = len(unit_states)
        self._function_unit = function_unit
        self._unit_states = unit_states
        self._unit_last = np.full(n_units, _NEVER, dtype=np.int64)
        self._unit_representative = np.zeros(n_units, dtype=bool)
        self._unit_prewarm = np.zeros(n_units, dtype=np.int64)
        self._unit_keepalive = np.zeros(n_units, dtype=np.int64)
        for u in range(n_units):
            self._refresh_unit(u)

    def _refresh_unit(self, u: int) -> None:
        """Re-derive one unit's cached decision inputs from its histogram."""
        histogram = self._unit_states[u].histogram
        representative = histogram.is_representative
        self._unit_representative[u] = representative
        if representative:
            self._unit_prewarm[u] = histogram.prewarm_window
            self._unit_keepalive[u] = histogram.keep_alive_window

    def reset(self) -> None:
        super().reset()
        if self.is_bound:
            self._unit_last.fill(_NEVER)

    # ------------------------------------------------------------------ #
    def on_minute_indexed(
        self, minute: int, invoked: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        if invoked.size:
            invoked_units = np.unique(self._function_unit[invoked])
            for u in invoked_units.tolist():
                last = self._unit_last[u]
                if last != _NEVER:
                    idle = minute - last
                    if idle > 0:
                        self._unit_states[u].histogram.observe(int(idle))
                        self._refresh_unit(u)
                self._unit_last[u] = minute

        # Vectorized form of ``_unit_resident_next_minute`` over all units.
        elapsed_next = (minute + 1) - self._unit_last
        keep_alive_ok = elapsed_next <= self._unit_keepalive
        prewarm_blocked = (self._unit_prewarm > 1) & (elapsed_next < self._unit_prewarm)
        resident_units = np.where(
            self._unit_representative,
            keep_alive_ok & ~prewarm_blocked,
            elapsed_next <= self.uncertain_keep_alive_minutes,
        )
        resident_units &= self._unit_last != _NEVER
        return resident_units[self._function_unit]


class IndexedFaasCachePolicy(VectorizedPolicy):
    """Index-native FaaSCache (twin of :class:`FaasCachePolicy`).

    The dict version keeps a lazy priority heap with stale-entry skipping;
    here the whole cache state is four arrays over the trace's function-index
    space (frequency, GDSF priority, residency, last-update sequence) plus
    the scalar eviction clock.  A minute costs one scatter to refresh the
    invoked functions' priorities; eviction — only on minutes the capacity is
    actually exceeded — is one lexsort of the resident set by
    ``(priority, last-update sequence)``, which reproduces the heap's exact
    pop order: GDSF priorities are strictly increasing per function update
    (frequency grows on every invocation), so the heap's only *valid* entry
    for a function is its most recent push, and ties between functions break
    on push order.  The equivalence tests assert fingerprint-identity against
    the dict twin under every engine.

    Parameters
    ----------
    capacity / sizes / costs:
        As for :class:`FaasCachePolicy`.  ``sizes`` must be positive (the
        GDSF priority divides by them, exactly as the dict twin does).
    """

    name = "faascache"

    def __init__(
        self,
        capacity: int | None = None,
        sizes: Mapping[str, float] | None = None,
        costs: Mapping[str, float] | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 when given")
        self.capacity = capacity
        self._size_overrides = dict(sizes or {})
        self._cost_overrides = dict(costs or {})
        self._clock = 0.0
        self._sequence = 0

    # ------------------------------------------------------------------ #
    def prepare(
        self,
        functions: Sequence[FunctionRecord],
        training: Trace | None = None,
    ) -> None:
        super().prepare(functions, training)
        if self.capacity is None:
            self.capacity = max(1, len(functions) // 10)
        self.reset()

    def on_bind(self, index: InvocationIndex) -> None:
        n = index.n_functions
        self._sizes = np.ones(n, dtype=float)
        self._costs = np.ones(n, dtype=float)
        for function_id, size in self._size_overrides.items():
            position = index.index_of.get(function_id)
            if position is not None:
                self._sizes[position] = float(size)
        for function_id, cost in self._cost_overrides.items():
            position = index.index_of.get(function_id)
            if position is not None:
                self._costs[position] = float(cost)
        self._frequency = np.zeros(n, dtype=np.int64)
        self._priority = np.zeros(n, dtype=float)
        self._resident = np.zeros(n, dtype=bool)
        self._updated = np.zeros(n, dtype=np.int64)
        self._clock = 0.0
        self._sequence = 0

    def reset(self) -> None:
        self._clock = 0.0
        self._sequence = 0
        if self.is_bound:
            self._frequency.fill(0)
            self._priority.fill(0.0)
            self._resident.fill(False)
            self._updated.fill(0)

    # ------------------------------------------------------------------ #
    def on_minute_indexed(
        self, minute: int, invoked: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        if invoked.size:
            self._frequency[invoked] += counts
            # Same operation order as the dict twin's `clock + freq * cost /
            # size`: multiplying by a precomputed cost/size ratio rounds
            # differently for non-dyadic ratios and can flip eviction order.
            self._priority[invoked] = (
                self._clock
                + self._frequency[invoked] * self._costs[invoked] / self._sizes[invoked]
            )
            self._resident[invoked] = True
            self._updated[invoked] = np.arange(
                self._sequence, self._sequence + invoked.size, dtype=np.int64
            )
            self._sequence += invoked.size
        self._evict_if_needed()
        return self._resident

    def _evict_if_needed(self) -> None:
        resident = np.flatnonzero(self._resident)
        if resident.size == 0:
            return
        capacity = float(self.capacity) if self.capacity is not None else resident.size
        used = float(self._sizes[resident].sum())
        if used <= capacity:
            return
        # Heap pop order: lowest priority first, push order breaking ties.
        order = np.lexsort((self._updated[resident], self._priority[resident]))
        victims = resident[order]
        freed = np.cumsum(self._sizes[victims])
        evict_count = int(np.searchsorted(freed, used - capacity, side="left")) + 1
        evicted = victims[:evict_count]
        self._resident[evicted] = False
        self._clock = max(self._clock, float(self._priority[evicted].max()))

    # ------------------------------------------------------------------ #
    @property
    def resident_functions(self) -> set[str]:
        """Currently warm function ids (for inspection and tests)."""
        if not self.is_bound:
            return set()
        ids = self._function_ids
        return {ids[position] for position in np.flatnonzero(self._resident)}


class IndexedLcsPolicy(VectorizedPolicy):
    """Index-native LCS (twin of :class:`~repro.baselines.lcs.LcsPolicy`).

    The dict twin's ``OrderedDict`` encodes recency as insertion order:
    every invocation moves a function to the end, expiry deletes idle
    entries, and capacity pressure pops from the front.  Here recency is a
    strictly increasing sequence number assigned per invocation — within a
    minute, in the invocation mapping's iteration order, which is exactly
    the order the prebuilt per-minute mappings (and the dict bridge) iterate
    — so "least recently used" is simply the smallest sequence among live
    functions.

    Two subtleties carry over from the dict semantics:

    * expiry (``idle >= keep_alive_minutes``) is monotone between
      invocations, so it needs no bookkeeping — it is recomputed from the
      last-invocation array each minute;
    * capacity eviction is *not* monotone: an evicted function would pass
      the expiry test again next minute, so evictions are recorded in a
      tombstone mask that only a re-invocation clears (the dict twin deletes
      the entry, forgetting the function until it fires again).

    Parameters are those of :class:`~repro.baselines.lcs.LcsPolicy`,
    including the prepare-time default capacity of one fifth of the
    function population.
    """

    name = "lcs"

    def __init__(self, keep_alive_minutes: int = 30, capacity: int | None = None) -> None:
        if keep_alive_minutes < 1:
            raise ValueError("keep_alive_minutes must be >= 1")
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 when given")
        self.keep_alive_minutes = keep_alive_minutes
        self.capacity = capacity
        self._counter = 0

    # ------------------------------------------------------------------ #
    def prepare(
        self,
        functions: Sequence[FunctionRecord],
        training: Trace | None = None,
    ) -> None:
        super().prepare(functions, training)
        if self.capacity is None:
            self.capacity = max(1, len(functions) // 5)
        self.reset()

    def on_bind(self, index: InvocationIndex) -> None:
        n = index.n_functions
        self._last = np.full(n, _NEVER, dtype=np.int64)
        self._sequence = np.zeros(n, dtype=np.int64)
        self._evicted = np.zeros(n, dtype=bool)
        self._mask = np.zeros(n, dtype=bool)
        self._counter = 0

    def reset(self) -> None:
        self._counter = 0
        if self.is_bound:
            self._last.fill(_NEVER)
            self._sequence.fill(0)
            self._evicted.fill(False)
            self._mask.fill(False)

    # ------------------------------------------------------------------ #
    def on_minute_indexed(
        self, minute: int, invoked: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        if invoked.size:
            self._last[invoked] = minute
            self._sequence[invoked] = np.arange(
                self._counter, self._counter + invoked.size, dtype=np.int64
            )
            self._counter += invoked.size
            self._evicted[invoked] = False

        mask = self._mask
        # Warm = invoked at least once, idle for less than the keep-alive
        # window, and not tombstoned by a capacity eviction.
        np.less(minute - self._last, self.keep_alive_minutes, out=mask)
        mask &= self._last != _NEVER
        mask &= ~self._evicted

        if self.capacity is not None:
            live = np.flatnonzero(mask)
            overflow = live.size - self.capacity
            if overflow > 0:
                order = np.argsort(self._sequence[live])
                victims = live[order[:overflow]]
                mask[victims] = False
                self._evicted[victims] = True
        return mask

    # ------------------------------------------------------------------ #
    @property
    def resident_functions(self) -> set[str]:
        """Currently warm function ids (for inspection and tests)."""
        if not self.is_bound:
            return set()
        ids = self._function_ids
        return {ids[position] for position in np.flatnonzero(self._mask)}


class IndexedHybridFunctionPolicy(_IndexedHybridBase):
    """Index-native hybrid histogram policy, one unit per function."""

    name = "hybrid-function"
    #: Unit == function: every histogram and clock is function-local.
    shard_safe = True

    def unit_of(self, record: FunctionRecord) -> str:
        return record.function_id


class IndexedHybridApplicationPolicy(_IndexedHybridBase):
    """Index-native hybrid histogram policy, one unit per application."""

    name = "hybrid-application"

    def unit_of(self, record: FunctionRecord) -> str:
        return record.app_id


class IndexedDefusePolicy(IndexedHybridFunctionPolicy):
    """Index-native Defuse (twin of :class:`~repro.baselines.defuse.DefusePolicy`).

    The offline phase is identical to the dict twin's: histogram seeding via
    the hybrid base, then :func:`~repro.baselines.defuse.mine_dependencies`
    over the same app-scoped candidate groups, so both twins derive the same
    dependency set.  Binding compiles that set into a CSR successor table
    (``indptr`` over predecessor positions, successor positions + pre-warm
    lags as data); a minute then costs the hybrid base's vectorized decision
    plus one ``np.maximum.at`` scatter pushing ``minute + lag`` horizons to
    the invoked predecessors' successors and one ``horizon > minute``
    comparison OR-ed into the residency mask — exactly the dict twin's
    "extend, expire, union" semantics without its per-minute dict churn.

    Parameters are those of :class:`~repro.baselines.defuse.DefusePolicy`.
    """

    name = "defuse"
    #: Dependencies pre-warm *other* functions; a partition can separate
    #: successors from their predecessors, so the hybrid base's shard
    #: safety does not carry over.
    shard_safe = False

    def __init__(
        self,
        histogram_range_minutes: int = 240,
        head_percentile: float = 5.0,
        tail_percentile: float = 99.0,
        uncertain_keep_alive_minutes: int = 10,
        min_samples: int = 10,
        strong_lag: int = 2,
        weak_lag: int = 10,
        strong_confidence: float = 0.8,
        weak_confidence: float = 0.5,
        min_support: int = 3,
    ) -> None:
        super().__init__(
            histogram_range_minutes=histogram_range_minutes,
            head_percentile=head_percentile,
            tail_percentile=tail_percentile,
            uncertain_keep_alive_minutes=uncertain_keep_alive_minutes,
            min_samples=min_samples,
        )
        self.strong_lag = strong_lag
        self.weak_lag = weak_lag
        self.strong_confidence = strong_confidence
        self.weak_confidence = weak_confidence
        self.min_support = min_support
        self._mined: List[Dependency] = []

    # ------------------------------------------------------------------ #
    def prepare(
        self,
        functions: Sequence[FunctionRecord],
        training: Trace | None = None,
    ) -> None:
        super().prepare(functions, training)
        self._mined = []
        if training is None:
            return
        groups: Dict[str, List[str]] = {}
        for record in functions:
            groups.setdefault(record.app_id, []).append(record.function_id)
        self._mined = mine_dependencies(
            training,
            groups,
            strong_lag=self.strong_lag,
            weak_lag=self.weak_lag,
            strong_confidence=self.strong_confidence,
            weak_confidence=self.weak_confidence,
            min_support=self.min_support,
        )

    @property
    def dependencies(self) -> List[Dependency]:
        """All mined dependencies (same introspection as the dict twin)."""
        return list(self._mined)

    # ------------------------------------------------------------------ #
    def on_bind(self, index: InvocationIndex) -> None:
        super().on_bind(index)
        n = index.n_functions
        by_predecessor: Dict[int, List[tuple[int, int]]] = {}
        for dependency in self._mined:
            predecessor = index.index_of.get(dependency.predecessor)
            successor = index.index_of.get(dependency.successor)
            if predecessor is None or successor is None:
                # Mined against metadata the simulated trace doesn't carry;
                # the dict twin's pre-warm of such ids would surface as
                # extra_resident, which a training/simulation split of one
                # trace never produces.
                continue
            by_predecessor.setdefault(predecessor, []).append(
                (successor, dependency.lag_window)
            )
        counts = np.zeros(n, dtype=np.int64)
        predecessors: List[int] = []
        successors: List[int] = []
        lags: List[int] = []
        for predecessor in range(n):
            for successor, lag in by_predecessor.get(predecessor, ()):
                predecessors.append(predecessor)
                successors.append(successor)
                lags.append(lag)
            counts[predecessor] = len(by_predecessor.get(predecessor, ()))
        self._edge_predecessors = np.asarray(predecessors, dtype=np.int64)
        self._succ_positions = np.asarray(successors, dtype=np.int64)
        self._succ_lags = np.asarray(lags, dtype=np.int64)
        self._succ_counts = counts
        self._has_dependencies = bool(self._succ_positions.size)
        # Scratch flags over predecessor positions, reused every minute so
        # edge selection is one vectorized gather, no per-edge Python.
        self._predecessor_invoked = np.zeros(n, dtype=bool)
        self._prewarm_until = np.full(n, _NEVER, dtype=np.int64)

    def reset(self) -> None:
        super().reset()
        if self.is_bound:
            self._prewarm_until.fill(_NEVER)

    # ------------------------------------------------------------------ #
    def on_minute_indexed(
        self, minute: int, invoked: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        mask = super().on_minute_indexed(minute, invoked, counts)
        if self._has_dependencies and invoked.size:
            with_successors = invoked[self._succ_counts[invoked] > 0]
            if with_successors.size:
                flags = self._predecessor_invoked
                flags[with_successors] = True
                edges = np.flatnonzero(flags[self._edge_predecessors])
                flags[with_successors] = False
                np.maximum.at(
                    self._prewarm_until,
                    self._succ_positions[edges],
                    minute + self._succ_lags[edges],
                )
        if self._has_dependencies:
            # Same expiry rule as the dict twin: a horizon of `minute` is
            # already expired, strictly-later horizons pre-warm.
            mask |= self._prewarm_until > minute
        return mask
