"""LCS: least-recently-used warm containers with a long keep-alive (ICDCN'23).

LCS keeps containers warm for an extended period and, when the number of warm
containers exceeds a budget, evicts the least recently used one.  It is not
part of the paper's baseline set (the paper discusses it in related work) but
is included as an additional comparator for the benchmark harness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping, Sequence, Set

from repro.simulation.policy_base import ProvisioningPolicy
from repro.traces.schema import FunctionRecord
from repro.traces.trace import Trace


class LcsPolicy(ProvisioningPolicy):
    """LRU warm-container policy with a fixed time-to-live and capacity.

    Parameters
    ----------
    keep_alive_minutes:
        How long a container may stay warm without invocations (default 30,
        i.e. longer than the fixed 10-minute baseline, per the LCS idea of
        "keeping containers alive for a longer period").
    capacity:
        Maximum number of simultaneously warm containers.  ``None`` means the
        capacity is set to one fifth of the function population at prepare
        time.
    """

    name = "lcs"

    def __init__(self, keep_alive_minutes: int = 30, capacity: int | None = None) -> None:
        if keep_alive_minutes < 1:
            raise ValueError("keep_alive_minutes must be >= 1")
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 when given")
        self.keep_alive_minutes = keep_alive_minutes
        self.capacity = capacity
        self._last_used: "OrderedDict[str, int]" = OrderedDict()

    def prepare(
        self,
        functions: Sequence[FunctionRecord],
        training: Trace | None = None,
    ) -> None:
        super().prepare(functions, training)
        if self.capacity is None:
            self.capacity = max(1, len(functions) // 5)
        self.reset()

    def reset(self) -> None:
        self._last_used = OrderedDict()

    def on_minute(self, minute: int, invocations: Mapping[str, int]) -> Set[str]:
        for function_id in invocations:
            if function_id in self._last_used:
                del self._last_used[function_id]
            self._last_used[function_id] = minute

        # Expire containers idle beyond the keep-alive window.
        expired = [
            function_id
            for function_id, last in self._last_used.items()
            if minute - last >= self.keep_alive_minutes
        ]
        for function_id in expired:
            del self._last_used[function_id]

        # Enforce capacity by evicting the least recently used containers.
        capacity = self.capacity if self.capacity is not None else len(self._last_used)
        while len(self._last_used) > capacity:
            self._last_used.popitem(last=False)

        return set(self._last_used)
