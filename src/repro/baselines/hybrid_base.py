"""Shared machinery for the hybrid histogram policies (Shahrad et al., ATC'20).

The hybrid policy tracks, per *unit* (a function for Hybrid-Function, an
application for Hybrid-Application), the distribution of idle times between
consecutive invocations.  When the distribution is representative it derives a
pre-warm window (head percentile) and a keep-alive window (tail percentile);
otherwise it falls back to a plain keep-alive equal to the histogram range.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Set

import numpy as np

from repro.baselines.histogram import IdleTimeHistogram
from repro.simulation.policy_base import ProvisioningPolicy
from repro.traces.schema import FunctionRecord
from repro.traces.trace import Trace


@dataclass
class _UnitState:
    """Online state tracked for one provisioning unit."""

    histogram: IdleTimeHistogram
    last_invocation: int | None = None
    members: Set[str] = field(default_factory=set)


class HybridHistogramPolicyBase(ProvisioningPolicy):
    """Common implementation of the hybrid histogram policy.

    Subclasses define the provisioning unit by overriding :meth:`unit_of`.

    Parameters
    ----------
    histogram_range_minutes:
        Bound of the idle-time histogram (4 hours in the original paper).
    head_percentile, tail_percentile:
        Percentiles defining the pre-warm and keep-alive windows.
    uncertain_keep_alive_minutes:
        Keep-alive applied to units whose histogram is not representative.
        The original policy keeps such units warm for the histogram range.
    min_samples:
        Minimum idle-time samples before a histogram is trusted.
    """

    name = "hybrid-base"

    def __init__(
        self,
        histogram_range_minutes: int = 240,
        head_percentile: float = 5.0,
        tail_percentile: float = 99.0,
        uncertain_keep_alive_minutes: int | None = None,
        min_samples: int = 10,
    ) -> None:
        self.histogram_range_minutes = histogram_range_minutes
        self.head_percentile = head_percentile
        self.tail_percentile = tail_percentile
        self.uncertain_keep_alive_minutes = (
            histogram_range_minutes
            if uncertain_keep_alive_minutes is None
            else uncertain_keep_alive_minutes
        )
        self.min_samples = min_samples
        self._units: Dict[str, _UnitState] = {}
        self._unit_of_function: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # Unit mapping
    # ------------------------------------------------------------------ #
    def unit_of(self, record: FunctionRecord) -> str:
        """Return the provisioning-unit key for a function (overridden by subclasses)."""
        raise NotImplementedError

    def _unit_for_id(self, function_id: str) -> str:
        unit = self._unit_of_function.get(function_id)
        if unit is None:
            # Function unseen at prepare time: treat it as its own unit.
            unit = function_id
            self._unit_of_function[function_id] = unit
        return unit

    def _state_for(self, unit: str) -> _UnitState:
        state = self._units.get(unit)
        if state is None:
            state = _UnitState(histogram=self._new_histogram())
            self._units[unit] = state
        return state

    def _new_histogram(self) -> IdleTimeHistogram:
        return IdleTimeHistogram(
            range_minutes=self.histogram_range_minutes,
            head_percentile=self.head_percentile,
            tail_percentile=self.tail_percentile,
            min_samples=self.min_samples,
        )

    # ------------------------------------------------------------------ #
    # Offline phase
    # ------------------------------------------------------------------ #
    def prepare(
        self,
        functions: Sequence[FunctionRecord],
        training: Trace | None = None,
    ) -> None:
        super().prepare(functions, training)
        self._units = {}
        self._unit_of_function = {}
        for record in functions:
            unit = self.unit_of(record)
            self._unit_of_function[record.function_id] = unit
            state = self._state_for(unit)
            state.members.add(record.function_id)

        if training is None:
            return

        # Seed each unit's histogram with the idle times observed in training.
        unit_minutes: Dict[str, np.ndarray] = {}
        for record in functions:
            series = training.series(record.function_id) if record.function_id in training else None
            if series is None or not series.any():
                continue
            unit = self._unit_of_function[record.function_id]
            minutes = np.nonzero(series)[0]
            if unit in unit_minutes:
                unit_minutes[unit] = np.union1d(unit_minutes[unit], minutes)
            else:
                unit_minutes[unit] = minutes

        for unit, minutes in unit_minutes.items():
            if minutes.size < 2:
                continue
            idle_times = np.diff(minutes)
            self._units[unit].histogram.observe_many(int(idle) for idle in idle_times)

    def reset(self) -> None:
        for state in self._units.values():
            state.last_invocation = None

    # ------------------------------------------------------------------ #
    # Online phase
    # ------------------------------------------------------------------ #
    def on_minute(self, minute: int, invocations: Mapping[str, int]) -> Set[str]:
        invoked_units: Set[str] = set()
        for function_id in invocations:
            unit = self._unit_for_id(function_id)
            state = self._state_for(unit)
            state.members.add(function_id)
            invoked_units.add(unit)

        for unit in invoked_units:
            state = self._units[unit]
            if state.last_invocation is not None:
                idle = minute - state.last_invocation
                if idle > 0:
                    state.histogram.observe(idle)
            state.last_invocation = minute

        resident: Set[str] = set()
        for state in self._units.values():
            if state.last_invocation is None:
                continue
            if self._unit_resident_next_minute(minute, state):
                resident.update(state.members)
        return resident

    def _unit_resident_next_minute(self, minute: int, state: _UnitState) -> bool:
        """Decide whether the unit should be resident at the start of minute+1."""
        elapsed_next = (minute + 1) - state.last_invocation
        histogram = state.histogram
        if histogram.is_representative:
            prewarm = histogram.prewarm_window
            keep_alive = histogram.keep_alive_window
            if elapsed_next > keep_alive:
                return False
            if prewarm > 1 and elapsed_next < prewarm:
                return False
            return True
        return elapsed_next <= self.uncertain_keep_alive_minutes

    # ------------------------------------------------------------------ #
    # Introspection used by tests
    # ------------------------------------------------------------------ #
    def unit_histogram(self, unit: str) -> IdleTimeHistogram | None:
        """Return the histogram tracked for ``unit`` (or None if unknown)."""
        state = self._units.get(unit)
        return state.histogram if state is not None else None

    def unit_members(self, unit: str) -> Set[str]:
        """Return the function ids belonging to ``unit``."""
        state = self._units.get(unit)
        return set(state.members) if state is not None else set()
