"""Defuse: dependency-guided function scheduling (Shen et al., ICDCS'21).

Defuse mines inter-function dependencies from invocation histories and uses
them to pre-warm functions that are about to be triggered by their
predecessors.  Functions without useful dependencies fall back to a
histogram-based keep-alive (and, for the long tail without a usable
histogram, to a fixed keep-alive), which is why the paper observes that more
than 32% of functions end up on the fixed fallback.

The reproduction models the two dependency flavours described in the paper:

* *strong* dependencies -- the successor follows the predecessor within a
  short lag for a large fraction of the predecessor's invocations;
* *weak* dependencies -- the pair frequently co-occurs inside a longer
  window, with a lower confidence requirement.

Both kinds cause the successor to be pre-warmed whenever the predecessor is
invoked; strong dependencies use a tighter pre-warm window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set

import numpy as np

from repro.baselines.hybrid_function import HybridFunctionPolicy
from repro.traces.schema import FunctionRecord
from repro.traces.trace import Trace


@dataclass(frozen=True)
class Dependency:
    """A mined directed dependency ``predecessor -> successor``."""

    predecessor: str
    successor: str
    confidence: float
    lag_window: int
    strong: bool


def mine_dependencies(
    training: Trace,
    candidate_groups: Mapping[str, Sequence[str]],
    strong_lag: int = 2,
    weak_lag: int = 10,
    strong_confidence: float = 0.8,
    weak_confidence: float = 0.5,
    min_support: int = 3,
) -> List[Dependency]:
    """Mine directed dependencies between functions sharing a group (application).

    Parameters
    ----------
    training:
        Training trace to mine from.
    candidate_groups:
        Mapping from group id to the function ids it contains; only pairs
        within the same group are considered, which keeps mining tractable
        (the original system also scopes mining to related functions).
    strong_lag / weak_lag:
        Maximum lag (minutes) for strong / weak dependencies.
    strong_confidence / weak_confidence:
        Minimum fraction of predecessor invocations followed by the successor
        within the lag window.
    min_support:
        Minimum number of predecessor invocations required before a pair is
        considered at all.
    """
    dependencies: List[Dependency] = []
    duration = training.duration_minutes
    minute_cache: Dict[str, np.ndarray] = {}

    def invoked_minutes(function_id: str) -> np.ndarray:
        minutes = minute_cache.get(function_id)
        if minutes is None:
            minutes = np.nonzero(training.series(function_id))[0]
            minute_cache[function_id] = minutes
        return minutes

    for members in candidate_groups.values():
        members = [fid for fid in members if fid in training]
        if len(members) < 2:
            continue
        for predecessor in members:
            pred_minutes = invoked_minutes(predecessor)
            if pred_minutes.size < min_support:
                continue
            for successor in members:
                if successor == predecessor:
                    continue
                succ_minutes = invoked_minutes(successor)
                if succ_minutes.size == 0:
                    continue
                succ_mask = np.zeros(duration + weak_lag + 1, dtype=bool)
                succ_mask[succ_minutes] = True

                strong_hits = 0
                weak_hits = 0
                for minute in pred_minutes:
                    strong_end = min(minute + strong_lag, duration - 1)
                    weak_end = min(minute + weak_lag, duration - 1)
                    if minute + 1 <= strong_end and succ_mask[minute + 1 : strong_end + 1].any():
                        strong_hits += 1
                        weak_hits += 1
                    elif minute + 1 <= weak_end and succ_mask[minute + 1 : weak_end + 1].any():
                        weak_hits += 1

                support = pred_minutes.size
                strong_conf = strong_hits / support
                weak_conf = weak_hits / support
                if strong_conf >= strong_confidence:
                    dependencies.append(
                        Dependency(predecessor, successor, strong_conf, strong_lag, True)
                    )
                elif weak_conf >= weak_confidence:
                    dependencies.append(
                        Dependency(predecessor, successor, weak_conf, weak_lag, False)
                    )
    return dependencies


class DefusePolicy(HybridFunctionPolicy):
    """Dependency-guided scheduling on top of a per-function histogram keep-alive.

    Not ``shard_safe`` despite the per-function histogram base: mined
    dependencies pre-warm *other* functions, which a partition can separate
    from their predecessors.

    Parameters
    ----------
    strong_lag, weak_lag:
        Pre-warm windows (minutes) applied to strong and weak successors.
    strong_confidence, weak_confidence, min_support:
        Dependency-mining thresholds (see :func:`mine_dependencies`).
    uncertain_keep_alive_minutes:
        Fallback keep-alive for functions without a representative histogram.
        Defuse's fallback is the fixed keep-alive policy, so the default is
        the paper's 10-minute window rather than the hybrid policy's
        histogram range.
    """

    name = "defuse"
    shard_safe = False

    def __init__(
        self,
        histogram_range_minutes: int = 240,
        head_percentile: float = 5.0,
        tail_percentile: float = 99.0,
        uncertain_keep_alive_minutes: int = 10,
        min_samples: int = 10,
        strong_lag: int = 2,
        weak_lag: int = 10,
        strong_confidence: float = 0.8,
        weak_confidence: float = 0.5,
        min_support: int = 3,
    ) -> None:
        super().__init__(
            histogram_range_minutes=histogram_range_minutes,
            head_percentile=head_percentile,
            tail_percentile=tail_percentile,
            uncertain_keep_alive_minutes=uncertain_keep_alive_minutes,
            min_samples=min_samples,
        )
        self.strong_lag = strong_lag
        self.weak_lag = weak_lag
        self.strong_confidence = strong_confidence
        self.weak_confidence = weak_confidence
        self.min_support = min_support
        self._successors: Dict[str, List[Dependency]] = {}
        self._prewarm_until: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def prepare(
        self,
        functions: Sequence[FunctionRecord],
        training: Trace | None = None,
    ) -> None:
        super().prepare(functions, training)
        self._successors = {}
        self._prewarm_until = {}
        if training is None:
            return
        groups: Dict[str, List[str]] = {}
        for record in functions:
            groups.setdefault(record.app_id, []).append(record.function_id)
        dependencies = mine_dependencies(
            training,
            groups,
            strong_lag=self.strong_lag,
            weak_lag=self.weak_lag,
            strong_confidence=self.strong_confidence,
            weak_confidence=self.weak_confidence,
            min_support=self.min_support,
        )
        for dependency in dependencies:
            self._successors.setdefault(dependency.predecessor, []).append(dependency)

    def reset(self) -> None:
        super().reset()
        self._prewarm_until = {}

    @property
    def dependencies(self) -> List[Dependency]:
        """All mined dependencies (for inspection and tests)."""
        return [dep for deps in self._successors.values() for dep in deps]

    # ------------------------------------------------------------------ #
    def on_minute(self, minute: int, invocations: Mapping[str, int]) -> Set[str]:
        resident = super().on_minute(minute, invocations)

        # Pre-warm successors of every invoked predecessor.
        for function_id in invocations:
            for dependency in self._successors.get(function_id, ()):
                horizon = minute + dependency.lag_window
                current = self._prewarm_until.get(dependency.successor, -1)
                if horizon > current:
                    self._prewarm_until[dependency.successor] = horizon

        expired = [fid for fid, until in self._prewarm_until.items() if until <= minute]
        for function_id in expired:
            del self._prewarm_until[function_id]

        resident.update(self._prewarm_until)
        return resident
