"""Function categories used by SPES (Table I and §IV-B of the paper)."""

from __future__ import annotations

import enum


class FunctionCategory(str, enum.Enum):
    """All categories a function can be assigned to.

    The five *deterministic* categories (§IV-A) are checked in priority
    order: a function matching an earlier definition is never checked against
    a later one.  The three *indeterminate* assignments (§IV-B) cover
    functions that match none of the deterministic definitions, and
    ``UNKNOWN`` holds functions with no usable history at all.
    ``NEWLY_POSSIBLE`` marks functions promoted online by the adaptive
    adjusting strategy (§IV-C / Fig. 10's "new_poss" bar).
    """

    # Deterministic categories, in priority order.
    ALWAYS_WARM = "always_warm"
    REGULAR = "regular"
    APPRO_REGULAR = "appro_regular"
    DENSE = "dense"
    SUCCESSIVE = "successive"

    # Indeterminate assignments.
    PULSED = "pulsed"
    CORRELATED = "correlated"
    POSSIBLE = "possible"

    # Fallback / online promotions.
    UNKNOWN = "unknown"
    NEWLY_POSSIBLE = "newly_possible"

    @classmethod
    def deterministic(cls) -> tuple["FunctionCategory", ...]:
        """The five deterministic categories, in categorization priority order."""
        return (
            cls.ALWAYS_WARM,
            cls.REGULAR,
            cls.APPRO_REGULAR,
            cls.DENSE,
            cls.SUCCESSIVE,
        )

    @classmethod
    def indeterminate(cls) -> tuple["FunctionCategory", ...]:
        """The three supplementary assignments of §IV-B."""
        return (cls.PULSED, cls.CORRELATED, cls.POSSIBLE)

    @property
    def is_deterministic(self) -> bool:
        """True for the five Table-I categories."""
        return self in self.deterministic()

    @property
    def uses_prediction(self) -> bool:
        """True when the category pre-loads based on predicted invocation times."""
        return self in (
            FunctionCategory.REGULAR,
            FunctionCategory.APPRO_REGULAR,
            FunctionCategory.DENSE,
            FunctionCategory.POSSIBLE,
            FunctionCategory.NEWLY_POSSIBLE,
        )
