"""Co-occurrence rate (COR) and its T-lagged variant (§III-B2, §IV-B2 D2).

For a target function *f* and a candidate function *g*, the co-occurrence
rate is the fraction of *f*'s invoked minutes at which *g* is also invoked.
The T-lagged variant shifts the candidate's series forward by ``lag``
minutes, measuring how well *g*'s invocations *anticipate* *f*'s: a high
T-lagged COR makes *g* a useful predictive indicator for pre-warming *f*.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _as_bool_mask(series: Sequence[int] | np.ndarray) -> np.ndarray:
    array = np.asarray(series)
    if array.ndim != 1:
        raise ValueError("invocation series must be one-dimensional")
    return array > 0


def co_occurrence_rate(
    target: Sequence[int] | np.ndarray,
    candidate: Sequence[int] | np.ndarray,
) -> float:
    """COR of ``candidate`` with respect to ``target`` (same-minute overlap).

    Returns 0 when the target has no invocations.
    """
    target_mask = _as_bool_mask(target)
    candidate_mask = _as_bool_mask(candidate)
    if target_mask.shape != candidate_mask.shape:
        raise ValueError("target and candidate series must have the same length")
    invoked = int(target_mask.sum())
    if invoked == 0:
        return 0.0
    overlap = int(np.logical_and(target_mask, candidate_mask).sum())
    return overlap / invoked


def lagged_co_occurrence_rate(
    target: Sequence[int] | np.ndarray,
    candidate: Sequence[int] | np.ndarray,
    lag: int,
) -> float:
    """T-lagged COR: fraction of target invocations preceded by the candidate.

    A target invocation at minute ``t`` co-occurs when the candidate was
    invoked at minute ``t - lag``.  ``lag = 0`` reduces to the plain COR.
    """
    if lag < 0:
        raise ValueError("lag must be non-negative")
    target_mask = _as_bool_mask(target)
    candidate_mask = _as_bool_mask(candidate)
    if target_mask.shape != candidate_mask.shape:
        raise ValueError("target and candidate series must have the same length")
    invoked = int(target_mask.sum())
    if invoked == 0:
        return 0.0
    if lag == 0:
        shifted = candidate_mask
    else:
        shifted = np.zeros_like(candidate_mask)
        shifted[lag:] = candidate_mask[:-lag]
    overlap = int(np.logical_and(target_mask, shifted).sum())
    return overlap / invoked


def best_lagged_cor(
    target: Sequence[int] | np.ndarray,
    candidate: Sequence[int] | np.ndarray,
    max_lag: int,
) -> tuple[float, int]:
    """Best T-lagged COR over lags ``0..max_lag`` and the lag achieving it.

    Ties break toward the smallest lag, so a same-minute co-occurrence is
    preferred over an equally strong lagged one.
    """
    if max_lag < 0:
        raise ValueError("max_lag must be non-negative")
    best_value = -1.0
    best_lag = 0
    for lag in range(max_lag + 1):
        value = lagged_co_occurrence_rate(target, candidate, lag)
        if value > best_value:
            best_value = value
            best_lag = lag
    return best_value, best_lag


def forward_trigger_rate(
    predictor: Sequence[int] | np.ndarray,
    target: Sequence[int] | np.ndarray,
    max_lag: int,
) -> float:
    """Fraction of predictor invocations followed by a target invocation within ``max_lag``.

    Used as a precision check when mining correlation links: a very frequent
    function trivially achieves a high T-lagged COR for any target, but it is
    only a useful pre-warming signal when a reasonable share of its own
    invocations actually precede the target.
    """
    if max_lag < 0:
        raise ValueError("max_lag must be non-negative")
    predictor_mask = _as_bool_mask(predictor)
    target_mask = _as_bool_mask(target)
    if predictor_mask.shape != target_mask.shape:
        raise ValueError("predictor and target series must have the same length")
    fires = np.nonzero(predictor_mask)[0]
    if fires.size == 0:
        return 0.0
    duration = target_mask.shape[0]
    hits = 0
    for minute in fires:
        end = min(duration, int(minute) + max_lag + 1)
        if target_mask[int(minute) : end].any():
            hits += 1
    return hits / fires.size


def mean_pairwise_cor(
    targets: Sequence[Sequence[int] | np.ndarray],
    candidates: Sequence[Sequence[int] | np.ndarray],
) -> float:
    """Mean COR of every (target, candidate) pair; used by the §III-B2 analysis."""
    if not targets or not candidates:
        return 0.0
    values = [
        co_occurrence_rate(target, candidate)
        for target in targets
        for candidate in candidates
    ]
    return float(np.mean(values))
