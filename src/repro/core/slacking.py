"""Slacking rules used before the "regular" category check (§IV-A2).

Strictly periodic invocations rarely produce a perfectly constant waiting-time
sequence: the boundary WTs of the observation window are truncated, scheduled
events can be delayed by a minute, and an occasional unrelated invocation can
split one long WT into a long WT plus a tiny one.  The paper applies two
slacking rules before giving up on the "regular" definition:

1. drop the first and last waiting times, and
2. merge adjacent small waiting times into neighbouring near-mode waiting
   times, so e.g. ``(1439, 1438, 1, 1439, 1438, 1)`` becomes
   ``(1439, 1439, 1439, 1439)``.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence


def trim_boundary_waiting_times(waiting_times: Sequence[int]) -> tuple[int, ...]:
    """Drop the first and last waiting times (slacking rule 1).

    Sequences with fewer than three waiting times are returned unchanged,
    since removing both boundaries would leave nothing to check.
    """
    values = tuple(int(value) for value in waiting_times)
    if len(values) < 3:
        return values
    return values[1:-1]


def waiting_time_mode(waiting_times: Sequence[int]) -> int | None:
    """Most frequent waiting-time value; ties break toward the largest value.

    Returns ``None`` for an empty sequence.  Breaking ties toward the largest
    value matches the merging example in the paper, where the near-period
    value (1439) absorbs the small residues.
    """
    values = [int(value) for value in waiting_times]
    if not values:
        return None
    counter = Counter(values)
    best_count = max(counter.values())
    candidates = [value for value, count in counter.items() if count == best_count]
    return max(candidates)


def merge_small_waiting_times(
    waiting_times: Sequence[int],
    mode_tolerance_fraction: float = 0.05,
    small_fraction: float = 0.25,
) -> tuple[int, ...]:
    """Merge waiting-time fragments back into near-mode waiting times (rule 2).

    A spurious invocation in the middle of an otherwise regular gap splits one
    mode-sized waiting time into two fragments.  This rule repairs such
    splits:

    * a waiting time at or above the near-mode band absorbs immediately
      following *small* waiting times (the paper's worked example, where
      ``(1439, 1438, 1, ...)`` becomes ``(1439, 1439, ...)``), and
    * a run of below-mode fragments whose sum lands inside the near-mode band
      is collapsed into a single waiting time (an even split such as
      ``(100, 258)`` for a 359-minute mode).

    Fragments that cannot be reassembled into a near-mode value are left
    untouched.

    Parameters
    ----------
    waiting_times:
        The waiting-time sequence to process.
    mode_tolerance_fraction:
        A value counts as "close to the mode" when it is within
        ``max(1, mode * mode_tolerance_fraction)`` of the mode.
    small_fraction:
        A value counts as "small" when it is at most
        ``max(1, mode * small_fraction)``.
    """
    values = [int(value) for value in waiting_times]
    if len(values) < 2:
        return tuple(values)
    mode = waiting_time_mode(values)
    if mode is None or mode <= 1:
        return tuple(values)

    tolerance = max(1, int(round(mode * mode_tolerance_fraction)))
    small_limit = max(1, int(round(mode * small_fraction)))

    merged: list[int] = []
    index = 0
    length = len(values)
    while index < length:
        value = values[index]
        if value >= mode - tolerance:
            # Near-or-above-mode value: absorb trailing small fragments.
            total = value
            cursor = index + 1
            while (
                cursor < length
                and total < mode
                and values[cursor] <= small_limit
                and total + values[cursor] <= mode + tolerance
            ):
                total += values[cursor]
                cursor += 1
            merged.append(total)
            index = cursor
            continue

        # Below-mode fragment: try to reassemble a full near-mode gap.
        total = value
        cursor = index + 1
        while (
            cursor < length
            and total < mode - tolerance
            and total + values[cursor] <= mode + tolerance
        ):
            total += values[cursor]
            cursor += 1
        if abs(total - mode) <= tolerance:
            merged.append(total)
            index = cursor
        else:
            merged.append(value)
            index += 1

    return tuple(merged)


def apply_slacking_pipeline(waiting_times: Sequence[int]) -> list[tuple[int, ...]]:
    """Return the sequence of progressively slacked WT variants to check.

    The classifier evaluates the "regular" definition against, in order:

    1. the raw waiting times,
    2. the boundary-trimmed waiting times,
    3. the boundary-trimmed waiting times with small WTs merged.

    Variants identical to an earlier one are omitted.
    """
    raw = tuple(int(value) for value in waiting_times)
    variants = [raw]
    trimmed = trim_boundary_waiting_times(raw)
    if trimmed != raw:
        variants.append(trimmed)
    merged = merge_small_waiting_times(trimmed)
    if merged not in variants:
        variants.append(merged)
    return variants
