"""Deterministic function categorization (§IV-A, Table I).

The classifier evaluates the five deterministic definitions in priority order
(*always warm*, *regular*, *appro-regular*, *dense*, *successive*): a function
matching an earlier definition is never tested against later ones.  The
"regular" check is retried on progressively slacked waiting-time sequences
(boundary trimming, small-WT merging) before moving on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.categories import FunctionCategory
from repro.core.config import SpesConfig
from repro.core.predictive import PredictiveValues
from repro.core.sequences import InvocationSummary
from repro.core.slacking import apply_slacking_pipeline


@dataclass(frozen=True)
class CategoryDecision:
    """Outcome of categorizing one function.

    Attributes
    ----------
    category:
        The assigned category.
    predictive:
        The predictive values attached to the category (may be empty).
    detail:
        Short human-readable explanation of why the definition matched, used
        in analysis output and tests.
    """

    category: FunctionCategory
    predictive: PredictiveValues
    detail: str = ""


class DeterministicClassifier:
    """Evaluates the five deterministic category definitions of Table I."""

    def __init__(self, config: SpesConfig | None = None) -> None:
        self.config = config or SpesConfig()

    # ------------------------------------------------------------------ #
    def classify(self, summary: InvocationSummary) -> CategoryDecision | None:
        """Return the deterministic category of a function, or None.

        ``None`` means the function matches no deterministic definition and
        must go through the indeterminate assignment of §IV-B.
        """
        if not summary.has_invocations:
            return None
        if summary.invoked_slots < self.config.min_invocations:
            return None

        checks = (
            self._check_always_warm,
            self._check_regular,
            self._check_appro_regular,
            self._check_dense,
            self._check_successive,
        )
        for check in checks:
            decision = check(summary)
            if decision is not None:
                return decision
        return None

    # ------------------------------------------------------------------ #
    # Individual definitions, in priority order
    # ------------------------------------------------------------------ #
    def _check_always_warm(self, summary: InvocationSummary) -> CategoryDecision | None:
        if summary.invoked_every_slot:
            return CategoryDecision(
                FunctionCategory.ALWAYS_WARM,
                PredictiveValues.none(),
                "invoked at every sampling slot",
            )
        idle_budget = summary.total_slots * self.config.always_warm_idle_fraction
        if summary.inter_invocation_idle <= idle_budget:
            return CategoryDecision(
                FunctionCategory.ALWAYS_WARM,
                PredictiveValues.none(),
                f"inter-invocation idle {summary.inter_invocation_idle} <= "
                f"{idle_budget:.2f} slots",
            )
        return None

    def _check_regular(self, summary: InvocationSummary) -> CategoryDecision | None:
        waiting_times = summary.waiting_times
        if len(waiting_times) < self.config.min_waiting_times:
            return None
        for variant in apply_slacking_pipeline(waiting_times):
            if len(variant) < self.config.min_waiting_times:
                continue
            if self._is_regular(variant):
                median = int(round(float(np.median(np.asarray(variant, dtype=float)))))
                median = max(median, 1)
                return CategoryDecision(
                    FunctionCategory.REGULAR,
                    PredictiveValues.from_discrete([median]),
                    f"regular on {len(variant)} WTs (median {median})",
                )
        return None

    def _is_regular(self, waiting_times: tuple[int, ...]) -> bool:
        values = np.asarray(waiting_times, dtype=float)
        spread = float(np.percentile(values, 95) - np.percentile(values, 5))
        if spread <= self.config.regular_percentile_spread:
            return True
        mean = values.mean()
        if mean == 0:
            return True
        cv = float(values.std(ddof=0) / mean)
        return cv <= self.config.regular_cv_threshold

    def _check_appro_regular(self, summary: InvocationSummary) -> CategoryDecision | None:
        waiting_times = summary.waiting_times
        if len(waiting_times) < self.config.min_waiting_times:
            return None
        modes = summary.waiting_time_modes(self.config.appro_regular_n_modes)
        if not modes:
            return None
        coverage = sum(count for _value, count in modes)
        required = self.config.appro_regular_mode_coverage * len(waiting_times)
        if coverage >= required:
            values = [value for value, _count in modes]
            return CategoryDecision(
                FunctionCategory.APPRO_REGULAR,
                PredictiveValues.from_discrete(values),
                f"top-{len(modes)} modes cover {coverage}/{len(waiting_times)} WTs",
            )
        return None

    def _check_dense(self, summary: InvocationSummary) -> CategoryDecision | None:
        waiting_times = summary.waiting_times
        if len(waiting_times) < self.config.min_waiting_times:
            return None
        p90 = summary.waiting_time_percentile(90.0)
        if p90 > self.config.dense_p90_threshold:
            return None
        modes = summary.waiting_time_modes(self.config.dense_k_modes)
        values = [value for value, _count in modes] or list(waiting_times)
        return CategoryDecision(
            FunctionCategory.DENSE,
            PredictiveValues.from_range(min(values), max(values)),
            f"P90(WT) = {p90:.1f} <= {self.config.dense_p90_threshold}",
        )

    def _check_successive(self, summary: InvocationSummary) -> CategoryDecision | None:
        if not summary.active_times:
            return None
        # A single active run with no waiting time carries no evidence of
        # repeated bursts; require at least two runs.
        if len(summary.active_times) < 2:
            return None
        min_active_time = min(summary.active_times)
        min_active_number = min(summary.active_numbers)
        if (
            min_active_time >= self.config.successive_gamma1
            or min_active_number >= self.config.successive_gamma2
        ):
            return CategoryDecision(
                FunctionCategory.SUCCESSIVE,
                PredictiveValues.none(),
                f"min(AT)={min_active_time}, min(AN)={min_active_number}",
            )
        return None
