"""Configuration of SPES: every threshold, window and ablation switch.

Default values follow §IV and §V-A of the paper: ``theta_prewarm = 2``
minutes, ``theta_givenup`` of 5 minutes for the *dense* and *pulsed*
categories and 1 minute otherwise, a T-lagged co-occurrence threshold of 0.5
with lags up to 10 minutes, and the category-definition constants of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.categories import FunctionCategory


@dataclass
class SpesConfig:
    """All tunable parameters of SPES.

    Categorization thresholds (§IV-A / Table I)
    -------------------------------------------
    always_warm_idle_fraction:
        A function is *always warm* when its total inter-invocation idle time
        is at most this fraction of the observation window (one thousandth in
        the paper), or when it is invoked at every slot.
    regular_percentile_spread:
        A function is *regular* when P95(WT) - P5(WT) is at most this value.
    regular_cv_threshold:
        ... or when the coefficient of variation of its WTs is at most this.
    appro_regular_n_modes:
        Number of leading WT modes considered for the *appro-regular* check.
    appro_regular_mode_coverage:
        The leading modes must cover at least this fraction of the WT
        sequence for the function to be *appro-regular*.
    dense_p90_threshold:
        A function is *dense* when the 90th percentile of its WTs is at most
        this small constant (minutes).
    dense_k_modes:
        Number of leading WT modes whose range forms the dense predictive
        interval.
    successive_gamma1 / successive_gamma2:
        Lower bounds on min(AT) and min(AN) for the *successive* category
        (``gamma1 < gamma2``).
    min_waiting_times:
        Minimum number of WT samples before the regular / appro-regular /
        dense definitions are evaluated.
    min_invocations:
        Minimum number of invoked minutes before any deterministic definition
        is evaluated.

    Indeterminate assignment (§IV-B)
    --------------------------------
    tcor_threshold:
        Minimum T-lagged co-occurrence rate for two functions to be linked.
    tcor_max_lag:
        Maximum lag T (minutes) explored for the T-lagged COR.
    correlation_precision_threshold:
        Minimum fraction of the *predictor's* invocations that must be
        followed by the target within the lag window; this filters out very
        frequent functions that would otherwise link to everything.
    negative_sample_size:
        Number of non-overlapping functions sampled when estimating the
        baseline COR in the empirical analysis.
    alpha:
        Scaling factor in (0, 1) trading cold starts against wasted memory
        when the validation winners disagree (see
        :func:`repro.core.indeterminate.choose_indeterminate_category`);
        larger values weigh cold starts more heavily.
    possible_min_mode_count:
        A WT value must appear at least this many times to become a
        *possible* predictive value (the paper requires "more than once").
    possible_range_threshold:
        If the spread of a possible function's predictive values exceeds this
        many minutes they are treated as discrete values; otherwise as a
        continuous range.
    validation_days:
        Length of the validation window (taken from the tail of the training
        trace) used to pick between the pulsed / correlated / possible
        strategies.
    forgetting_max_days:
        The forgetting strategy re-checks the deterministic definitions on
        suffixes of the training window, dropping up to ``floor(d / 2)`` of
        the oldest days; this caps how many suffixes are tried.

    Provisioning (§IV-D)
    --------------------
    theta_prewarm:
        Pre-load a function when a predicted invocation time falls within
        ``theta_prewarm`` minutes of the current time.
    theta_givenup_default:
        Evict a loaded function once its current waiting time reaches this
        value (used by every category without an override).
    theta_givenup_overrides:
        Per-category overrides of the give-up threshold; the paper uses 5
        minutes for *dense* and *pulsed*.
    correlated_prewarm_window:
        After a linked predictor fires, keep the correlated target loaded for
        its observed lag plus this slack.

    Adaptive strategies (§IV-C)
    ---------------------------
    adjusting_min_new_wts:
        Number of online WT samples required before predictive values are
        re-estimated.
    online_corr_max_candidates:
        Maximum number of same-trigger candidate predictors tracked for an
        unseen function.
    online_corr_drop_margin:
        A candidate is dropped when its COR falls this far below the current
        maximum COR among the candidates.
    online_corr_min_observations:
        Number of target invocations observed before candidates are pruned.
    online_corr_futility_fires:
        A candidate that has fired this many times without ever preceding the
        target is dropped even before the COR-based pruning kicks in, so a
        very frequent same-trigger function cannot keep an unseen target
        permanently pre-warmed.

    Ablation switches (RQ4)
    -----------------------
    enable_correlation / enable_online_correlation / enable_forgetting /
    enable_adjusting:
        Toggle the corresponding design; the RQ4 benchmarks flip these.
    """

    # --- categorization thresholds -------------------------------------- #
    always_warm_idle_fraction: float = 0.001
    regular_percentile_spread: float = 1.0
    regular_cv_threshold: float = 0.01
    appro_regular_n_modes: int = 3
    appro_regular_mode_coverage: float = 0.9
    dense_p90_threshold: float = 5.0
    dense_k_modes: int = 3
    successive_gamma1: int = 3
    successive_gamma2: int = 5
    min_waiting_times: int = 4
    min_invocations: int = 3

    # --- indeterminate assignment ---------------------------------------- #
    tcor_threshold: float = 0.5
    tcor_max_lag: int = 10
    correlation_precision_threshold: float = 0.3
    negative_sample_size: int = 50
    alpha: float = 0.5
    possible_min_mode_count: int = 2
    possible_range_threshold: int = 10
    validation_days: float = 2.0
    forgetting_max_days: int | None = None

    # --- provisioning ----------------------------------------------------- #
    theta_prewarm: int = 2
    theta_givenup_default: int = 1
    theta_givenup_overrides: Dict[FunctionCategory, int] = field(
        default_factory=lambda: {
            FunctionCategory.DENSE: 5,
            FunctionCategory.PULSED: 5,
        }
    )
    correlated_prewarm_window: int = 3

    # --- adaptive strategies ---------------------------------------------- #
    adjusting_min_new_wts: int = 5
    online_corr_max_candidates: int = 8
    online_corr_drop_margin: float = 0.3
    online_corr_min_observations: int = 3
    online_corr_futility_fires: int = 30

    # --- ablation switches -------------------------------------------------#
    enable_correlation: bool = True
    enable_online_correlation: bool = True
    enable_forgetting: bool = True
    enable_adjusting: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.always_warm_idle_fraction < 1:
            raise ValueError("always_warm_idle_fraction must be in (0, 1)")
        if self.regular_percentile_spread < 0:
            raise ValueError("regular_percentile_spread must be non-negative")
        if self.regular_cv_threshold < 0:
            raise ValueError("regular_cv_threshold must be non-negative")
        if self.appro_regular_n_modes < 1:
            raise ValueError("appro_regular_n_modes must be >= 1")
        if not 0 < self.appro_regular_mode_coverage <= 1:
            raise ValueError("appro_regular_mode_coverage must be in (0, 1]")
        if self.dense_p90_threshold <= 0:
            raise ValueError("dense_p90_threshold must be positive")
        if self.dense_k_modes < 1:
            raise ValueError("dense_k_modes must be >= 1")
        if not 0 < self.successive_gamma1 < self.successive_gamma2:
            raise ValueError("require 0 < successive_gamma1 < successive_gamma2")
        if self.min_waiting_times < 1:
            raise ValueError("min_waiting_times must be >= 1")
        if self.min_invocations < 1:
            raise ValueError("min_invocations must be >= 1")
        if not 0 < self.tcor_threshold <= 1:
            raise ValueError("tcor_threshold must be in (0, 1]")
        if self.tcor_max_lag < 0:
            raise ValueError("tcor_max_lag must be non-negative")
        if not 0 <= self.correlation_precision_threshold <= 1:
            raise ValueError("correlation_precision_threshold must be in [0, 1]")
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if self.possible_min_mode_count < 2:
            raise ValueError("possible_min_mode_count must be >= 2")
        if self.possible_range_threshold < 1:
            raise ValueError("possible_range_threshold must be >= 1")
        if self.validation_days <= 0:
            raise ValueError("validation_days must be positive")
        if self.theta_prewarm < 0:
            raise ValueError("theta_prewarm must be non-negative")
        if self.theta_givenup_default < 1:
            raise ValueError("theta_givenup_default must be >= 1")
        if any(value < 1 for value in self.theta_givenup_overrides.values()):
            raise ValueError("theta_givenup overrides must be >= 1")
        if self.correlated_prewarm_window < 1:
            raise ValueError("correlated_prewarm_window must be >= 1")
        if self.adjusting_min_new_wts < 1:
            raise ValueError("adjusting_min_new_wts must be >= 1")
        if self.online_corr_max_candidates < 1:
            raise ValueError("online_corr_max_candidates must be >= 1")
        if not 0 < self.online_corr_drop_margin < 1:
            raise ValueError("online_corr_drop_margin must be in (0, 1)")
        if self.online_corr_min_observations < 1:
            raise ValueError("online_corr_min_observations must be >= 1")
        if self.online_corr_futility_fires < 1:
            raise ValueError("online_corr_futility_fires must be >= 1")

    # ------------------------------------------------------------------ #
    def theta_givenup(self, category: FunctionCategory) -> int:
        """Give-up (eviction) threshold for a category."""
        return self.theta_givenup_overrides.get(category, self.theta_givenup_default)

    def scaled_givenup(self, scale: int) -> "SpesConfig":
        """Return a copy with every give-up threshold multiplied by ``scale``.

        This is the knob swept in Fig. 13(b).
        """
        if scale < 1:
            raise ValueError("scale must be >= 1")
        overrides = {
            category: value * scale
            for category, value in self.theta_givenup_overrides.items()
        }
        return self.replace(
            theta_givenup_default=self.theta_givenup_default * scale,
            theta_givenup_overrides=overrides,
        )

    def replace(self, **changes: object) -> "SpesConfig":
        """Return a copy of the configuration with the given fields replaced."""
        from dataclasses import replace as dataclass_replace

        return dataclass_replace(self, **changes)  # type: ignore[arg-type]
