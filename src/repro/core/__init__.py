"""SPES core: differentiated serverless function provisioning.

This package implements the paper's primary contribution:

* :mod:`repro.core.config` -- every tunable threshold of SPES, including the
  ablation switches used in RQ4.
* :mod:`repro.core.sequences` -- waiting-time (WT), active-time (AT) and
  active-number (AN) extraction from per-minute invocation series.
* :mod:`repro.core.slacking` -- the slacking rules that absorb accidental
  fluctuations before the "regular" check (trim boundary WTs, merge adjacent
  small WTs toward the mode).
* :mod:`repro.core.categories` -- the function categories of Table I plus the
  supplementary assignments of §IV-B.
* :mod:`repro.core.classifier` -- deterministic categorization (§IV-A).
* :mod:`repro.core.correlation` -- co-occurrence rate (COR) and its T-lagged
  variant (§III-B2, §IV-B2).
* :mod:`repro.core.predictive` -- per-category predictive values (§IV-D).
* :mod:`repro.core.indeterminate` -- forgetting and the pulsed / correlated /
  possible assignment with validation (§IV-B).
* :mod:`repro.core.offline` -- the full offline categorization pipeline.
* :mod:`repro.core.state` -- per-function online state (Algorithm 1's FState).
* :mod:`repro.core.adaptive` -- the adjusting and online-correlation adaptive
  strategies (§IV-C).
* :mod:`repro.core.policy` -- :class:`SpesPolicy`, the online provision
  algorithm (Algorithm 1) packaged as a
  :class:`~repro.simulation.policy_base.ProvisioningPolicy`.
* :mod:`repro.core.indexed` -- :class:`IndexedSpesPolicy`, the index-native
  (vectorized) port of the same algorithm.
"""

from repro.core.categories import FunctionCategory
from repro.core.config import SpesConfig
from repro.core.sequences import InvocationSummary, extract_sequences
from repro.core.predictive import PredictiveValues
from repro.core.classifier import DeterministicClassifier
from repro.core.correlation import co_occurrence_rate, lagged_co_occurrence_rate, best_lagged_cor
from repro.core.offline import CategorizationResult, OfflineCategorizer
from repro.core.policy import SpesPolicy
from repro.core.indexed import IndexedSpesPolicy

__all__ = [
    "FunctionCategory",
    "SpesConfig",
    "InvocationSummary",
    "extract_sequences",
    "PredictiveValues",
    "DeterministicClassifier",
    "co_occurrence_rate",
    "lagged_co_occurrence_rate",
    "best_lagged_cor",
    "CategorizationResult",
    "OfflineCategorizer",
    "SpesPolicy",
    "IndexedSpesPolicy",
]
