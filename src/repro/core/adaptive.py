"""Adaptive online strategies (§IV-C): adjusting and online correlation.

*Adjusting* keeps the predictive values honest as behaviour drifts: when
enough waiting times have been observed online and their statistics deviate
from the training-window statistics by more than the training standard
deviation, the predictive value is moved to the mean of the old and new
estimates.  Unknown or unseen functions whose online waiting times start
showing repeated values are promoted to the *newly possible* category.

*Online correlation* links functions that never appeared during training
("unseen") to known functions sharing the same trigger: at first, any
candidate invocation pre-warms the target; candidates whose co-occurrence
rate falls well below the best candidate's are gradually pruned.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from statistics import median
from typing import Dict, Iterable, List, Set

import numpy as np

from repro.core.categories import FunctionCategory
from repro.core.config import SpesConfig
from repro.core.predictive import PredictiveValues
from repro.core.state import FunctionState


class AdjustingStrategy:
    """Online adjustment of predictive values and promotion of unknown functions."""

    #: Categories whose predictive values are re-estimated online (§IV-C1 S2).
    ADJUSTABLE = (
        FunctionCategory.REGULAR,
        FunctionCategory.APPRO_REGULAR,
        FunctionCategory.DENSE,
        FunctionCategory.POSSIBLE,
        FunctionCategory.NEWLY_POSSIBLE,
    )

    def __init__(self, config: SpesConfig) -> None:
        self.config = config
        self.adjusted_functions: Set[str] = set()
        self.promoted_functions: Set[str] = set()

    # ------------------------------------------------------------------ #
    def maybe_update(self, state: FunctionState) -> bool:
        """Apply S2 (adjust values) and S3 (promote unknown/unseen) to ``state``.

        Returns True when the state was modified (predictive values adjusted
        or the category promoted), so callers caching derived per-function
        data — e.g. the indexed SPES port's threshold arrays — can refresh
        only when something actually changed.
        """
        observed = len(state.online_waiting_times)
        if observed < self.config.adjusting_min_new_wts:
            return False
        # A no-change evaluation is a pure function of the waiting-time list
        # (plus state fields only *this* strategy mutates), so until a new
        # waiting time arrives the answer stays False — skip the statistics.
        if observed == state.adjust_checked_wts:
            return False
        if state.category in self.ADJUSTABLE:
            changed = self._adjust_predictive_values(state)
        elif state.category == FunctionCategory.UNKNOWN or not state.seen_in_training:
            changed = self._maybe_promote(state)
        else:
            return False
        state.adjust_checked_wts = -1 if changed else observed
        return changed

    # ------------------------------------------------------------------ #
    def _adjust_predictive_values(self, state: FunctionState) -> bool:
        # statistics.median over the raw int list: bit-identical to
        # np.median of the float64 array for these integer waiting times
        # ((a + b) / 2 vs (a + b) * 0.5 round the same way), without the
        # per-invocation array construction and reduction machinery.
        new_median = float(median(state.online_waiting_times))
        drift = abs(new_median - state.offline_wt_median)
        tolerance = max(state.offline_wt_std, 1.0)
        if drift <= tolerance:
            return False

        blended = max(1, int(round((state.offline_wt_median + new_median) / 2.0)))
        if state.predictive.window is not None:
            low, high = state.predictive.window
            shift = blended - int(round(state.offline_wt_median)) if state.offline_wt_median else 0
            new_low = max(1, low + shift)
            new_high = max(new_low, high + shift)
            state.predictive = PredictiveValues.from_range(new_low, new_high)
        else:
            values = set(state.predictive.discrete)
            values.add(blended)
            # Keep the prediction set small: retain the blended value plus the
            # values closest to the new online median.
            ranked = sorted(values, key=lambda value: abs(value - new_median))
            state.predictive = PredictiveValues.from_discrete(ranked[:3])
        online = np.asarray(state.online_waiting_times, dtype=float)
        state.offline_wt_median = blended
        state.offline_wt_std = float(online.std(ddof=0))
        state.adjusted = True
        self.adjusted_functions.add(state.function_id)
        return True

    def _maybe_promote(self, state: FunctionState) -> bool:
        counter = Counter(state.online_waiting_times)
        repeated = [
            value
            for value, count in counter.items()
            if count >= self.config.possible_min_mode_count
        ]
        if not repeated:
            return False
        state.category = FunctionCategory.NEWLY_POSSIBLE
        state.predictive = PredictiveValues.from_values_with_spread_rule(
            sorted(repeated), self.config.possible_range_threshold
        )
        state.theta_givenup = self.config.theta_givenup(FunctionCategory.NEWLY_POSSIBLE)
        online = np.asarray(state.online_waiting_times, dtype=float)
        state.offline_wt_median = float(np.median(online))
        state.offline_wt_std = float(online.std(ddof=0))
        self.promoted_functions.add(state.function_id)
        return True


# --------------------------------------------------------------------------- #
# Online correlation for unseen functions
# --------------------------------------------------------------------------- #
@dataclass
class _TargetTracker:
    """Candidate bookkeeping for one unseen target function."""

    candidates: Dict[str, int] = field(default_factory=dict)  # candidate -> hit count
    fires: Dict[str, int] = field(default_factory=dict)  # candidate -> fire count
    last_candidate_fire: Dict[str, int] = field(default_factory=dict)
    observations: int = 0
    active: Set[str] = field(default_factory=set)


class OnlineCorrelationTracker:
    """Links unseen functions to same-trigger known functions during provisioning."""

    def __init__(self, config: SpesConfig) -> None:
        self.config = config
        self._targets: Dict[str, _TargetTracker] = {}
        # candidate id -> set of target ids it may pre-warm
        self._reverse: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------ #
    @property
    def tracked_targets(self) -> List[str]:
        """Ids of unseen functions currently being tracked."""
        return list(self._targets)

    def register_target(self, target_id: str, candidate_ids: Iterable[str]) -> None:
        """Start tracking an unseen ``target_id`` against the given candidates."""
        candidates = [cid for cid in candidate_ids if cid != target_id]
        candidates = candidates[: self.config.online_corr_max_candidates]
        if not candidates:
            return
        tracker = _TargetTracker(
            candidates={cid: 0 for cid in candidates},
            fires={cid: 0 for cid in candidates},
            active=set(candidates),
        )
        self._targets[target_id] = tracker
        for candidate_id in candidates:
            self._reverse.setdefault(candidate_id, set()).add(target_id)

    def is_tracked(self, target_id: str) -> bool:
        """True when ``target_id`` already has a candidate tracker."""
        return target_id in self._targets

    # ------------------------------------------------------------------ #
    def on_candidate_invoked(self, candidate_id: str, minute: int) -> List[str]:
        """Record a candidate invocation; return targets that should be pre-warmed."""
        targets = self._reverse.get(candidate_id)
        if not targets:
            return []
        prewarm: List[str] = []
        for target_id in targets:
            tracker = self._targets.get(target_id)
            if tracker is None or candidate_id not in tracker.candidates:
                continue
            tracker.last_candidate_fire[candidate_id] = minute
            tracker.fires[candidate_id] = tracker.fires.get(candidate_id, 0) + 1
            if candidate_id not in tracker.active:
                continue
            # Futility rule: a candidate that keeps firing without the target
            # ever following is not a predictive indicator -- stop letting it
            # keep the target warm.
            if (
                tracker.candidates[candidate_id] == 0
                and tracker.fires[candidate_id] >= self.config.online_corr_futility_fires
            ):
                tracker.active.discard(candidate_id)
                continue
            prewarm.append(target_id)
        return prewarm

    def on_target_invoked(self, target_id: str, minute: int) -> None:
        """Record a target invocation, update candidate CORs, prune weak candidates."""
        tracker = self._targets.get(target_id)
        if tracker is None:
            return
        tracker.observations += 1
        window = self.config.tcor_max_lag
        for candidate_id, last_fire in tracker.last_candidate_fire.items():
            if minute - window <= last_fire <= minute:
                tracker.candidates[candidate_id] += 1

        if tracker.observations < self.config.online_corr_min_observations:
            return
        cors = {
            candidate_id: hits / tracker.observations
            for candidate_id, hits in tracker.candidates.items()
        }
        best = max(cors.values(), default=0.0)
        margin = self.config.online_corr_drop_margin
        tracker.active = {
            candidate_id
            for candidate_id, cor in cors.items()
            if cor >= best - margin and cor > 0
        }

    # ------------------------------------------------------------------ #
    def candidate_cor(self, target_id: str, candidate_id: str) -> float:
        """Current COR estimate of ``candidate_id`` for ``target_id`` (0 if unknown)."""
        tracker = self._targets.get(target_id)
        if tracker is None or tracker.observations == 0:
            return 0.0
        return tracker.candidates.get(candidate_id, 0) / tracker.observations

    def active_candidates(self, target_id: str) -> Set[str]:
        """Candidates still allowed to pre-warm ``target_id``."""
        tracker = self._targets.get(target_id)
        return set(tracker.active) if tracker is not None else set()
