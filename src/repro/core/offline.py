"""Offline categorization pipeline (the left half of Fig. 7).

Given the training window of a trace, the categorizer

1. extracts each function's WT/AT/AN sequences and attempts the five
   deterministic definitions (§IV-A);
2. applies the *forgetting* strategy to functions that failed: it retries the
   definitions on progressively more recent suffixes of the training window
   (§IV-B1);
3. mines correlation links (T-lagged co-occurrence with functions sharing an
   application or user, §IV-B2 D2);
4. assigns the remaining functions to *pulsed*, *correlated* or *possible* by
   validating each strategy on the tail of the training window (§IV-B2);
5. marks functions never invoked during training as *unknown*.

The result is a :class:`CategorizationResult` holding one
:class:`FunctionProfile` per function, which the online policy consumes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.categories import FunctionCategory
from repro.core.classifier import CategoryDecision, DeterministicClassifier
from repro.core.config import SpesConfig
from repro.core.correlation import best_lagged_cor, forward_trigger_rate
from repro.core.indeterminate import (
    CorrelationLink,
    StrategyOutcome,
    choose_indeterminate_category,
    evaluate_correlated_strategy,
    evaluate_possible_strategy,
    evaluate_pulsed_strategy,
    possible_predictive_values,
)
from repro.core.predictive import PredictiveValues
from repro.core.sequences import InvocationSummary, extract_sequences
from repro.traces.schema import MINUTES_PER_DAY, TriggerType
from repro.traces.trace import Trace


@dataclass
class FunctionProfile:
    """Everything the online policy needs to know about one function.

    Attributes
    ----------
    function_id:
        The function's id.
    category:
        Assigned category.
    predictive:
        Predictive values used for pre-warming (may be empty).
    links:
        Correlation links whose predictors anticipate this function.
    offline_wt_median / offline_wt_std:
        Median and standard deviation of the training waiting times, used by
        the online *adjusting* strategy to decide when predictive values have
        drifted.
    trigger / app_id / owner_id:
        Static metadata carried over from the trace for the online
        correlation strategy.
    detail:
        Human-readable categorization rationale.
    """

    function_id: str
    category: FunctionCategory
    predictive: PredictiveValues = field(default_factory=PredictiveValues.none)
    links: tuple[CorrelationLink, ...] = ()
    offline_wt_median: float = 0.0
    offline_wt_std: float = 0.0
    trigger: TriggerType = TriggerType.HTTP
    app_id: str = ""
    owner_id: str = ""
    detail: str = ""


@dataclass
class CategorizationResult:
    """Output of the offline phase: a profile for every function."""

    profiles: Dict[str, FunctionProfile] = field(default_factory=dict)

    def category_of(self, function_id: str) -> FunctionCategory:
        """Category of ``function_id`` (UNKNOWN for functions with no profile)."""
        profile = self.profiles.get(function_id)
        return profile.category if profile is not None else FunctionCategory.UNKNOWN

    def category_counts(self) -> Counter:
        """Number of functions in each category."""
        return Counter(profile.category for profile in self.profiles.values())

    def functions_in(self, category: FunctionCategory) -> List[str]:
        """Ids of functions assigned to ``category``."""
        return [
            function_id
            for function_id, profile in self.profiles.items()
            if profile.category == category
        ]

    def predictor_index(self) -> Dict[str, List[tuple[str, int]]]:
        """Map each predictor id to the ``(target, lag)`` pairs it anticipates."""
        index: Dict[str, List[tuple[str, int]]] = {}
        for profile in self.profiles.values():
            for link in profile.links:
                index.setdefault(link.predictor_id, []).append(
                    (profile.function_id, link.lag)
                )
        return index


class OfflineCategorizer:
    """Runs the full offline categorization pipeline over a training trace."""

    def __init__(self, config: SpesConfig | None = None) -> None:
        self.config = config or SpesConfig()
        self._classifier = DeterministicClassifier(self.config)

    # ------------------------------------------------------------------ #
    def categorize(self, training: Trace) -> CategorizationResult:
        """Categorize every function of ``training`` and return the profiles."""
        config = self.config
        result = CategorizationResult()

        summaries: Dict[str, InvocationSummary] = {}
        pending: List[str] = []

        for record in training.records():
            series = training.series(record.function_id)
            summary = extract_sequences(series)
            summaries[record.function_id] = summary

            if not summary.has_invocations:
                result.profiles[record.function_id] = self._profile_from(
                    record.function_id,
                    training,
                    FunctionCategory.UNKNOWN,
                    PredictiveValues.none(),
                    summary,
                    detail="never invoked during training",
                )
                continue

            decision = self._classifier.classify(summary)
            if decision is None and config.enable_forgetting:
                decision = self._forgetting(series)
            if decision is not None:
                result.profiles[record.function_id] = self._profile_from(
                    record.function_id,
                    training,
                    decision.category,
                    decision.predictive,
                    summary,
                    detail=decision.detail,
                )
            else:
                pending.append(record.function_id)

        links_by_target: Dict[str, tuple[CorrelationLink, ...]] = {}
        if config.enable_correlation and pending:
            links_by_target = self._mine_links(training, pending)

        validation_start = max(
            0,
            training.duration_minutes
            - int(round(config.validation_days * MINUTES_PER_DAY)),
        )
        for function_id in pending:
            profile = self._assign_indeterminate(
                function_id,
                training,
                summaries[function_id],
                links_by_target.get(function_id, ()),
                validation_start,
            )
            result.profiles[function_id] = profile

        return result

    # ------------------------------------------------------------------ #
    # Step 2: forgetting
    # ------------------------------------------------------------------ #
    def _forgetting(self, series: np.ndarray) -> CategoryDecision | None:
        """Retry the deterministic definitions on recent suffixes of the series."""
        duration = series.shape[0]
        total_days = duration // MINUTES_PER_DAY
        if total_days < 2:
            return None
        max_drop = total_days // 2
        if self.config.forgetting_max_days is not None:
            max_drop = min(max_drop, self.config.forgetting_max_days)
        for dropped_days in range(1, max_drop + 1):
            start = dropped_days * MINUTES_PER_DAY
            if start >= duration:
                break
            summary = extract_sequences(series[start:])
            decision = self._classifier.classify(summary)
            if decision is not None:
                return CategoryDecision(
                    decision.category,
                    decision.predictive,
                    detail=f"{decision.detail} (forgot first {dropped_days} day(s))",
                )
        return None

    # ------------------------------------------------------------------ #
    # Step 3: correlation-link mining
    # ------------------------------------------------------------------ #
    def _mine_links(
        self, training: Trace, targets: List[str]
    ) -> Dict[str, tuple[CorrelationLink, ...]]:
        config = self.config
        by_app = training.functions_by_app()
        by_owner = training.functions_by_owner()
        links: Dict[str, tuple[CorrelationLink, ...]] = {}

        for target_id in targets:
            record = training.record(target_id)
            target_series = training.series(target_id)
            if not target_series.any():
                continue

            candidates = set(by_app.get(record.app_id, ()))
            candidates.update(by_owner.get(record.owner_id, ()))
            candidates.discard(target_id)
            if not candidates:
                continue
            # Prefer the most active candidates; cap the search to keep the
            # offline phase tractable on large owner groups.
            ranked = sorted(
                candidates,
                key=lambda fid: training.total_invocations(fid),
                reverse=True,
            )[: config.online_corr_max_candidates]

            found: List[CorrelationLink] = []
            for candidate_id in ranked:
                candidate_series = training.series(candidate_id)
                if not candidate_series.any():
                    continue
                cor, lag = best_lagged_cor(
                    target_series, candidate_series, config.tcor_max_lag
                )
                if cor < config.tcor_threshold:
                    continue
                precision = forward_trigger_rate(
                    candidate_series, target_series, config.tcor_max_lag
                )
                if precision < config.correlation_precision_threshold:
                    continue
                found.append(
                    CorrelationLink(predictor_id=candidate_id, lag=lag, cor=cor)
                )
            if found:
                found.sort(key=lambda link: link.cor, reverse=True)
                links[target_id] = tuple(found[:5])
        return links

    # ------------------------------------------------------------------ #
    # Step 4: indeterminate assignment with validation
    # ------------------------------------------------------------------ #
    def _assign_indeterminate(
        self,
        function_id: str,
        training: Trace,
        summary: InvocationSummary,
        links: tuple[CorrelationLink, ...],
        validation_start: int,
    ) -> FunctionProfile:
        config = self.config
        series = training.series(function_id)
        validation = series[validation_start:]

        outcomes: Dict[FunctionCategory, StrategyOutcome] = {}
        outcomes[FunctionCategory.PULSED] = evaluate_pulsed_strategy(
            validation, config.theta_givenup(FunctionCategory.PULSED)
        )

        possible_values = possible_predictive_values(summary.waiting_times, config)
        if not possible_values.is_empty:
            outcomes[FunctionCategory.POSSIBLE] = evaluate_possible_strategy(
                validation,
                possible_values,
                config.theta_prewarm,
                config.theta_givenup(FunctionCategory.POSSIBLE),
            )

        if links:
            predictor_series = [
                (training.series(link.predictor_id)[validation_start:], link.lag)
                for link in links
            ]
            outcomes[FunctionCategory.CORRELATED] = evaluate_correlated_strategy(
                validation,
                predictor_series,
                config.correlated_prewarm_window,
                config.theta_givenup(FunctionCategory.CORRELATED),
            )

        category = choose_indeterminate_category(outcomes, config.alpha)
        if category == FunctionCategory.POSSIBLE:
            predictive = possible_values
            kept_links: tuple[CorrelationLink, ...] = ()
        elif category == FunctionCategory.CORRELATED:
            predictive = PredictiveValues.none()
            kept_links = links
        else:
            predictive = PredictiveValues.none()
            kept_links = ()

        outcome = outcomes[category]
        detail = (
            f"validated {category.value}: {outcome.cold_starts} cold starts, "
            f"{outcome.wasted_memory} wasted minutes"
        )
        return self._profile_from(
            function_id,
            training,
            category,
            predictive,
            summary,
            links=kept_links,
            detail=detail,
        )

    # ------------------------------------------------------------------ #
    def _profile_from(
        self,
        function_id: str,
        training: Trace,
        category: FunctionCategory,
        predictive: PredictiveValues,
        summary: InvocationSummary,
        links: tuple[CorrelationLink, ...] = (),
        detail: str = "",
    ) -> FunctionProfile:
        record = training.record(function_id)
        waiting = np.asarray(summary.waiting_times, dtype=float)
        return FunctionProfile(
            function_id=function_id,
            category=category,
            predictive=predictive,
            links=links,
            offline_wt_median=float(np.median(waiting)) if waiting.size else 0.0,
            offline_wt_std=float(waiting.std(ddof=0)) if waiting.size else 0.0,
            trigger=record.trigger,
            app_id=record.app_id,
            owner_id=record.owner_id,
            detail=detail,
        )
