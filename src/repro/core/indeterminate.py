"""Indeterminate function assignment (§IV-B): pulsed, correlated, possible.

Functions that match none of the deterministic definitions are assigned one
of three supplementary strategies by *validating* each strategy on the tail
of the training window and picking the one with the best cold-start /
wasted-memory outcome:

* **D1 pulsed** -- tolerate a cold start at the head of each activity burst
  and keep the instance warm until it has been idle for a threshold.
* **D2 correlated** -- pre-warm the function whenever one of its linked
  predictor functions (high T-lagged COR, same application/user) fires.
* **D3 possible** -- use the waiting-time values that repeat as predictive
  values and pre-warm around the predicted times.

When one strategy wins on both metrics it is chosen outright; otherwise the
rise rates of the two winners are compared through the scaling factor
``alpha`` (§IV-B2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.categories import FunctionCategory
from repro.core.config import SpesConfig
from repro.core.predictive import PredictiveValues


@dataclass(frozen=True)
class StrategyOutcome:
    """Cold starts and wasted memory a strategy incurs on the validation window."""

    cold_starts: int
    wasted_memory: int


@dataclass(frozen=True)
class CorrelationLink:
    """A predictive link: ``predictor`` anticipates the target by ``lag`` minutes."""

    predictor_id: str
    lag: int
    cor: float

    def __post_init__(self) -> None:
        if self.lag < 0:
            raise ValueError("lag must be non-negative")
        if not 0 <= self.cor <= 1:
            raise ValueError("cor must be in [0, 1]")


# --------------------------------------------------------------------------- #
# Predictive values for the "possible" strategy
# --------------------------------------------------------------------------- #
def possible_predictive_values(
    waiting_times: Sequence[int], config: SpesConfig
) -> PredictiveValues:
    """Predictive values of a *possible* function: its repeated waiting times.

    Waiting-time values occurring at least ``possible_min_mode_count`` times
    become predictions; the spread rule of §IV-D decides whether they are
    treated as discrete values or as a continuous range.  Returns empty
    predictive values when nothing repeats.
    """
    counter = Counter(int(value) for value in waiting_times)
    repeated = [
        value
        for value, count in counter.items()
        if count >= config.possible_min_mode_count
    ]
    if not repeated:
        return PredictiveValues.none()
    return PredictiveValues.from_values_with_spread_rule(
        sorted(repeated), config.possible_range_threshold
    )


# --------------------------------------------------------------------------- #
# Per-strategy validation simulations
# --------------------------------------------------------------------------- #
def evaluate_pulsed_strategy(
    series: Sequence[int] | np.ndarray, theta_givenup: int
) -> StrategyOutcome:
    """Simulate the pulsed strategy (keep-warm after each invocation) on ``series``."""
    counts = np.asarray(series, dtype=np.int64)
    resident = False
    idle = 0
    cold_starts = 0
    wasted = 0
    for count in counts:
        invoked = count > 0
        if invoked:
            if not resident:
                cold_starts += 1
            resident = True
            idle = 0
        else:
            if resident:
                wasted += 1
                idle += 1
                if idle >= theta_givenup:
                    resident = False
    return StrategyOutcome(cold_starts=cold_starts, wasted_memory=wasted)


def evaluate_possible_strategy(
    series: Sequence[int] | np.ndarray,
    predictive: PredictiveValues,
    theta_prewarm: int,
    theta_givenup: int,
) -> StrategyOutcome:
    """Simulate prediction-driven pre-warming with the given predictive values."""
    counts = np.asarray(series, dtype=np.int64)
    resident = False
    idle = 0
    cold_starts = 0
    wasted = 0
    last_invocation: int | None = None
    for minute, count in enumerate(counts):
        invoked = count > 0
        if invoked:
            if not resident:
                cold_starts += 1
            resident = True
            last_invocation = minute
            idle = 0
            continue
        if resident:
            wasted += 1
        idle += 1
        preload = (
            last_invocation is not None
            and not predictive.is_empty
            and predictive.matches(minute + 1, last_invocation, theta_prewarm)
        )
        if preload:
            resident = True
        elif idle >= theta_givenup:
            resident = False
    return StrategyOutcome(cold_starts=cold_starts, wasted_memory=wasted)


def evaluate_correlated_strategy(
    series: Sequence[int] | np.ndarray,
    predictor_series: Sequence[tuple[Sequence[int] | np.ndarray, int]],
    prewarm_window: int,
    theta_givenup: int,
) -> StrategyOutcome:
    """Simulate predictor-driven pre-warming.

    Parameters
    ----------
    series:
        Target invocation counts over the validation window.
    predictor_series:
        ``(counts, lag)`` pairs for each linked predictor; whenever a
        predictor fires at minute ``t``, the target is kept resident from
        ``t + 1`` through ``t + lag + prewarm_window``.
    prewarm_window:
        Slack added after the predicted arrival time.
    theta_givenup:
        Idle threshold applied after the target's own invocations.
    """
    counts = np.asarray(series, dtype=np.int64)
    duration = counts.shape[0]
    prewarm_mask = np.zeros(duration, dtype=bool)
    for predictor, lag in predictor_series:
        predictor_counts = np.asarray(predictor, dtype=np.int64)
        usable = min(predictor_counts.shape[0], duration)
        for minute in np.nonzero(predictor_counts[:usable])[0]:
            start = int(minute) + 1
            end = min(duration, int(minute) + lag + prewarm_window + 1)
            if start < end:
                prewarm_mask[start:end] = True

    resident = False
    idle = 0
    cold_starts = 0
    wasted = 0
    for minute, count in enumerate(counts):
        invoked = count > 0
        if invoked:
            if not resident:
                cold_starts += 1
            resident = True
            idle = 0
            continue
        if resident:
            wasted += 1
        idle += 1
        if prewarm_mask[minute]:
            resident = True
        elif idle >= theta_givenup:
            resident = False
    return StrategyOutcome(cold_starts=cold_starts, wasted_memory=wasted)


# --------------------------------------------------------------------------- #
# Choosing between the validated strategies
# --------------------------------------------------------------------------- #
def choose_indeterminate_category(
    outcomes: Mapping[FunctionCategory, StrategyOutcome], alpha: float
) -> FunctionCategory:
    """Pick the category whose strategy validated best (§IV-B2).

    A strategy winning on both cold starts and wasted memory is chosen
    outright.  Otherwise the cold-start winner ``A`` and the memory winner
    ``B`` are compared through their rise rates: picking ``B`` instead of
    ``A`` raises cold starts by ``delta_cs``; picking ``A`` instead of ``B``
    raises wasted memory by ``delta_wm``.  The two penalties are compared
    after scaling the cold-start penalty by ``alpha``: the cold-start winner
    is kept when ``alpha * delta_cs >= delta_wm`` (its memory overhead is
    justified by the cold starts it avoids), otherwise the memory winner
    prevails.  Larger ``alpha`` therefore weighs cold starts more heavily.

    .. note::
       The paper's §IV-B2 states the comparison with the opposite inequality
       while also stating that a *smaller* alpha favours cold starts; the two
       statements conflict, and the paper's own results (e.g. the high WMT
       ratio it accepts for "possible" functions in Fig. 12) match the
       penalty-comparison reading implemented here.
    """
    if not outcomes:
        raise ValueError("at least one strategy outcome is required")
    if len(outcomes) == 1:
        return next(iter(outcomes))

    by_cold = min(outcomes, key=lambda cat: (outcomes[cat].cold_starts, outcomes[cat].wasted_memory))
    by_memory = min(outcomes, key=lambda cat: (outcomes[cat].wasted_memory, outcomes[cat].cold_starts))
    if by_cold == by_memory:
        return by_cold

    cs_a = outcomes[by_cold].cold_starts
    cs_b = outcomes[by_memory].cold_starts
    wm_a = outcomes[by_cold].wasted_memory
    wm_b = outcomes[by_memory].wasted_memory

    delta_cs = (cs_b - cs_a) / max(cs_a, 1)
    delta_wm = (wm_a - wm_b) / max(wm_b, 1)
    if delta_cs * alpha >= delta_wm:
        return by_cold
    return by_memory
