"""Predictive values: how SPES forecasts a function's next invocation (§IV-D).

Each categorized function carries *predictive values* derived from its
waiting-time history:

* *regular* functions use the median waiting time (one discrete value);
* *appro-regular* functions use their leading waiting-time modes (several
  discrete values);
* *dense* functions use the continuous range spanned by their leading modes;
* *possible* functions use the waiting-time values that repeat, treated as
  discrete values when widely spread and as a continuous range otherwise.

Predicted invocation times are the last invocation time plus each predictive
value; the provision algorithm pre-loads a function when any predicted time
falls within ``theta_prewarm`` minutes of the current time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class PredictiveValues:
    """Predicted waiting times until the next invocation.

    Attributes
    ----------
    discrete:
        Discrete waiting-time predictions (minutes since last invocation).
    window:
        Continuous prediction interval ``(low, high)`` in minutes since the
        last invocation, or ``None``.

    A function may carry both flavours empty (e.g. *always warm* and
    *successive* functions, whose provisioning does not rely on prediction).
    """

    discrete: tuple[int, ...] = ()
    window: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if any(value < 0 for value in self.discrete):
            raise ValueError("discrete predictive values must be non-negative")
        if self.window is not None:
            low, high = self.window
            if low < 0 or high < low:
                raise ValueError("window must satisfy 0 <= low <= high")

    # ------------------------------------------------------------------ #
    @classmethod
    def none(cls) -> "PredictiveValues":
        """Predictive values for categories that do not predict."""
        return cls()

    @classmethod
    def from_discrete(cls, values: Iterable[int]) -> "PredictiveValues":
        """Build discrete predictive values, de-duplicated and sorted."""
        unique = tuple(sorted({int(value) for value in values}))
        return cls(discrete=unique)

    @classmethod
    def from_range(cls, low: int, high: int) -> "PredictiveValues":
        """Build a continuous prediction window ``[low, high]``."""
        return cls(window=(int(low), int(high)))

    @classmethod
    def from_values_with_spread_rule(
        cls, values: Sequence[int], range_threshold: int
    ) -> "PredictiveValues":
        """Apply the paper's rule for *possible* functions.

        If the spread of the values exceeds ``range_threshold`` they are kept
        as discrete predictions; otherwise every integer inside their range is
        a plausible waiting time, so a continuous window is used.
        """
        if not values:
            return cls.none()
        low, high = min(values), max(values)
        if high - low > range_threshold:
            return cls.from_discrete(values)
        return cls.from_range(low, high)

    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """True when no prediction is available."""
        return not self.discrete and self.window is None

    def predicted_times(self, last_invocation: int) -> list[tuple[int, int]]:
        """Absolute prediction intervals given the last invocation minute.

        Discrete values become degenerate intervals ``(t, t)``; the window (if
        any) becomes one wide interval.
        """
        intervals = [
            (last_invocation + value, last_invocation + value) for value in self.discrete
        ]
        if self.window is not None:
            low, high = self.window
            intervals.append((last_invocation + low, last_invocation + high))
        return intervals

    def matches(self, minute: int, last_invocation: int, theta_prewarm: int) -> bool:
        """True when a predicted invocation falls within ``theta_prewarm`` of ``minute``."""
        for low, high in self.predicted_times(last_invocation):
            if low - theta_prewarm <= minute <= high + theta_prewarm:
                return True
        return False

    def prewarm_trigger_minutes(self, last_invocation: int, theta_prewarm: int) -> list[int]:
        """Minutes at which pre-warming should be (re)considered.

        One trigger per prediction interval, placed ``theta_prewarm`` minutes
        before the interval starts (clamped at the invocation time itself).
        """
        triggers = []
        for low, _high in self.predicted_times(last_invocation):
            triggers.append(max(last_invocation, low - theta_prewarm))
        return triggers

    def horizon(self, last_invocation: int, theta_prewarm: int) -> int | None:
        """Latest minute at which any prediction can still justify residency."""
        intervals = self.predicted_times(last_invocation)
        if not intervals:
            return None
        return max(high + theta_prewarm for _low, high in intervals)
