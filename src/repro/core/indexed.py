"""Index-native port of the SPES online provisioning loop (Algorithm 1).

:class:`IndexedSpesPolicy` is the
:class:`~repro.simulation.vector_policy.VectorizedPolicy` twin of
:class:`~repro.core.policy.SpesPolicy`: the offline phase
(:class:`~repro.core.offline.OfflineCategorizer`), the per-invocation state
machine (:class:`~repro.core.state.FunctionState`), the adaptive strategies
and the pre-warm calendar are all reused unchanged — only the per-minute
*bookkeeping* moves from Python sets and dicts to numpy arrays over the
trace's function-index space:

* residency is a boolean mask (no ``set(self._resident)`` copy per minute);
* the give-up thresholds, hold-until horizons (prediction, offline
  correlation, online correlation) and always-warm flags live in per-function
  arrays, refreshed only when a state actually changes (the
  :meth:`~repro.core.adaptive.AdjustingStrategy.maybe_update` change flag);
* the eviction scan — the dominant per-minute cost of the dict
  implementation, which walks the whole resident set — becomes a handful of
  vectorized comparisons; only candidates with live predictive values fall
  back to a per-function ``preload_due`` check.

The port is *decision-identical* to the dict implementation: the randomized
equivalence tests assert fingerprint equality against ``SpesPolicy`` under
both engines.
"""

from __future__ import annotations

import numpy as np

from repro.core.categories import FunctionCategory
from repro.core.config import SpesConfig
from repro.core.policy import SpesPolicy
from repro.core.state import FunctionState
from repro.simulation.vector_policy import VectorizedPolicy
from repro.traces.trace import InvocationIndex

__all__ = ["IndexedSpesPolicy"]

#: "Never invoked" marker for the last-invocation array.  Chosen as ``-1`` so
#: the vectorized idle time ``minute - last`` equals the dict
#: implementation's ``idle_minutes`` for never-invoked functions
#: (``minute + 1``) — including during negatively-numbered warm-up minutes.
_NEVER_INVOKED = -1


class IndexedSpesPolicy(VectorizedPolicy, SpesPolicy):
    """SPES with array-based per-minute bookkeeping.

    Parameters
    ----------
    config:
        SPES configuration; the paper's defaults are used when omitted.
    """

    name = "spes"

    def __init__(self, config: SpesConfig | None = None) -> None:
        SpesPolicy.__init__(self, config)

    # ------------------------------------------------------------------ #
    # Binding
    # ------------------------------------------------------------------ #
    def on_bind(self, index: InvocationIndex) -> None:
        n = index.n_functions
        self._mask = np.zeros(n, dtype=bool)
        self._invoked_scratch = np.zeros(n, dtype=bool)
        self._last_arr = np.full(n, _NEVER_INVOKED, dtype=np.int64)
        self._theta_arr = np.full(n, self.config.theta_givenup_default, dtype=np.int64)
        self._always_arr = np.zeros(n, dtype=bool)
        self._haspred_arr = np.zeros(n, dtype=bool)
        self._pred_hold_arr = np.zeros(n, dtype=np.int64)
        self._corr_hold_arr = np.zeros(n, dtype=np.int64)
        self._online_hold_arr = np.zeros(n, dtype=np.int64)
        # Position-keyed pre-warm calendar: ``minute -> (positions, holds)``
        # append-only lists, replacing the dict twin's id-keyed
        # ``{minute: {function_id: hold}}``.  Duplicates are resolved at
        # apply time by ``np.maximum.at`` — associative max, so append-now /
        # dedup-later produces the exact holds the eager dict-max did.
        self._prewarm_due: dict[int, tuple[list, list]] = {}
        for position, function_id in enumerate(index.function_ids):
            state = self._states.get(function_id)
            if state is None:
                state = self._ensure_state(function_id)
            self._sync_state_arrays(position, state)

    def _sync_state_arrays(self, position: int, state: FunctionState) -> None:
        """Refresh the cached decision inputs of one function."""
        self._theta_arr[position] = state.theta_givenup
        self._always_arr[position] = state.category == FunctionCategory.ALWAYS_WARM
        self._haspred_arr[position] = not state.predictive.is_empty

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def resident_functions(self):
        """Functions currently kept resident by the policy."""
        if self.is_bound:
            return {
                self._function_ids[position]
                for position in np.flatnonzero(self._mask)
            }
        return set(self._resident)

    # ------------------------------------------------------------------ #
    # Online phase (Algorithm 1, indexed form)
    # ------------------------------------------------------------------ #
    def on_minute_indexed(
        self, minute: int, invoked: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        mask = self._mask
        scratch = self._invoked_scratch
        ids = self._function_ids
        states = self._states
        adjusting = self._adjusting

        if invoked.size:
            scratch[invoked] = True
        for position in invoked.tolist():
            function_id = ids[position]
            state = states.get(function_id)
            if state is None:
                state = self._ensure_state(function_id)
                self._sync_state_arrays(position, state)
            cold = not mask[position]
            state.record_invocation(minute, cold)
            if adjusting is not None and adjusting.maybe_update(state):
                self._sync_state_arrays(position, state)
            mask[position] = True
            self._last_arr[position] = minute
            self._schedule_prediction_prewarm_indexed(position, state, minute)
            self._fire_correlated_links_indexed(function_id, minute)
            self._update_online_correlation_indexed(state, minute)

        self._apply_due_prewarm_indexed(minute)
        self._evict_idle_indexed(minute)
        if invoked.size:
            scratch[invoked] = False
        return mask

    # ------------------------------------------------------------------ #
    # Pre-warming helpers (array-backed twins of the dict versions)
    # ------------------------------------------------------------------ #
    def _schedule_prediction_prewarm_indexed(
        self, position: int, state: FunctionState, minute: int
    ) -> None:
        """Position-keyed twin of ``SpesPolicy._schedule_prediction_prewarm``.

        Triggers and holds are appended to flat parallel lists instead of
        nested per-id dicts; ``max(minute, low - theta) <= minute`` and
        ``low - theta <= minute`` reject the same windows, so the filter is
        unchanged.
        """
        if state.predictive.is_empty:
            return
        theta = state.theta_prewarm
        calendar = self._prewarm_due
        for low, high in state.predictive.predicted_times(minute):
            trigger = low - theta
            if trigger <= minute:
                continue
            entry = calendar.get(trigger)
            if entry is None:
                entry = calendar[trigger] = ([], [])
            entry[0].append(position)
            entry[1].append(high + theta + 1)

    def _fire_correlated_links_indexed(self, predictor_id: str, minute: int) -> None:
        links = self._predictor_index.get(predictor_id)
        if not links:
            return
        config = self.config
        index_of = self._index_of
        for target_id, lag in links:
            position = index_of.get(target_id)
            if position is None:
                # A target outside the trace's function space cannot be
                # invoked in this simulation; skipping it cannot change any
                # charged metric.
                continue
            load_at = minute + max(0, lag - config.theta_prewarm)
            keep_until = minute + lag + config.theta_prewarm + 1
            if keep_until > self._corr_hold_arr[position]:
                self._corr_hold_arr[position] = keep_until
            if load_at <= minute:
                self._mask[position] = True
                if target_id not in self._states:
                    self._sync_state_arrays(position, self._ensure_state(target_id))
            else:
                entry = self._prewarm_due.get(load_at)
                if entry is None:
                    entry = self._prewarm_due[load_at] = ([], [])
                entry[0].append(position)
                entry[1].append(keep_until)

    def _update_online_correlation_indexed(
        self, state: FunctionState, minute: int
    ) -> None:
        if self._online_corr is None:
            return
        function_id = state.function_id
        if not state.seen_in_training:
            if not self._online_corr.is_tracked(function_id):
                self._online_corr.register_target(
                    function_id, self._candidate_ids_for(function_id)
                )
            self._online_corr.on_target_invoked(function_id, minute)

        targets = self._online_corr.on_candidate_invoked(function_id, minute)
        for target_id in targets:
            position = self._index_of.get(target_id)
            if position is None:
                continue
            keep_until = minute + self.config.correlated_prewarm_window + 1
            if keep_until > self._online_hold_arr[position]:
                self._online_hold_arr[position] = keep_until
            self._mask[position] = True
            if target_id not in self._states:
                self._sync_state_arrays(position, self._ensure_state(target_id))

    def _apply_due_prewarm_indexed(self, minute: int) -> None:
        """Batch-apply every pre-warm due this minute with two array ops.

        Only positions of the bound index are ever scheduled (and
        :meth:`on_bind` materialized a state for each), so the dict twin's
        unknown-id and unknown-state guards have nothing left to filter.
        """
        entry = self._prewarm_due.pop(minute, None)
        if entry is None:
            return
        positions = np.asarray(entry[0], dtype=np.int64)
        holds = np.asarray(entry[1], dtype=np.int64)
        np.maximum.at(self._pred_hold_arr, positions, holds)
        self._mask[positions[~self._invoked_scratch[positions]]] = True

    # ------------------------------------------------------------------ #
    # Eviction (vectorized)
    # ------------------------------------------------------------------ #
    def _evict_idle_indexed(self, minute: int) -> None:
        """Vectorized twin of ``SpesPolicy._evict_idle``.

        A resident, non-invoked, non-always-warm function is evicted when its
        idle time has reached its give-up threshold and neither a hold-until
        horizon nor a live prediction justifies keeping it.
        """
        mask = self._mask
        candidates = mask & ~self._invoked_scratch & ~self._always_arr
        if not candidates.any():
            return
        next_minute = minute + 1
        idle = minute - self._last_arr
        held = (
            (self._pred_hold_arr > next_minute)
            | (self._corr_hold_arr > next_minute)
            | (self._online_hold_arr > next_minute)
        )
        evict = candidates & (idle >= self._theta_arr) & ~held

        # Only functions with live predictive values need the per-function
        # prediction check; everything else was decided by pure array math.
        check = np.flatnonzero(evict & self._haspred_arr)
        if check.size:
            ids = self._function_ids
            states = self._states
            for position in check.tolist():
                if states[ids[position]].preload_due(next_minute):
                    evict[position] = False
        mask[evict] = False
