"""Per-function online state (the ``FState`` of Algorithm 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.categories import FunctionCategory
from repro.core.predictive import PredictiveValues


@dataclass
class FunctionState:
    """Mutable online state tracked for one function during provisioning.

    Attributes
    ----------
    function_id:
        The function's id.
    category:
        Current category (may be promoted online by the adaptive strategies).
    predictive:
        Current predictive values (may be adjusted online).
    theta_prewarm:
        Pre-warm window applied to this function.
    theta_givenup:
        Idle threshold after which the instance is evicted.
    last_invocation:
        Minute of the most recent invocation, or ``None``.
    online_waiting_times:
        Waiting times observed during the online phase (used by adjusting).
    invocation_count / cold_start_count:
        Online counters (used for reporting per-category statistics).
    offline_wt_median / offline_wt_std:
        Training-window statistics used to decide when the online behaviour
        has drifted far enough to adjust the predictive values.
    seen_in_training:
        False for functions that never appeared during training ("unseen").
    adjusted:
        True once the adjusting strategy has modified the predictive values.
    """

    function_id: str
    category: FunctionCategory
    predictive: PredictiveValues = field(default_factory=PredictiveValues.none)
    theta_prewarm: int = 2
    theta_givenup: int = 1
    last_invocation: int | None = None
    online_waiting_times: List[int] = field(default_factory=list)
    invocation_count: int = 0
    cold_start_count: int = 0
    offline_wt_median: float = 0.0
    offline_wt_std: float = 0.0
    seen_in_training: bool = True
    adjusted: bool = False
    #: Length of ``online_waiting_times`` at the last adjusting-strategy
    #: evaluation that left the state unmodified; lets the strategy skip
    #: re-deriving statistics until a new waiting time actually arrives.
    adjust_checked_wts: int = field(default=-1, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    def record_invocation(self, minute: int, cold: bool) -> int | None:
        """Record an invocation at ``minute``; return the completed WT, if any.

        A waiting time is produced only when at least one idle minute
        separates this invocation from the previous one.
        """
        waiting_time: int | None = None
        if self.last_invocation is not None:
            gap = minute - self.last_invocation - 1
            if gap > 0:
                waiting_time = gap
                self.online_waiting_times.append(gap)
        self.last_invocation = minute
        self.invocation_count += 1
        if cold:
            self.cold_start_count += 1
        return waiting_time

    def idle_minutes(self, minute: int) -> int:
        """Idle minutes accumulated up to and including ``minute``."""
        if self.last_invocation is None:
            return minute + 1
        return max(0, minute - self.last_invocation)

    def preload_due(self, minute: int) -> bool:
        """True when a predicted invocation justifies keeping/loading the instance."""
        if self.last_invocation is None or self.predictive.is_empty:
            return False
        return self.predictive.matches(minute, self.last_invocation, self.theta_prewarm)

    @property
    def cold_start_rate(self) -> float:
        """Online cold-start rate of this function."""
        if self.invocation_count == 0:
            return 0.0
        return self.cold_start_count / self.invocation_count
