"""SPES online provisioning (Algorithm 1) as a :class:`ProvisioningPolicy`.

The offline phase (:class:`~repro.core.offline.OfflineCategorizer`) assigns a
category and predictive values to every function.  Online, the policy

* records invocations, waiting times and cold starts per function;
* schedules pre-warm triggers from the predictive values, so a function is
  loaded shortly before its predicted next invocation;
* pre-warms *correlated* functions when their linked predictors fire;
* keeps an invoked function resident until it has been idle for its
  category's give-up threshold (unless a prediction justifies keeping it);
* applies the adaptive strategies: predictive-value adjusting, promotion of
  unknown/unseen functions, and online correlation for unseen functions.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Set

from repro.core.adaptive import AdjustingStrategy, OnlineCorrelationTracker
from repro.core.categories import FunctionCategory
from repro.core.config import SpesConfig
from repro.core.offline import CategorizationResult, OfflineCategorizer
from repro.core.state import FunctionState
from repro.simulation.policy_base import ProvisioningPolicy
from repro.traces.schema import FunctionRecord
from repro.traces.trace import Trace


class SpesPolicy(ProvisioningPolicy):
    """The SPES differentiated provisioning scheduler.

    Parameters
    ----------
    config:
        SPES configuration; the paper's defaults are used when omitted.

    Examples
    --------
    >>> from repro.traces import AzureTraceGenerator, GeneratorProfile, split_trace
    >>> from repro.simulation import simulate_policy
    >>> trace = AzureTraceGenerator(GeneratorProfile.small(seed=1)).generate()
    >>> split = split_trace(trace, training_days=2.0)
    >>> result = simulate_policy(SpesPolicy(), split.simulation, split.training)
    >>> 0.0 <= result.overall_cold_start_rate <= 1.0
    True
    """

    name = "spes"

    def __init__(self, config: SpesConfig | None = None) -> None:
        self.config = config or SpesConfig()
        self.categorization: CategorizationResult | None = None
        self._states: Dict[str, FunctionState] = {}
        self._resident: Set[str] = set()
        self._prewarm_calendar: Dict[int, Dict[str, int]] = {}
        self._prediction_hold_until: Dict[str, int] = {}
        self._correlated_prewarm_until: Dict[str, int] = {}
        self._online_prewarm_until: Dict[str, int] = {}
        self._predictor_index: Dict[str, List[tuple[str, int]]] = {}
        self._training_invocations: Dict[str, int] = {}
        self._adjusting: AdjustingStrategy | None = None
        self._online_corr: OnlineCorrelationTracker | None = None

    # ------------------------------------------------------------------ #
    # Offline phase
    # ------------------------------------------------------------------ #
    def prepare(
        self,
        functions: Sequence[FunctionRecord],
        training: Trace | None = None,
    ) -> None:
        super().prepare(functions, training)
        config = self.config

        self._states = {}
        self._resident = set()
        self._prewarm_calendar = {}
        self._prediction_hold_until = {}
        self._correlated_prewarm_until = {}
        self._online_prewarm_until = {}
        self._predictor_index = {}
        self._training_invocations = {}
        self._adjusting = AdjustingStrategy(config) if config.enable_adjusting else None
        self._online_corr = (
            OnlineCorrelationTracker(config) if config.enable_online_correlation else None
        )

        if training is not None:
            self.categorization = OfflineCategorizer(config).categorize(training)
            self._predictor_index = self.categorization.predictor_index()
            for function_id in training.function_ids:
                self._training_invocations[function_id] = training.total_invocations(
                    function_id
                )
        else:
            self.categorization = None

        for record in functions:
            profile = (
                self.categorization.profiles.get(record.function_id)
                if self.categorization is not None
                else None
            )
            if profile is not None:
                category = profile.category
                state = FunctionState(
                    function_id=record.function_id,
                    category=category,
                    predictive=profile.predictive,
                    theta_prewarm=config.theta_prewarm,
                    theta_givenup=config.theta_givenup(category),
                    offline_wt_median=profile.offline_wt_median,
                    offline_wt_std=profile.offline_wt_std,
                    seen_in_training=self._training_invocations.get(record.function_id, 0) > 0,
                )
            else:
                state = FunctionState(
                    function_id=record.function_id,
                    category=FunctionCategory.UNKNOWN,
                    theta_prewarm=config.theta_prewarm,
                    theta_givenup=config.theta_givenup(FunctionCategory.UNKNOWN),
                    seen_in_training=False,
                )
            self._states[record.function_id] = state

    # ------------------------------------------------------------------ #
    # Introspection used by experiments, analysis and tests
    # ------------------------------------------------------------------ #
    @property
    def states(self) -> Mapping[str, FunctionState]:
        """Per-function online state (read-only view for analysis)."""
        return self._states

    def category_assignments(self) -> Dict[str, FunctionCategory]:
        """Current category of every known function, including online promotions."""
        return {function_id: state.category for function_id, state in self._states.items()}

    @property
    def resident_functions(self) -> Set[str]:
        """Functions currently kept resident by the policy."""
        return set(self._resident)

    # ------------------------------------------------------------------ #
    # Online phase (Algorithm 1)
    # ------------------------------------------------------------------ #
    def on_minute(self, minute: int, invocations: Mapping[str, int]) -> Set[str]:
        config = self.config

        for function_id in invocations:
            state = self._ensure_state(function_id)
            cold = function_id not in self._resident
            state.record_invocation(minute, cold)
            if self._adjusting is not None:
                self._adjusting.maybe_update(state)
            self._resident.add(function_id)
            self._schedule_prediction_prewarm(state, minute)
            self._fire_correlated_links(function_id, minute)
            self._update_online_correlation(state, minute)

        self._apply_due_prewarm(minute, invocations)
        self._evict_idle(minute, invocations)
        return set(self._resident)

    # ------------------------------------------------------------------ #
    # Invocation handling helpers
    # ------------------------------------------------------------------ #
    def _ensure_state(self, function_id: str) -> FunctionState:
        state = self._states.get(function_id)
        if state is None:
            state = FunctionState(
                function_id=function_id,
                category=FunctionCategory.UNKNOWN,
                theta_prewarm=self.config.theta_prewarm,
                theta_givenup=self.config.theta_givenup(FunctionCategory.UNKNOWN),
                seen_in_training=False,
            )
            self._states[function_id] = state
        return state

    def _schedule_prediction_prewarm(self, state: FunctionState, minute: int) -> None:
        """Register future pre-warm triggers from the function's predictions.

        Each trigger carries the end of the prediction window it was derived
        from, so a prediction made now is still honoured even if an
        intervening (e.g. spurious) invocation later moves the function's
        "last invocation" anchor.
        """
        if state.predictive.is_empty:
            return
        theta = state.theta_prewarm
        for low, high in state.predictive.predicted_times(minute):
            trigger = max(minute, low - theta)
            hold_until = high + theta + 1
            if trigger <= minute:
                continue
            entries = self._prewarm_calendar.setdefault(trigger, {})
            if hold_until > entries.get(state.function_id, 0):
                entries[state.function_id] = hold_until

    def _fire_correlated_links(self, predictor_id: str, minute: int) -> None:
        """Pre-warm correlated targets whose predictor just fired."""
        for target_id, lag in self._predictor_index.get(predictor_id, ()):
            load_at = minute + max(0, lag - self.config.theta_prewarm)
            keep_until = minute + lag + self.config.theta_prewarm + 1
            current = self._correlated_prewarm_until.get(target_id, 0)
            if keep_until > current:
                self._correlated_prewarm_until[target_id] = keep_until
            if load_at <= minute:
                self._resident.add(target_id)
                self._ensure_state(target_id)
            else:
                entries = self._prewarm_calendar.setdefault(load_at, {})
                if keep_until > entries.get(target_id, 0):
                    entries[target_id] = keep_until

    def _update_online_correlation(self, state: FunctionState, minute: int) -> None:
        """Feed the online-correlation tracker (unseen targets and their candidates)."""
        if self._online_corr is None:
            return
        function_id = state.function_id
        if not state.seen_in_training:
            if not self._online_corr.is_tracked(function_id):
                self._online_corr.register_target(
                    function_id, self._candidate_ids_for(function_id)
                )
            self._online_corr.on_target_invoked(function_id, minute)

        targets = self._online_corr.on_candidate_invoked(function_id, minute)
        for target_id in targets:
            keep_until = minute + self.config.correlated_prewarm_window + 1
            current = self._online_prewarm_until.get(target_id, 0)
            if keep_until > current:
                self._online_prewarm_until[target_id] = keep_until
            self._resident.add(target_id)
            self._ensure_state(target_id)

    def _candidate_ids_for(self, function_id: str) -> List[str]:
        """Rank candidate predictors for an unseen function (same trigger first)."""
        record = self.known_functions.get(function_id)
        if record is None:
            return []
        candidates: List[tuple[int, int, str]] = []
        for other_id, other in self.known_functions.items():
            if other_id == function_id:
                continue
            if other.trigger != record.trigger:
                continue
            state = self._states.get(other_id)
            if state is None or state.category == FunctionCategory.UNKNOWN:
                continue
            same_app = 1 if other.app_id == record.app_id else 0
            same_owner = 1 if other.owner_id == record.owner_id else 0
            activity = self._training_invocations.get(other_id, 0)
            candidates.append((-(same_app * 2 + same_owner), -activity, other_id))
        candidates.sort()
        return [function_id for _, _, function_id in candidates[: self.config.online_corr_max_candidates]]

    # ------------------------------------------------------------------ #
    # Pre-warming and eviction
    # ------------------------------------------------------------------ #
    def _apply_due_prewarm(self, minute: int, invocations: Mapping[str, int]) -> None:
        due = self._prewarm_calendar.pop(minute, None)
        if not due:
            return
        for function_id, hold_until in due.items():
            state = self._states.get(function_id)
            if state is None:
                continue
            current_hold = self._prediction_hold_until.get(function_id, 0)
            if hold_until > current_hold:
                self._prediction_hold_until[function_id] = hold_until
            if function_id not in invocations:
                self._resident.add(function_id)

    def _evict_idle(self, minute: int, invocations: Mapping[str, int]) -> None:
        for function_id in list(self._resident):
            if function_id in invocations:
                continue
            state = self._states.get(function_id)
            if state is None:
                self._resident.discard(function_id)
                continue
            if state.category == FunctionCategory.ALWAYS_WARM:
                continue
            next_minute = minute + 1
            keep = (
                state.preload_due(next_minute)
                or next_minute < self._prediction_hold_until.get(function_id, 0)
                or next_minute < self._correlated_prewarm_until.get(function_id, 0)
                or next_minute < self._online_prewarm_until.get(function_id, 0)
            )
            if keep:
                continue
            if state.idle_minutes(minute) >= state.theta_givenup:
                self._resident.discard(function_id)
