"""Waiting-time / active-time / active-number extraction (§IV definitions).

Given a per-minute invocation-count series, the paper derives three
sequences:

* **Waiting time (WT)** -- the lengths of idle runs *between* two invocation
  runs.  Leading idle time (before the first invocation) and trailing idle
  time (after the last invocation) are not waiting times.
* **Active time (AT)** -- the lengths of the invocation runs.
* **Active number (AN)** -- the total invocation count within each run.

The paper's worked example, the sequence ``(28, 0, 12, 1, 0, 0, 0, 7)``,
yields ``WT = (1, 3)``, ``AT = (1, 2, 1)`` and ``AN = (28, 13, 7)``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class InvocationSummary:
    """WT/AT/AN sequences plus a few convenience statistics for one function.

    Attributes
    ----------
    waiting_times:
        Idle-run lengths between invocation runs.
    active_times:
        Invocation-run lengths.
    active_numbers:
        Total invocations within each run.
    total_slots:
        Length of the underlying observation window (minutes).
    invoked_slots:
        Number of minutes with at least one invocation.
    total_invocations:
        Sum of all invocation counts.
    leading_idle:
        Idle minutes before the first invocation (not a waiting time).
    trailing_idle:
        Idle minutes after the last invocation (not a waiting time).
    """

    waiting_times: tuple[int, ...]
    active_times: tuple[int, ...]
    active_numbers: tuple[int, ...]
    total_slots: int
    invoked_slots: int
    total_invocations: int
    leading_idle: int
    trailing_idle: int

    # ------------------------------------------------------------------ #
    @property
    def has_invocations(self) -> bool:
        """True when the series contains at least one invocation."""
        return self.invoked_slots > 0

    @property
    def idle_slots(self) -> int:
        """Total idle minutes, including leading and trailing idle time."""
        return self.total_slots - self.invoked_slots

    @property
    def inter_invocation_idle(self) -> int:
        """Idle minutes strictly between invocation runs (sum of waiting times)."""
        return int(sum(self.waiting_times))

    @property
    def invoked_every_slot(self) -> bool:
        """True when every sampling slot contains an invocation."""
        return self.has_invocations and self.invoked_slots == self.total_slots

    # ------------------------------------------------------------------ #
    def waiting_time_modes(self, top_n: int, min_count: int = 1) -> list[tuple[int, int]]:
        """Return the ``top_n`` most frequent waiting-time values.

        Results are ``(value, count)`` pairs sorted by decreasing count and,
        for equal counts, by increasing value so the output is deterministic.
        Values with fewer than ``min_count`` occurrences are excluded.
        """
        if top_n < 1:
            raise ValueError("top_n must be >= 1")
        counter = Counter(self.waiting_times)
        eligible = [(value, count) for value, count in counter.items() if count >= min_count]
        eligible.sort(key=lambda item: (-item[1], item[0]))
        return eligible[:top_n]

    def waiting_time_percentile(self, percentile: float) -> float:
        """Percentile of the waiting-time sequence (0 when it is empty)."""
        if not self.waiting_times:
            return 0.0
        return float(np.percentile(np.asarray(self.waiting_times, dtype=float), percentile))

    def waiting_time_cv(self) -> float:
        """Coefficient of variation of the waiting times (0 for constant/empty WTs)."""
        if len(self.waiting_times) < 2:
            return 0.0
        values = np.asarray(self.waiting_times, dtype=float)
        mean = values.mean()
        if mean == 0:
            return 0.0
        return float(values.std(ddof=0) / mean)

    def waiting_time_median(self) -> float:
        """Median waiting time (0 when the sequence is empty)."""
        if not self.waiting_times:
            return 0.0
        return float(np.median(np.asarray(self.waiting_times, dtype=float)))


def extract_sequences(series: Sequence[int] | np.ndarray) -> InvocationSummary:
    """Extract WT/AT/AN sequences from a per-minute invocation-count series.

    Parameters
    ----------
    series:
        Non-negative per-minute invocation counts.

    Returns
    -------
    InvocationSummary
        The derived sequences and summary statistics.  A series with no
        invocations yields empty sequences.
    """
    counts = np.asarray(series, dtype=np.int64)
    if counts.ndim != 1:
        raise ValueError("series must be one-dimensional")
    if (counts < 0).any():
        raise ValueError("invocation counts must be non-negative")

    total_slots = int(counts.shape[0])
    invoked_mask = counts > 0
    invoked_slots = int(invoked_mask.sum())
    total_invocations = int(counts.sum())

    if invoked_slots == 0:
        return InvocationSummary(
            waiting_times=(),
            active_times=(),
            active_numbers=(),
            total_slots=total_slots,
            invoked_slots=0,
            total_invocations=0,
            leading_idle=total_slots,
            trailing_idle=0,
        )

    invoked_indices = np.nonzero(invoked_mask)[0]
    first, last = int(invoked_indices[0]), int(invoked_indices[-1])

    waiting_times: list[int] = []
    active_times: list[int] = []
    active_numbers: list[int] = []

    run_start = first
    previous = first
    run_total = int(counts[first])
    for index in invoked_indices[1:]:
        index = int(index)
        gap = index - previous - 1
        if gap > 0:
            active_times.append(previous - run_start + 1)
            active_numbers.append(run_total)
            waiting_times.append(gap)
            run_start = index
            run_total = int(counts[index])
        else:
            run_total += int(counts[index])
        previous = index
    active_times.append(previous - run_start + 1)
    active_numbers.append(run_total)

    return InvocationSummary(
        waiting_times=tuple(waiting_times),
        active_times=tuple(active_times),
        active_numbers=tuple(active_numbers),
        total_slots=total_slots,
        invoked_slots=invoked_slots,
        total_invocations=total_invocations,
        leading_idle=first,
        trailing_idle=total_slots - 1 - last,
    )


def waiting_times_from_series(series: Sequence[int] | np.ndarray) -> tuple[int, ...]:
    """Shorthand returning only the waiting-time sequence of ``series``."""
    return extract_sequences(series).waiting_times
