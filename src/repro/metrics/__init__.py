"""Evaluation metrics used throughout the paper's evaluation (§V-A2).

* cold-start rate (CSR) distributions, percentiles and CDFs;
* wasted memory time (WMT) and per-function WMT ratios;
* normalized memory usage and the effective memory consumption ratio (EMCR);
* per-category aggregations used by Fig. 10 and Fig. 12;
* policy comparison tables.
"""

from repro.metrics.coldstart import (
    always_cold_fraction,
    cold_start_cdf,
    cold_start_rate_percentile,
    csr_improvement,
    never_cold_fraction,
    per_category_cold_start_rate,
)
from repro.metrics.memory import (
    normalized_memory_usage,
    normalized_wasted_memory_time,
    per_category_wmt_ratio,
    wmt_reduction,
)
from repro.metrics.distribution import (
    LATENCY_PERCENTILES,
    empirical_cdf,
    merge_samples,
    percentile_summary,
    percentile_table,
    tail_by_key,
)
from repro.metrics.summary import ComparisonTable, build_comparison

__all__ = [
    "cold_start_cdf",
    "cold_start_rate_percentile",
    "always_cold_fraction",
    "never_cold_fraction",
    "csr_improvement",
    "per_category_cold_start_rate",
    "normalized_memory_usage",
    "normalized_wasted_memory_time",
    "per_category_wmt_ratio",
    "wmt_reduction",
    "empirical_cdf",
    "percentile_table",
    "percentile_summary",
    "merge_samples",
    "tail_by_key",
    "LATENCY_PERCENTILES",
    "ComparisonTable",
    "build_comparison",
]
