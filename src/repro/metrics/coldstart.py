"""Cold-start metrics: CSR distributions, percentiles, always-cold fractions."""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.core.categories import FunctionCategory
from repro.metrics.distribution import empirical_cdf
from repro.simulation.results import SimulationResult


def cold_start_cdf(
    result: SimulationResult, grid: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of the function-wise cold-start rate (paper Fig. 8)."""
    return empirical_cdf(result.cold_start_rates(), grid)


def cold_start_rate_percentile(result: SimulationResult, percentile: float) -> float:
    """Percentile of the function-wise CSR distribution (75 gives the Q3-CSR)."""
    return result.cold_start_rate_percentile(percentile)


def always_cold_fraction(result: SimulationResult) -> float:
    """Fraction of invoked functions whose every invocation was a cold start."""
    return result.always_cold_fraction


def never_cold_fraction(result: SimulationResult) -> float:
    """Fraction of invoked functions that never experienced a cold start."""
    return result.never_cold_fraction


def csr_improvement(
    candidate: SimulationResult, baseline: SimulationResult, percentile: float = 75.0
) -> float:
    """Relative reduction of the percentile CSR achieved by ``candidate`` over ``baseline``.

    Matches the paper's headline statement ("reducing the 75th-percentile
    cold start rates by 49.77%"): a return value of 0.5 means the candidate's
    percentile CSR is half the baseline's.  Returns 0 when the baseline's
    percentile CSR is zero.
    """
    baseline_value = baseline.cold_start_rate_percentile(percentile)
    if baseline_value == 0:
        return 0.0
    candidate_value = candidate.cold_start_rate_percentile(percentile)
    return (baseline_value - candidate_value) / baseline_value


def per_category_cold_start_rate(
    result: SimulationResult,
    categories: Mapping[str, FunctionCategory],
) -> Dict[FunctionCategory, float]:
    """Aggregate CSR per SPES category (paper Fig. 10).

    The rate for a category is total cold starts divided by total invocations
    of the functions assigned to it; categories with no invoked functions are
    omitted.
    """
    invocations: Dict[FunctionCategory, int] = {}
    cold_starts: Dict[FunctionCategory, int] = {}
    for function_id, stats in result.per_function.items():
        if stats.invocations == 0:
            continue
        category = categories.get(function_id, FunctionCategory.UNKNOWN)
        invocations[category] = invocations.get(category, 0) + stats.invocations
        cold_starts[category] = cold_starts.get(category, 0) + stats.cold_starts
    return {
        category: cold_starts[category] / invocations[category]
        for category in invocations
        if invocations[category] > 0
    }
