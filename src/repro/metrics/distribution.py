"""Distribution helpers: empirical CDFs and percentile tables."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def empirical_cdf(
    values: Sequence[float] | np.ndarray,
    grid: Sequence[float] | np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``values``.

    Parameters
    ----------
    values:
        Sample values.
    grid:
        Points at which to evaluate the CDF.  When omitted, the sorted unique
        sample values are used, which reproduces the familiar step plot.

    Returns
    -------
    (x, y):
        ``y[i]`` is the fraction of samples less than or equal to ``x[i]``.
    """
    samples = np.asarray(values, dtype=float)
    if samples.size == 0:
        return np.zeros(0), np.zeros(0)
    sorted_samples = np.sort(samples)
    if grid is None:
        x = np.unique(sorted_samples)
    else:
        x = np.asarray(grid, dtype=float)
    y = np.searchsorted(sorted_samples, x, side="right") / samples.size
    return x, y


def percentile_table(
    values: Sequence[float] | np.ndarray,
    percentiles: Sequence[float] = (25.0, 50.0, 75.0, 90.0, 95.0, 99.0),
) -> dict[float, float]:
    """Return ``{percentile: value}`` for the requested percentiles."""
    samples = np.asarray(values, dtype=float)
    if samples.size == 0:
        return {float(p): 0.0 for p in percentiles}
    return {float(p): float(np.percentile(samples, p)) for p in percentiles}
