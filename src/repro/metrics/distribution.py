"""Distribution helpers: empirical CDFs, percentile tables and aggregation."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

#: Headline latency percentiles reported by the event engine's RQ tables.
LATENCY_PERCENTILES = (50.0, 95.0, 99.0)


def empirical_cdf(
    values: Sequence[float] | np.ndarray,
    grid: Sequence[float] | np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``values``.

    Parameters
    ----------
    values:
        Sample values.
    grid:
        Points at which to evaluate the CDF.  When omitted, the sorted unique
        sample values are used, which reproduces the familiar step plot.

    Returns
    -------
    (x, y):
        ``y[i]`` is the fraction of samples less than or equal to ``x[i]``.
    """
    samples = np.asarray(values, dtype=float)
    if samples.size == 0:
        return np.zeros(0), np.zeros(0)
    sorted_samples = np.sort(samples)
    if grid is None:
        x = np.unique(sorted_samples)
    else:
        x = np.asarray(grid, dtype=float)
    y = np.searchsorted(sorted_samples, x, side="right") / samples.size
    return x, y


def percentile_table(
    values: Sequence[float] | np.ndarray,
    percentiles: Sequence[float] = (25.0, 50.0, 75.0, 90.0, 95.0, 99.0),
) -> dict[float, float]:
    """Return ``{percentile: value}`` for the requested percentiles."""
    samples = np.asarray(values, dtype=float)
    if samples.size == 0:
        return {float(p): 0.0 for p in percentiles}
    return {float(p): float(np.percentile(samples, p)) for p in percentiles}


def percentile_summary(
    values: Sequence[float] | np.ndarray,
    percentiles: Sequence[float] = LATENCY_PERCENTILES,
) -> dict[str, float]:
    """Return ``{"p50": ..., "p95": ...}`` for the requested percentiles.

    Empty samples yield 0.0 for every percentile (an empty latency
    distribution means no event ever waited, not "undefined"), matching the
    conventions of :class:`~repro.simulation.results.SimulationResult`'s
    other aggregates.  Percentile labels drop a trailing ``.0`` so the usual
    grid renders as ``p50/p95/p99`` while fractional percentiles (``p99.9``)
    remain expressible.
    """

    def label(p: float) -> str:
        return f"p{p:g}"

    samples = np.asarray(values, dtype=float)
    if samples.size == 0:
        return {label(float(p)): 0.0 for p in percentiles}
    return {
        label(float(p)): float(np.percentile(samples, p)) for p in percentiles
    }


def merge_samples(groups: Iterable[Sequence[float] | np.ndarray]) -> np.ndarray:
    """Concatenate sample groups into one array (the percentile merge rule).

    Percentiles do not compose from per-group percentiles, but they *do*
    compose from pooled samples, and pooling is associative and commutative:
    merging per-seed latency samples in any grouping yields identical
    percentiles.  :meth:`~repro.simulation.results.LatencyStats.merge` pools
    both its global and per-function sample sets through this function.
    """
    arrays = [np.asarray(group, dtype=float).ravel() for group in groups]
    arrays = [array for array in arrays if array.size]
    if not arrays:
        return np.zeros(0, dtype=float)
    return np.concatenate(arrays)


def tail_by_key(
    samples_by_key: Mapping[str, Sequence[float] | np.ndarray],
    percentile: float = 99.0,
) -> dict[str, float]:
    """Per-key tail percentile of a ``{key: samples}`` mapping.

    Keys with no samples are omitted — a function that never waited has no
    tail, and reporting 0.0 for it would drag aggregate views of the
    per-function tail distribution toward zero.
    """
    result: dict[str, float] = {}
    for key, values in samples_by_key.items():
        samples = np.asarray(values, dtype=float)
        if samples.size:
            result[key] = float(np.percentile(samples, percentile))
    return result
