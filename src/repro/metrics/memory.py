"""Memory metrics: wasted memory time, normalized usage and EMCR helpers."""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.core.categories import FunctionCategory
from repro.simulation.results import SimulationResult


def normalized_memory_usage(
    results: Mapping[str, SimulationResult], reference: str
) -> Dict[str, float]:
    """Average memory usage of each policy, normalized by the reference policy.

    The paper normalizes memory usage by SPES's average (Fig. 9a).
    """
    if reference not in results:
        raise KeyError(f"reference policy {reference!r} not in results")
    reference_usage = results[reference].average_memory_usage
    if reference_usage == 0:
        raise ValueError("reference policy has zero average memory usage")
    return {
        name: result.average_memory_usage / reference_usage
        for name, result in results.items()
    }


def normalized_wasted_memory_time(
    results: Mapping[str, SimulationResult], reference: str
) -> Dict[str, float]:
    """Total wasted memory time of each policy, normalized by the reference policy."""
    if reference not in results:
        raise KeyError(f"reference policy {reference!r} not in results")
    reference_wmt = results[reference].total_wasted_memory_time
    if reference_wmt == 0:
        raise ValueError("reference policy has zero wasted memory time")
    return {
        name: result.total_wasted_memory_time / reference_wmt
        for name, result in results.items()
    }


def wmt_reduction(candidate: SimulationResult, baseline: SimulationResult) -> float:
    """Relative WMT reduction of ``candidate`` over ``baseline`` (paper §V-C)."""
    if baseline.total_wasted_memory_time == 0:
        return 0.0
    return (
        baseline.total_wasted_memory_time - candidate.total_wasted_memory_time
    ) / baseline.total_wasted_memory_time


def per_category_wmt_ratio(
    result: SimulationResult,
    categories: Mapping[str, FunctionCategory],
) -> Dict[FunctionCategory, float]:
    """Mean per-function WMT ratio (WMT / invocations) per category (paper Fig. 12)."""
    ratios: Dict[FunctionCategory, list[float]] = {}
    for function_id, stats in result.per_function.items():
        if stats.invocations == 0 and stats.wasted_memory_time == 0:
            continue
        category = categories.get(function_id, FunctionCategory.UNKNOWN)
        ratios.setdefault(category, []).append(stats.wmt_ratio)
    return {
        category: float(np.mean(values)) for category, values in ratios.items() if values
    }
