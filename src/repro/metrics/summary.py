"""Policy comparison tables rendered as plain text.

The benchmark harness regenerates each of the paper's figures as a table of
numbers; :class:`ComparisonTable` is the shared renderer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.simulation.results import SimulationResult


@dataclass
class ComparisonTable:
    """A simple column-aligned text table.

    Attributes
    ----------
    title:
        Table caption printed above the header.
    columns:
        Column names, in display order.
    rows:
        One mapping per row; missing cells render as empty strings.
    """

    title: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_row(self, **cells: object) -> None:
        """Append a row given as keyword arguments keyed by column name."""
        self.rows.append(dict(cells))

    def render(self, float_format: str = "{:.4f}") -> str:
        """Render the table as aligned plain text."""
        def format_cell(value: object) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            if value is None:
                return ""
            return str(value)

        header = [str(column) for column in self.columns]
        body = [[format_cell(row.get(column)) for column in self.columns] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title]
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for line in body:
            lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(header))))
        return "\n".join(lines)

    def to_markdown(self, float_format: str = "{:.4f}") -> str:
        """Render the table as GitHub-flavoured markdown.

        The title becomes a bold caption line; numeric cells are
        right-aligned.  Pipes in cell values are escaped so free-text cells
        cannot break the table.
        """
        def format_cell(value: object) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            if value is None:
                return ""
            return str(value).replace("|", "\\|")

        lines = [f"**{self.title}**", ""]
        header = [str(column) for column in self.columns]
        numeric = [
            all(
                isinstance(row.get(column), (int, float)) or row.get(column) is None
                for row in self.rows
            )
            and any(isinstance(row.get(column), (int, float)) for row in self.rows)
            for column in self.columns
        ]
        lines.append("| " + " | ".join(header) + " |")
        lines.append(
            "|" + "|".join("---:" if numeric[i] else "---" for i in range(len(header))) + "|"
        )
        for row in self.rows:
            lines.append(
                "| "
                + " | ".join(format_cell(row.get(column)) for column in self.columns)
                + " |"
            )
        return "\n".join(lines)

    def drop_columns(self, *names: str) -> "ComparisonTable":
        """A copy of the table without the named columns (unknown names are
        ignored) — used to strip wall-clock measurement columns before a
        deterministic rendering is diffed against a committed snapshot."""
        dropped = set(names)
        return ComparisonTable(
            title=self.title,
            columns=tuple(column for column in self.columns if column not in dropped),
            rows=[
                {key: value for key, value in row.items() if key not in dropped}
                for row in self.rows
            ],
        )

    def __str__(self) -> str:
        return self.render()


def build_comparison(
    results: Mapping[str, SimulationResult],
    title: str = "Policy comparison",
) -> ComparisonTable:
    """Build the standard policy-comparison table from simulation results."""
    columns = (
        "policy",
        "q3_csr",
        "p90_csr",
        "overall_csr",
        "never_cold",
        "always_cold",
        "wmt",
        "avg_memory",
        "emcr",
        "overhead_s_per_min",
    )
    table = ComparisonTable(title=title, columns=columns)
    for name, result in results.items():
        table.add_row(
            policy=name,
            q3_csr=result.q3_cold_start_rate,
            p90_csr=result.cold_start_rate_percentile(90.0),
            overall_csr=result.overall_cold_start_rate,
            never_cold=result.never_cold_fraction,
            always_cold=result.always_cold_fraction,
            wmt=float(result.total_wasted_memory_time),
            avg_memory=result.average_memory_usage,
            emcr=result.emcr,
            overhead_s_per_min=result.overhead_per_minute,
        )
    return table
