"""Command-line interface: ``spes-repro <command>``.

Commands
--------
``compare``
    Run SPES and every baseline on a synthetic Azure-like workload and print
    the comparison table (RQ1/RQ2 headline numbers).
``analyze``
    Print the §III empirical analysis of a synthetic workload (invocation
    distribution, trigger mix, pattern tests, co-occurrence, locality).
``tradeoff``
    Run the RQ3 parameter sweeps.
``ablation``
    Run the RQ4 ablations.
``sweep``
    Run the full policy suite over one or more workload seeds, fanning the
    (policy × seed) cells out across worker processes with optional on-disk
    result caching (``--workers``, ``--seeds``, ``--policies``,
    ``--cache-dir``, ``--no-cache``).  With ``--scenario`` the workloads come
    from the scenario registry (``capacity-squeeze`` and ``hot-shard`` run
    the whole sweep in capacity-constrained cluster mode and report
    evictions, migrations and capacity-induced cold starts; ``--placement``
    swaps the cluster's function-to-node strategy).  With ``--engine event``
    every cell runs
    on the sub-minute event engine and the tables report p50/p95/p99
    cold-start latency alongside the paper's count-based metrics; ``--engine
    event-feedback`` additionally streams the rolling latency window into
    every policy's feedback hook.  With ``--streaming`` policies receive no
    training window at all and must adapt online.  With ``--cores`` (event
    engines only) every node runs a finite CPU pool and the latency tables
    add slowdown and SLO columns; ``--scheduler`` picks the intra-node
    discipline (fifo, rr, srtf, las) and ``--slo-ms`` sets the per-request
    deadline.  ``--manifest PATH`` records a run manifest after the sweep
    (canonical run spec, trace fingerprints, engine version, per-cell
    result fingerprints); ``--from-manifest PATH`` replays a recorded
    manifest and verifies the results are fingerprint-identical.
``config``
    Resolve sweep-style flags into the one canonical run spec — printed as
    JSON with its content digest and the engine version — without running
    any simulation.  ``--cache-keys`` additionally builds the workloads
    and prints every statically derivable cell's on-disk cache key.
``results``
    Run the full RQ1–RQ6 campaign over one workload source and write the
    consolidated markdown results book.  By default the hermetic azure2019
    fixture pipeline feeds every RQ and the output lands in
    ``docs/RESULTS.md`` (the committed, CI-diffed copy); ``--azure-dir DIR``
    runs the same campaign on the real dataset.
``latency-rq``
    The RQ5 report: per continuous-drift scenario, the cold-start latency
    tail (p50/p95/p99/max) of the feedback consumer vs. its open-loop twin,
    from streaming ``event-feedback`` sweeps.
``slowdown-rq``
    The RQ6 report: per CPU-contention scenario, the per-invocation slowdown
    (p50/p99) and SLO-violation rate of each policy × scheduler × cores
    combination, from ``event``-engine sweeps with a finite per-node CPU
    pool.
``cache``
    On-disk result-cache maintenance: ``--prune-days N`` deletes entries
    (and stray temporary files) older than N days.
``scenarios``
    List the scenario registry: names, descriptions, parameters.
``azure``
    Real Azure Functions 2019 dataset management: ``azure fetch`` downloads
    and unpacks the public CSVs, ``azure info`` reports which days (and
    cached ingestions) a local copy holds.  ``sweep --azure-dir DIR`` points
    the ``azure2019`` scenario at such a directory.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import (
    cooccurrence_study,
    invocation_count_summary,
    temporal_locality_study,
    http_poisson_test,
    timer_periodicity_test,
    trigger_proportions,
)
from repro.experiments import (
    DEFAULT_SUITE_POLICIES,
    ExperimentConfig,
    ExperimentRunner,
    ExperimentSuite,
    rq1_coldstart,
    rq2_memory,
)
from repro.experiments.rq3_tradeoff import givenup_sweep, linear_fit, prewarm_sweep, sweep_table
from repro.experiments.rq4_ablation import (
    ablation_table,
    adaptivity_ablation,
    correlation_ablation,
)
from repro.metrics.summary import build_comparison


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--functions", type=int, default=400, help="number of synthetic functions")
    parser.add_argument("--seed", type=int, default=2024, help="workload seed")
    parser.add_argument(
        "--days", type=float, default=14.0, help="total workload duration in days"
    )
    parser.add_argument(
        "--training-days", type=float, default=12.0, help="days used for offline modelling"
    )


def _runner_from_args(args: argparse.Namespace) -> ExperimentRunner:
    config = ExperimentConfig(
        n_functions=args.functions,
        seed=args.seed,
        duration_days=args.days,
        training_days=args.training_days,
    )
    return ExperimentRunner(config)


def _command_compare(args: argparse.Namespace) -> int:
    runner = _runner_from_args(args)
    results = runner.run_all()
    print(build_comparison(results, title="SPES vs. baselines").render())
    print()
    print(rq1_coldstart.headline_improvements(results).render())
    print()
    print(rq1_coldstart.memory_and_always_cold(results).render())
    print()
    print(rq2_memory.wmt_and_emcr_table(results).render())
    print()
    print(rq2_memory.overhead_comparison(results).render(float_format="{:.6f}"))
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    runner = _runner_from_args(args)
    trace = runner.trace
    print("Invocation-count summary (Fig. 3):")
    for key, value in invocation_count_summary(trace).items():
        print(f"  {key}: {value:.2f}")
    print("\nTrigger proportions (Fig. 5):")
    for trigger, fraction in trigger_proportions(trace).items():
        print(f"  {trigger}: {100.0 * fraction:.2f}%")
    timer_report = timer_periodicity_test(trace)
    http_report = http_poisson_test(trace)
    print("\nPattern tests (Sec. III-B1):")
    print(
        f"  timer functions (quasi-)periodic: {100.0 * timer_report.matching_fraction:.2f}% "
        f"(insufficient data: {100.0 * timer_report.insufficient_fraction:.2f}%)"
    )
    print(
        f"  HTTP functions Poisson: {100.0 * http_report.matching_fraction:.2f}% "
        f"(insufficient data: {100.0 * http_report.insufficient_fraction:.2f}%)"
    )
    cor = cooccurrence_study(trace)
    print("\nCo-occurrence study (Sec. III-B2):")
    print(f"  candidate COR: {cor.candidate_cor:.4f}")
    print(f"  negative-sample COR: {cor.negative_cor:.4f}")
    print(f"  same-trigger COR: {cor.same_trigger_cor:.4f}")
    print(f"  different-trigger COR: {cor.different_trigger_cor:.4f}")
    locality = temporal_locality_study(trace)
    print("\nTemporal locality (Fig. 6):")
    print(f"  infrequent functions analysed: {locality.functions_considered}")
    print(f"  bursty fraction: {100.0 * locality.bursty_fraction:.2f}%")
    return 0


def _command_tradeoff(args: argparse.Namespace) -> int:
    runner = _runner_from_args(args)
    prewarm_points = prewarm_sweep(runner)
    print(sweep_table(prewarm_points, "theta_prewarm", "Fig. 13a - theta_prewarm sweep").render())
    slope, intercept = linear_fit(prewarm_points)
    print(f"linear fit: q3_csr = {slope:.4f} * memory + {intercept:.4f}")
    print()
    givenup_points = givenup_sweep(runner)
    print(sweep_table(givenup_points, "givenup_scale", "Fig. 13b - theta_givenup sweep").render())
    slope, intercept = linear_fit(givenup_points)
    print(f"linear fit: q3_csr = {slope:.4f} * memory + {intercept:.4f}")
    return 0


def _command_ablation(args: argparse.Namespace) -> int:
    runner = _runner_from_args(args)
    print(ablation_table(correlation_ablation(runner), "Fig. 14 - correlation ablation").render())
    print()
    print(ablation_table(adaptivity_ablation(runner), "Fig. 15 - adaptivity ablation").render())
    return 0


def _parse_scenario_params(pairs: Sequence[str]) -> dict:
    """Parse ``name=value`` scenario overrides (numbers become numeric)."""
    params: dict = {}
    for pair in pairs:
        name, separator, raw = pair.partition("=")
        if not separator or not name:
            raise ValueError(f"expected name=value, got {pair!r}")
        try:
            value: object = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        params[name] = value
    return params


def _command_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import SCENARIO_REGISTRY, scenario_names

    print("Registered scenarios (use with `spes-repro sweep --scenario NAME`):\n")
    for name in scenario_names():
        scenario = SCENARIO_REGISTRY[name]
        print(f"  {name}")
        print(f"      {scenario.description}")
        if scenario.defaults:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(scenario.defaults.items())
            )
            print(f"      parameters: {rendered}")
    print(
        "\nCommon knobs --functions/--seed(s)/--days/--training-days apply to every\n"
        "scenario; scenario parameters are overridden with --scenario-param name=value."
    )
    return 0


def _suite_from_args(
    args: argparse.Namespace, workers: int = 0, cache_dir: str | None = None
) -> ExperimentSuite:
    """Build the :class:`ExperimentSuite` a sweep-style namespace describes.

    Shared by ``sweep`` (which executes it) and ``config`` (which only
    resolves and prints its run spec), so both commands agree on how flags
    map to a suite.  Raises ``KeyError``/``ValueError`` on invalid flags.
    """
    config = ExperimentConfig(
        n_functions=args.functions,
        seed=args.seeds[0],
        duration_days=args.days,
        training_days=args.training_days,
    )
    scenario = args.scenario
    scenario_params = _parse_scenario_params(args.scenario_param)
    if args.azure_dir is not None:
        if scenario is None:
            scenario = "azure2019"
        scenario_params.setdefault("azure_dir", args.azure_dir)
    return ExperimentSuite(
        config=config,
        seeds=args.seeds,
        policies=args.policies,
        workers=workers,
        cache_dir=cache_dir,
        scenario=scenario,
        scenario_params=scenario_params,
        placement=args.placement,
        engine=args.engine,
        streaming=args.streaming,
        shards=args.shards,
        shard_placement=args.shard_placement,
        cores=args.cores,
        scheduler=args.scheduler,
        slo_ms=args.slo_ms,
        memory_mode=args.memory_mode,
    )


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.manifest import (
        ManifestError,
        build_manifest,
        load_manifest,
        suite_from_manifest,
        verify_results,
        verify_trace_fingerprints,
        write_manifest,
    )

    cache_dir = None if args.no_cache else args.cache_dir
    workers = args.workers
    if getattr(args, "profile", False) and workers > 1:
        # cProfile only sees the calling process; worker time would vanish
        # from the report, so profiled sweeps run everything in-process.
        print("profile: forcing serial execution (--workers ignored)", file=sys.stderr)
        workers = 0
    manifest = None
    try:
        if args.from_manifest is not None:
            # Replay mode: the manifest, not the workload flags, defines the
            # sweep; only execution-host knobs (--workers/--cache-dir) apply.
            manifest = load_manifest(args.from_manifest)
            suite = suite_from_manifest(manifest, workers=workers, cache_dir=cache_dir)
            verify_trace_fingerprints(manifest, suite)
        else:
            suite = _suite_from_args(args, workers=workers, cache_dir=cache_dir)
    except (ManifestError, KeyError, ValueError) as error:
        print(f"error: {error.args[0] if error.args else error}", file=sys.stderr)
        return 2
    scenario = suite.scenario
    profiler = None
    if getattr(args, "profile", False):
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        outcome = suite.run()
    except (KeyError, ValueError) as error:
        # Unknown policy names and invalid runner settings surface once the
        # suite builds its parallel runner and resolves its specs.
        print(f"error: {error.args[0] if error.args else error}", file=sys.stderr)
        return 2
    finally:
        if profiler is not None:
            profiler.disable()
    for seed in suite.seeds:
        print(outcome.seed_table(seed).render())
        print()
        cluster_table = outcome.cluster_table(seed)
        if cluster_table is not None:
            print(cluster_table.render())
            print()
        latency_table = outcome.latency_table(seed)
        if latency_table is not None:
            print(latency_table.render(float_format="{:.1f}"))
            print()
        if args.rq_tables:
            for table in rq1_coldstart.report(outcome.results[seed]):
                print(table.render())
                print()
            for table in rq2_memory.report(outcome.results[seed]):
                print(table.render(float_format="{:.6f}"))
                print()
    if len(suite.seeds) > 1:
        print(outcome.aggregate_table().render())
        print()
    mode = f"{outcome.workers} workers" if outcome.workers > 1 else "serial"
    scenario_note = f", scenario {scenario}" if scenario else ""
    placement = f", placement {suite.placement}" if suite.placement else ""
    engine = f", engine {suite.engine}" if suite.engine != "vectorized" else ""
    streaming = ", streaming" if suite.streaming else ""
    shards = f", shards {suite.shards}" if suite.shards >= 2 else ""
    cpu = ""
    if suite.cores is not None:
        cpu = f", cores {suite.cores} ({suite.scheduler or 'fifo'})"
    if suite.slo_ms is not None:
        cpu += f", slo {suite.slo_ms:g}ms"
    if suite.memory_mode != "unit":
        cpu += f", memory {suite.memory_mode}"
    print(
        f"sweep: {len(suite.seeds)} seed(s) x {len(suite.policies)} policies "
        f"in {outcome.wall_seconds:.1f}s ({mode}{scenario_note}{placement}{engine}"
        f"{streaming}{shards}{cpu})"
    )
    if cache_dir:
        print(f"cache: {outcome.cache_hits} hit(s), {outcome.cache_misses} miss(es)")
    if manifest is not None:
        try:
            verified = verify_results(manifest, outcome)
        except ManifestError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(
            f"manifest: replay of {args.from_manifest} verified — "
            f"{verified} result fingerprint(s) identical"
        )
    if args.manifest is not None:
        document = build_manifest(suite, outcome)
        path = write_manifest(args.manifest, document)
        print(f"manifest: wrote {path} ({len(document['results'])} cell(s))")
    if profiler is not None:
        import io
        import pstats

        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats("cumulative").print_stats(25)
        print("\nprofile: top 25 functions by cumulative time")
        print(stream.getvalue())
    return 0


def _command_config(args: argparse.Namespace) -> int:
    """Resolve sweep flags into the canonical run spec without running.

    Prints a JSON document with the validated :class:`RunSpec` in canonical
    form, its content digest, and the engine version — the identity a sweep
    with the same flags would run (and cache) under.  With ``--cache-keys``
    the per-seed workloads are built (no simulation) and every statically
    derivable cell's on-disk cache key is included.
    """
    import json

    from repro.simulation.spec import ENGINE_VERSION

    try:
        suite = _suite_from_args(args)
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0] if error.args else error}", file=sys.stderr)
        return 2
    document = {
        "engine_version": ENGINE_VERSION,
        "spec": suite.spec.canonical(),
        "spec_digest": suite.spec.spec_digest(),
        "seeds": list(suite.seeds),
        "policies": list(suite.policies),
        "scenario": suite.scenario,
        "scenario_params": {
            name: value if isinstance(value, (bool, int, float, str)) else str(value)
            for name, value in sorted(suite.scenario_params.items())
        },
    }
    if args.cache_keys:
        try:
            keys, skipped = suite.static_cache_keys()
        except (KeyError, ValueError) as error:
            print(f"error: {error.args[0] if error.args else error}", file=sys.stderr)
            return 2
        document["cache_keys"] = keys
        for name in skipped:
            print(
                f"note: {name} omitted from cache_keys (its capacity is "
                "derived from the same-seed spes result, so its key is not "
                "static)",
                file=sys.stderr,
            )
    print(json.dumps(document, indent=2))
    return 0


def _command_results(args: argparse.Namespace) -> int:
    from repro.experiments.results import ResultsConfig, generate_results

    try:
        config = ResultsConfig(
            azure_dir=args.azure_dir,
            n_functions=args.functions,
            population=args.population,
            days=args.days,
            training_days=args.training_days,
            day_start=args.day_start,
            seeds=tuple(args.seeds),
            workers=args.workers,
            cache_dir=args.cache_dir,
            shards=args.shards,
            memory_mode=args.memory_mode,
        )
        document = generate_results(config, echo=not args.quiet)
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0] if error.args else error}", file=sys.stderr)
        return 2
    if args.output == "-":
        print(document, end="")
    else:
        from pathlib import Path

        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(document)
        print(f"results: wrote {path} ({len(document.splitlines())} lines)")
    return 0


def _command_latency_rq(args: argparse.Namespace) -> int:
    from repro.experiments.rq5_latency import latency_rq, latency_rq_table

    config = ExperimentConfig(
        n_functions=args.functions,
        seed=args.seeds[0],
        duration_days=args.days,
        training_days=args.training_days,
    )
    try:
        report = latency_rq(
            scenarios=args.scenarios,
            policies=args.policies,
            seeds=args.seeds,
            config=config,
            streaming=not args.no_streaming,
            workers=args.workers,
            cache_dir=args.cache_dir,
        )
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0] if error.args else error}", file=sys.stderr)
        return 2
    print(latency_rq_table(report).render(float_format="{:.1f}"))
    mode = "open-loop training" if args.no_streaming else "streaming"
    print(
        f"\nlatency-rq: {len(args.scenarios)} scenario(s) x "
        f"{len(args.policies)} policies x {len(args.seeds)} seed(s), "
        f"engine event-feedback, {mode}"
    )
    return 0


def _command_slowdown_rq(args: argparse.Namespace) -> int:
    from repro.experiments.rq6_slowdown import slowdown_rq, slowdown_rq_table

    config = ExperimentConfig(
        n_functions=args.functions,
        seed=args.seeds[0],
        duration_days=args.days,
        training_days=args.training_days,
    )
    try:
        report = slowdown_rq(
            scenarios=args.scenarios,
            policies=args.policies,
            schedulers=args.schedulers,
            cores=args.cores,
            seeds=args.seeds,
            config=config,
            slo_ms=args.slo_ms,
            workers=args.workers,
            cache_dir=args.cache_dir,
        )
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0] if error.args else error}", file=sys.stderr)
        return 2
    print(slowdown_rq_table(report).render(float_format="{:.2f}"))
    combos = len(args.schedulers) * len(args.cores)
    print(
        f"\nslowdown-rq: {len(args.scenarios)} scenario(s) x "
        f"{len(args.policies)} policies x {combos} scheduler/core combo(s) x "
        f"{len(args.seeds)} seed(s), engine event"
    )
    return 0


def _command_azure_fetch(args: argparse.Namespace) -> int:
    import tarfile
    from pathlib import Path

    from repro.traces.azure2019 import (
        Azure2019Dataset,
        AzureIngestError,
        fetch_azure2019,
    )

    options = {"url": args.url} if args.url else {}
    try:
        dest = fetch_azure2019(Path(args.dest), force=args.force, **options)
    except (AzureIngestError, OSError, tarfile.TarError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    days = Azure2019Dataset(dest, cache_dir=None).available_days()
    print(f"{dest}: {len(days)} invocation day file(s) available")
    return 0


def _command_azure_info(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.traces.azure2019 import Azure2019Dataset

    root = Path(args.azure_dir)
    if not root.is_dir():
        print(f"error: no dataset directory at {root}", file=sys.stderr)
        return 2
    dataset = Azure2019Dataset(root)
    days = dataset.available_days()
    if not days:
        print(
            f"{root}: no invocation day files found "
            "(expected invocations_per_function_md.anon.dNN.csv); "
            "run `spes-repro azure fetch --dest DIR` first"
        )
        return 2
    print(f"dataset root: {root}")
    print(f"invocation days: {len(days)} ({', '.join(f'd{d:02d}' for d in days)})")
    for day in days:
        inv = dataset.invocation_path(day)
        dur = dataset.durations_path(day)
        mem = dataset.memory_path(day)
        parts = [f"invocations {inv.stat().st_size / 1e6:.1f} MB"]
        parts.append(
            f"durations {dur.stat().st_size / 1e6:.1f} MB" if dur.exists() else "durations missing"
        )
        parts.append(
            f"memory {mem.stat().st_size / 1e6:.1f} MB" if mem.exists() else "memory missing"
        )
        print(f"  d{day:02d}: {', '.join(parts)}")
    cache_dir = dataset.cache_dir
    if cache_dir is not None and cache_dir.is_dir():
        entries = sorted(cache_dir.glob("azure2019-*.npz"))
        total = sum(entry.stat().st_size for entry in entries)
        print(
            f"ingestion cache: {len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
            f"{total / 1e6:.1f} MB in {cache_dir}"
        )
    else:
        print("ingestion cache: empty (populated on first load)")
    return 0


def _command_cache(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments import ResultCache

    directory = Path(args.cache_dir)
    if not directory.is_dir():
        print(f"error: no cache directory at {directory}", file=sys.stderr)
        return 2
    cache = ResultCache(directory)
    removed = cache.prune(max_age_days=args.prune_days)
    remaining = len(list(directory.glob("*.pkl")))
    print(
        f"pruned {removed} entr{'y' if removed == 1 else 'ies'} older than "
        f"{args.prune_days:g} day(s) from {directory} ({remaining} kept)"
    )
    return 0


def _add_sweep_workload_arguments(parser: argparse.ArgumentParser) -> None:
    """Register the workload/run-spec flags shared by ``sweep`` and ``config``.

    Everything registered here feeds :func:`_suite_from_args`; flags that
    only matter for execution (workers, caching, manifests, profiling) stay
    with the ``sweep`` subparser.
    """
    parser.add_argument(
        "--functions", type=int, default=400, help="number of synthetic functions"
    )
    parser.add_argument(
        "--days", type=float, default=14.0, help="total workload duration in days"
    )
    parser.add_argument(
        "--training-days", type=float, default=12.0, help="days used for offline modelling"
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[2024],
        help="workload seeds; each seed is an independent workload",
    )
    parser.add_argument(
        "--policies",
        nargs="+",
        default=list(DEFAULT_SUITE_POLICIES),
        help="policy names to simulate (see repro.experiments.POLICY_REGISTRY)",
    )
    parser.add_argument(
        "--engine",
        choices=("vectorized", "reference", "event", "event-feedback"),
        default="vectorized",
        help=(
            "simulation engine; 'event' expands minutes into timestamped "
            "invocation events and reports cold-start latency percentiles; "
            "'event-feedback' additionally streams the rolling latency "
            "window into every policy's on_feedback hook"
        ),
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help=(
            "streaming evaluation: policies receive zero training window "
            "(no offline phase input, no warm-up replay) and adapt online"
        ),
    )
    parser.add_argument(
        "--scenario",
        default=None,
        help="workload scenario name (see `spes-repro scenarios`)",
    )
    parser.add_argument(
        "--scenario-param",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="override a scenario parameter (repeatable)",
    )
    parser.add_argument(
        "--azure-dir",
        default=None,
        help=(
            "directory holding the real Azure 2019 CSVs; implies "
            "--scenario azure2019 unless another scenario is named and "
            "fills in its azure_dir parameter"
        ),
    )
    parser.add_argument(
        "--placement",
        default=None,
        help=(
            "placement strategy for the scenario's cluster (hash, "
            "least-loaded, correlation-aware); requires a cluster scenario "
            "such as capacity-squeeze or hot-shard"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help=(
            "split shardable cells into N function partitions simulated "
            "independently and merged (fingerprint-identical; with "
            "--workers > 1 every partition is its own pool task); cells "
            "that cannot shard fall back to whole-cell runs with a warning"
        ),
    )
    parser.add_argument(
        "--shard-placement",
        default="hash",
        help=(
            "placement strategy deriving the function-to-shard partition "
            "(hash, least-loaded, correlation-aware)"
        ),
    )
    parser.add_argument(
        "--cores",
        type=int,
        default=None,
        help=(
            "finite CPU cores per node for the intra-node scheduling stage "
            "(event engines only); latency tables gain slowdown and SLO "
            "columns.  Unset, invocations never queue for CPU"
        ),
    )
    parser.add_argument(
        "--scheduler",
        choices=("fifo", "rr", "srtf", "las"),
        default=None,
        help="intra-node CPU scheduling discipline (requires --cores; default fifo)",
    )
    parser.add_argument(
        "--slo-ms",
        type=float,
        default=None,
        help=(
            "per-request latency SLO in milliseconds; event engines count "
            "invocations whose sojourn time exceeds it"
        ),
    )
    parser.add_argument(
        "--memory-mode",
        choices=("unit", "mb"),
        default="unit",
        help=(
            "memory accounting: 'unit' is the paper's abstract one-unit-per-"
            "instance model; 'mb' weighs instances by the measured footprints "
            "joined from the dataset and adds MB columns to the tables "
            "(requires a mask-based engine)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="spes-repro",
        description="Reproduction of SPES (ICDE 2024): serverless function provisioning.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, handler, help_text in (
        ("compare", _command_compare, "compare SPES against all baselines"),
        ("analyze", _command_analyze, "run the Sec. III empirical trace analysis"),
        ("tradeoff", _command_tradeoff, "run the RQ3 parameter sweeps"),
        ("ablation", _command_ablation, "run the RQ4 ablations"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_common_arguments(sub)
        sub.set_defaults(handler=handler)

    sweep = subparsers.add_parser(
        "sweep",
        help="run the policy suite over several seeds, in parallel",
    )
    _add_sweep_workload_arguments(sweep)
    sweep.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the (policy x seed) fan-out (0 = serial)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk result cache (re-runs skip cached cells)",
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache even when --cache-dir is given",
    )
    sweep.add_argument(
        "--rq-tables",
        action="store_true",
        help="additionally print the per-seed RQ1/RQ2 tables",
    )
    sweep.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help=(
            "after the sweep, write a run manifest (canonical run spec, "
            "trace fingerprints, engine version, per-cell result "
            "fingerprints) to PATH for verified replay"
        ),
    )
    sweep.add_argument(
        "--from-manifest",
        default=None,
        metavar="PATH",
        dest="from_manifest",
        help=(
            "replay the sweep a manifest records instead of reading the "
            "workload flags; refuses to run on engine-version or trace-"
            "fingerprint mismatch and verifies the results are fingerprint-"
            "identical"
        ),
    )
    sweep.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run the sweep under cProfile (serial execution is forced) and "
            "print the top 25 functions by cumulative time"
        ),
    )
    sweep.set_defaults(handler=_command_sweep)

    config = subparsers.add_parser(
        "config",
        help="resolve sweep flags into the canonical run spec (no simulation)",
    )
    _add_sweep_workload_arguments(config)
    config.add_argument(
        "--cache-keys",
        action="store_true",
        help=(
            "also build the per-seed workloads (no simulation) and print "
            "every statically derivable cell's on-disk cache key"
        ),
    )
    config.set_defaults(handler=_command_config)

    results = subparsers.add_parser(
        "results",
        help="run the full RQ1-RQ6 campaign and render the markdown results book",
    )
    results.add_argument(
        "--azure-dir",
        default=None,
        help=(
            "directory holding the real Azure 2019 CSVs; omitted, the book "
            "is generated from the hermetic azure2019 fixture pipeline (the "
            "CI-sized default committed as docs/RESULTS.md)"
        ),
    )
    results.add_argument(
        "--functions",
        type=int,
        default=24,
        help="functions selected into the workload",
    )
    results.add_argument(
        "--population",
        type=int,
        default=48,
        help="fixture-only: functions generated before selection",
    )
    results.add_argument(
        "--days", type=float, default=3.0, help="total workload duration in days"
    )
    results.add_argument(
        "--training-days", type=float, default=2.0, help="days used for offline modelling"
    )
    results.add_argument(
        "--day-start",
        type=int,
        default=1,
        help="real-dataset-only: first dataset day of the span",
    )
    results.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[2024, 7],
        help="workload seeds; multiple seeds add the aggregate table",
    )
    results.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for each suite's fan-out (0 = serial)",
    )
    results.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk result cache shared by all suites",
    )
    results.add_argument(
        "--shards",
        type=int,
        default=0,
        help="function-shard the RQ1/RQ2 suite's cells (see `sweep --shards`)",
    )
    results.add_argument(
        "--memory-mode",
        choices=("unit", "mb"),
        default="mb",
        help=(
            "memory accounting for the RQ1-RQ4 runs; 'mb' (default) adds the "
            "measured-footprint table to RQ2"
        ),
    )
    results.add_argument(
        "--output",
        default="docs/RESULTS.md",
        help="output path for the markdown document ('-' prints to stdout)",
    )
    results.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-section progress notes on stderr",
    )
    results.set_defaults(handler=_command_results)

    latency_rq = subparsers.add_parser(
        "latency-rq",
        help="RQ5: cold-start latency tail, feedback vs. open-loop policies",
    )
    latency_rq.add_argument(
        "--functions", type=int, default=400, help="number of synthetic functions"
    )
    latency_rq.add_argument(
        "--days", type=float, default=14.0, help="total workload duration in days"
    )
    latency_rq.add_argument(
        "--training-days",
        type=float,
        default=12.0,
        help="days reserved for training (unused while streaming; they size "
        "the simulation window)",
    )
    latency_rq.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[2024],
        help="workload seeds; latency distributions are pooled across seeds",
    )
    latency_rq.add_argument(
        "--scenarios",
        nargs="+",
        default=["rotating-periods", "load-ramp", "seasonal-mix"],
        help="scenario names to evaluate (default: the continuous-drift catalog)",
    )
    latency_rq.add_argument(
        "--policies",
        nargs="+",
        default=["fixed-10min-indexed", "latency-keepalive"],
        help="policies to compare (default: open-loop fixed vs. latency-aware)",
    )
    latency_rq.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for each scenario's sweep (0 = serial)",
    )
    latency_rq.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk result cache",
    )
    latency_rq.add_argument(
        "--no-streaming",
        action="store_true",
        help="give every policy its training window back (open-loop evaluation)",
    )
    latency_rq.set_defaults(handler=_command_latency_rq)

    slowdown_rq = subparsers.add_parser(
        "slowdown-rq",
        help="RQ6: per-invocation slowdown and SLO violations under finite cores",
    )
    slowdown_rq.add_argument(
        "--functions", type=int, default=400, help="number of synthetic functions"
    )
    slowdown_rq.add_argument(
        "--days", type=float, default=14.0, help="total workload duration in days"
    )
    slowdown_rq.add_argument(
        "--training-days",
        type=float,
        default=12.0,
        help="days used for offline modelling",
    )
    slowdown_rq.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[2024],
        help="workload seeds; latency distributions are pooled across seeds",
    )
    slowdown_rq.add_argument(
        "--scenarios",
        nargs="+",
        default=["cpu-starved", "long-duration-mix"],
        help="scenario names to evaluate (default: the CPU-contention catalog)",
    )
    slowdown_rq.add_argument(
        "--policies",
        nargs="+",
        default=["fixed-10min-indexed", "spes-indexed"],
        help="policies to compare (default: fixed keep-alive vs. the paper's)",
    )
    slowdown_rq.add_argument(
        "--schedulers",
        nargs="+",
        choices=("fifo", "rr", "srtf", "las"),
        default=["fifo", "srtf"],
        help="intra-node CPU disciplines to sweep (default: fifo vs. srtf)",
    )
    slowdown_rq.add_argument(
        "--cores",
        type=int,
        nargs="+",
        default=[2],
        help="per-node core counts to sweep",
    )
    slowdown_rq.add_argument(
        "--slo-ms",
        type=float,
        default=None,
        help="override every scenario's latency SLO in milliseconds",
    )
    slowdown_rq.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for each scenario's sweep (0 = serial)",
    )
    slowdown_rq.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk result cache",
    )
    slowdown_rq.set_defaults(handler=_command_slowdown_rq)

    cache = subparsers.add_parser(
        "cache",
        help="maintain the on-disk result cache",
    )
    cache.add_argument(
        "--cache-dir",
        required=True,
        help="the result-cache directory to maintain",
    )
    cache.add_argument(
        "--prune-days",
        type=float,
        required=True,
        help="delete cache entries older than this many days (0 = everything)",
    )
    cache.set_defaults(handler=_command_cache)

    scenarios = subparsers.add_parser(
        "scenarios",
        help="list the registered workload scenarios",
    )
    scenarios.set_defaults(handler=_command_scenarios)

    azure = subparsers.add_parser(
        "azure",
        help="manage a local copy of the real Azure Functions 2019 dataset",
    )
    azure_sub = azure.add_subparsers(dest="azure_command", required=True)
    azure_fetch = azure_sub.add_parser(
        "fetch",
        help="download and unpack the public dataset archive (~1.9 GB)",
    )
    azure_fetch.add_argument(
        "--dest",
        required=True,
        help="directory to place the extracted CSV files in",
    )
    azure_fetch.add_argument(
        "--url",
        default=None,
        help="override the archive URL (defaults to the public Azure blob)",
    )
    azure_fetch.add_argument(
        "--force",
        action="store_true",
        help="re-download even when day files already exist in --dest",
    )
    azure_fetch.set_defaults(handler=_command_azure_fetch)
    azure_info = azure_sub.add_parser(
        "info",
        help="report the days, file sizes and cache entries of a local copy",
    )
    azure_info.add_argument(
        "--azure-dir",
        required=True,
        help="directory holding the extracted dataset CSVs",
    )
    azure_info.set_defaults(handler=_command_azure_info)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
