"""Tests for WT/AT/AN sequence extraction."""

import numpy as np
import pytest

from repro.core.sequences import extract_sequences, waiting_times_from_series


class TestPaperExample:
    """The worked example from §IV of the paper."""

    SERIES = (28, 0, 12, 1, 0, 0, 0, 7)

    def test_waiting_times(self):
        assert extract_sequences(self.SERIES).waiting_times == (1, 3)

    def test_active_times(self):
        assert extract_sequences(self.SERIES).active_times == (1, 2, 1)

    def test_active_numbers(self):
        assert extract_sequences(self.SERIES).active_numbers == (28, 13, 7)


class TestEdgeCases:
    def test_empty_series(self):
        summary = extract_sequences([])
        assert summary.waiting_times == ()
        assert summary.active_times == ()
        assert not summary.has_invocations
        assert summary.leading_idle == 0

    def test_all_zero_series(self):
        summary = extract_sequences([0, 0, 0])
        assert not summary.has_invocations
        assert summary.leading_idle == 3

    def test_single_invocation(self):
        summary = extract_sequences([0, 5, 0, 0])
        assert summary.waiting_times == ()
        assert summary.active_times == (1,)
        assert summary.active_numbers == (5,)
        assert summary.leading_idle == 1
        assert summary.trailing_idle == 2

    def test_every_slot_invoked(self):
        summary = extract_sequences([1, 2, 3])
        assert summary.invoked_every_slot
        assert summary.waiting_times == ()
        assert summary.active_times == (3,)

    def test_leading_and_trailing_idle_not_waiting_times(self):
        summary = extract_sequences([0, 0, 1, 0, 1, 0, 0, 0])
        assert summary.waiting_times == (1,)
        assert summary.leading_idle == 2
        assert summary.trailing_idle == 3

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            extract_sequences([1, -1])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError):
            extract_sequences(np.zeros((2, 2)))


class TestStatistics:
    def test_totals(self):
        summary = extract_sequences([2, 0, 3, 0, 0, 1])
        assert summary.total_invocations == 6
        assert summary.invoked_slots == 3
        assert summary.idle_slots == 3
        assert summary.inter_invocation_idle == 3

    def test_waiting_time_modes(self):
        summary = extract_sequences([1, 0, 1, 0, 1, 0, 0, 1])
        # WTs = (1, 1, 2)
        modes = summary.waiting_time_modes(top_n=2)
        assert modes[0] == (1, 2)
        assert modes[1] == (2, 1)

    def test_waiting_time_modes_min_count_filter(self):
        summary = extract_sequences([1, 0, 1, 0, 1, 0, 0, 1])
        modes = summary.waiting_time_modes(top_n=3, min_count=2)
        assert modes == [(1, 2)]

    def test_waiting_time_modes_rejects_bad_top_n(self):
        with pytest.raises(ValueError):
            extract_sequences([1, 0, 1]).waiting_time_modes(0)

    def test_percentile_and_median(self):
        summary = extract_sequences([1, 0, 1, 0, 0, 1, 0, 0, 0, 1])
        # WTs = (1, 2, 3)
        assert summary.waiting_time_median() == 2.0
        assert summary.waiting_time_percentile(100) == 3.0

    def test_cv_of_constant_wts_is_zero(self):
        series = np.zeros(50, dtype=int)
        series[::10] = 1
        assert extract_sequences(series).waiting_time_cv() == pytest.approx(0.0)

    def test_cv_of_varied_wts_positive(self):
        summary = extract_sequences([1, 0, 1, 0, 0, 0, 0, 0, 1])
        assert summary.waiting_time_cv() > 0.3

    def test_shorthand_helper(self):
        assert waiting_times_from_series([1, 0, 0, 1]) == (2,)


class TestLongSeries:
    def test_periodic_series_wt_equals_period_minus_one(self):
        series = np.zeros(600, dtype=int)
        series[::60] = 1
        summary = extract_sequences(series)
        assert set(summary.waiting_times) == {59}
        assert len(summary.waiting_times) == 9

    def test_consistency_invariant(self):
        rng = np.random.default_rng(3)
        series = (rng.random(500) < 0.1).astype(int)
        summary = extract_sequences(series)
        # Active times plus waiting times plus boundary idle cover the window.
        covered = (
            sum(summary.active_times)
            + sum(summary.waiting_times)
            + summary.leading_idle
            + summary.trailing_idle
        )
        assert covered == summary.total_slots
