"""Tests for deterministic function categorization (Table I)."""

import numpy as np

from repro.core import DeterministicClassifier, SpesConfig
from repro.core.categories import FunctionCategory
from repro.core.sequences import extract_sequences
from repro.traces import archetypes


def classify(series, config=None):
    classifier = DeterministicClassifier(config)
    return classifier.classify(extract_sequences(series))


class TestAlwaysWarm:
    def test_invoked_every_slot(self):
        series = np.ones(1000, dtype=int)
        decision = classify(series)
        assert decision.category is FunctionCategory.ALWAYS_WARM

    def test_tiny_idle_budget_accepted(self):
        series = np.ones(10000, dtype=int)
        series[5000] = 0  # 1 idle slot out of 10000 <= 0.1% budget
        decision = classify(series)
        assert decision.category is FunctionCategory.ALWAYS_WARM

    def test_larger_idle_not_always_warm(self):
        series = np.ones(1000, dtype=int)
        series[100:200] = 0
        decision = classify(series)
        assert decision is None or decision.category is not FunctionCategory.ALWAYS_WARM


class TestRegular:
    def test_perfect_periodic(self):
        series = np.zeros(1200, dtype=int)
        series[::60] = 1
        decision = classify(series)
        assert decision.category is FunctionCategory.REGULAR
        assert decision.predictive.discrete == (59,)

    def test_noisy_periodic_recovered_by_slacking(self, rng):
        series = archetypes.generate_periodic(
            rng, 14 * 1440, period=360, jitter_probability=0.0,
            extra_noise_rate=0.0003, phase=0,
        )
        decision = classify(series)
        assert decision is not None
        assert decision.category in (
            FunctionCategory.REGULAR,
            FunctionCategory.APPRO_REGULAR,
        )

    def test_priority_always_warm_over_regular(self):
        series = np.ones(500, dtype=int)
        assert classify(series).category is FunctionCategory.ALWAYS_WARM

    def test_too_few_waiting_times_not_categorized(self):
        series = np.zeros(100, dtype=int)
        series[[0, 50]] = 1
        assert classify(series) is None


class TestApproRegular:
    def test_quasi_periodic_with_two_modes(self, rng):
        series = archetypes.generate_quasi_periodic(rng, 5000, periods=(10, 12))
        decision = classify(series)
        assert decision.category in (
            FunctionCategory.REGULAR,
            FunctionCategory.APPRO_REGULAR,
        )
        assert not decision.predictive.is_empty

    def test_modes_must_cover_ninety_percent(self):
        # Half the waiting times are random, so the top modes cannot cover 90%.
        rng = np.random.default_rng(0)
        waiting_times = [10] * 10 + list(rng.integers(20, 300, size=10))
        series = np.zeros(5000, dtype=int)
        minute = 0
        for gap in waiting_times:
            series[minute] = 1
            minute += gap + 1
        series[minute] = 1
        decision = classify(series[: minute + 1])
        assert decision is None or decision.category is not FunctionCategory.APPRO_REGULAR


class TestDense:
    def test_poisson_like_arrivals_are_dense(self, rng):
        series = archetypes.generate_dense_poisson(rng, 5000, rate_per_minute=0.8, diurnal=False)
        decision = classify(series)
        assert decision.category in (FunctionCategory.DENSE, FunctionCategory.ALWAYS_WARM,
                                     FunctionCategory.REGULAR, FunctionCategory.APPRO_REGULAR)

    def test_dense_predictive_window(self):
        # Gaps of 1-5 minutes spread over five distinct values, so the top-3
        # modes cannot cover 90% and the function is dense rather than
        # appro-regular.
        gaps = [1, 3, 2, 5, 4, 2, 1, 3, 5, 4, 2, 3, 1, 4, 5] * 4
        series = np.zeros(500, dtype=int)
        minute = 0
        for gap in gaps:
            series[minute] = 1
            minute += gap + 1
        decision = classify(series[:minute])
        assert decision.category is FunctionCategory.DENSE
        low, high = decision.predictive.window
        assert 1 <= low <= high <= 5

    def test_sparse_function_not_dense(self):
        series = np.zeros(5000, dtype=int)
        series[::500] = 1
        decision = classify(series)
        assert decision is None or decision.category is not FunctionCategory.DENSE


class TestSuccessive:
    def test_long_bursts_are_successive(self, rng):
        series = archetypes.generate_bursty(
            rng, 20000, burst_count=5, burst_length_range=(20, 40), min_gap=2000
        )
        decision = classify(series)
        assert decision.category is FunctionCategory.SUCCESSIVE

    def test_single_burst_not_enough(self):
        series = np.zeros(100, dtype=int)
        series[10:20] = 1
        decision = classify(series)
        assert decision is None or decision.category is not FunctionCategory.SUCCESSIVE

    def test_short_pulses_not_successive(self, rng):
        series = archetypes.generate_pulsed(
            rng, 20000, pulse_count=8, pulse_length_range=(1, 2), min_gap=1500
        )
        decision = classify(series)
        assert decision is None


class TestGeneral:
    def test_no_invocations_returns_none(self):
        assert classify(np.zeros(100, dtype=int)) is None

    def test_min_invocations_respected(self):
        config = SpesConfig(min_invocations=5)
        series = np.zeros(100, dtype=int)
        series[[1, 10, 20]] = 1
        assert classify(series, config) is None

    def test_detail_is_informative(self):
        series = np.ones(100, dtype=int)
        assert classify(series).detail != ""
