"""Tests for the adaptive strategies (adjusting and online correlation)."""

from repro.core import SpesConfig
from repro.core.adaptive import AdjustingStrategy, OnlineCorrelationTracker
from repro.core.categories import FunctionCategory
from repro.core.predictive import PredictiveValues
from repro.core.state import FunctionState


def regular_state(median=30.0, std=2.0, wts=None):
    return FunctionState(
        function_id="f",
        category=FunctionCategory.REGULAR,
        predictive=PredictiveValues.from_discrete([int(median)]),
        offline_wt_median=median,
        offline_wt_std=std,
        online_waiting_times=list(wts or []),
    )


class TestAdjusting:
    def test_no_update_with_too_few_waiting_times(self):
        strategy = AdjustingStrategy(SpesConfig(adjusting_min_new_wts=5))
        state = regular_state(wts=[60, 61])
        strategy.maybe_update(state)
        assert not state.adjusted

    def test_no_update_when_drift_within_tolerance(self):
        strategy = AdjustingStrategy(SpesConfig(adjusting_min_new_wts=3))
        state = regular_state(median=30, std=5, wts=[31, 32, 29, 30, 33])
        strategy.maybe_update(state)
        assert not state.adjusted
        assert state.predictive.discrete == (30,)

    def test_predictive_value_blended_on_large_drift(self):
        strategy = AdjustingStrategy(SpesConfig(adjusting_min_new_wts=3))
        state = regular_state(median=30, std=2, wts=[60, 61, 60, 59, 60])
        strategy.maybe_update(state)
        assert state.adjusted
        # The blended value (old 30, new 60) should appear among predictions.
        assert 45 in state.predictive.discrete
        assert "f" in strategy.adjusted_functions

    def test_window_predictions_shifted(self):
        strategy = AdjustingStrategy(SpesConfig(adjusting_min_new_wts=3))
        state = FunctionState(
            function_id="f",
            category=FunctionCategory.DENSE,
            predictive=PredictiveValues.from_range(2, 5),
            offline_wt_median=3,
            offline_wt_std=1,
            online_waiting_times=[20, 22, 21, 20, 19],
        )
        strategy.maybe_update(state)
        assert state.adjusted
        low, high = state.predictive.window
        assert low > 2

    def test_unknown_function_promoted_to_newly_possible(self):
        strategy = AdjustingStrategy(SpesConfig(adjusting_min_new_wts=3))
        state = FunctionState(
            function_id="f",
            category=FunctionCategory.UNKNOWN,
            online_waiting_times=[120, 120, 120, 5],
            seen_in_training=False,
        )
        strategy.maybe_update(state)
        assert state.category is FunctionCategory.NEWLY_POSSIBLE
        assert not state.predictive.is_empty
        assert "f" in strategy.promoted_functions

    def test_unknown_without_repeats_not_promoted(self):
        strategy = AdjustingStrategy(SpesConfig(adjusting_min_new_wts=3))
        state = FunctionState(
            function_id="f",
            category=FunctionCategory.UNKNOWN,
            online_waiting_times=[10, 20, 30, 40],
            seen_in_training=False,
        )
        strategy.maybe_update(state)
        assert state.category is FunctionCategory.UNKNOWN


class TestOnlineCorrelation:
    def make_tracker(self, **config_kwargs):
        defaults = dict(
            online_corr_max_candidates=5,
            online_corr_min_observations=2,
            online_corr_drop_margin=0.3,
            online_corr_futility_fires=10,
        )
        defaults.update(config_kwargs)
        return OnlineCorrelationTracker(SpesConfig(**defaults))

    def test_register_and_prewarm(self):
        tracker = self.make_tracker()
        tracker.register_target("target", ["cand1", "cand2"])
        assert tracker.is_tracked("target")
        assert tracker.on_candidate_invoked("cand1", 5) == ["target"]

    def test_unknown_candidate_ignored(self):
        tracker = self.make_tracker()
        tracker.register_target("target", ["cand1"])
        assert tracker.on_candidate_invoked("other", 5) == []

    def test_candidate_limit_respected(self):
        tracker = self.make_tracker(online_corr_max_candidates=2)
        tracker.register_target("target", ["a", "b", "c", "d"])
        assert len(tracker.active_candidates("target")) == 2

    def test_cor_tracking_and_pruning(self):
        tracker = self.make_tracker()
        tracker.register_target("target", ["good", "bad"])
        # "good" fires right before each target invocation, "bad" never does.
        for minute in (10, 30, 50):
            tracker.on_candidate_invoked("good", minute)
            tracker.on_target_invoked("target", minute + 2)
        assert tracker.candidate_cor("target", "good") == 1.0
        assert tracker.candidate_cor("target", "bad") == 0.0
        assert tracker.active_candidates("target") == {"good"}

    def test_futility_pruning_without_target_invocations(self):
        tracker = self.make_tracker(online_corr_futility_fires=3)
        tracker.register_target("target", ["noisy"])
        prewarms = [tracker.on_candidate_invoked("noisy", minute) for minute in range(6)]
        # The first few fires pre-warm the target, later ones are pruned.
        assert prewarms[0] == ["target"]
        assert prewarms[-1] == []

    def test_no_registration_without_candidates(self):
        tracker = self.make_tracker()
        tracker.register_target("target", [])
        assert not tracker.is_tracked("target")
