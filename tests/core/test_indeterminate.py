"""Tests for indeterminate function assignment (pulsed / correlated / possible)."""

import numpy as np
import pytest

from repro.core import SpesConfig
from repro.core.categories import FunctionCategory
from repro.core.indeterminate import (
    CorrelationLink,
    StrategyOutcome,
    choose_indeterminate_category,
    evaluate_correlated_strategy,
    evaluate_possible_strategy,
    evaluate_pulsed_strategy,
    possible_predictive_values,
)
from repro.core.predictive import PredictiveValues


class TestPossiblePredictiveValues:
    def test_repeated_values_become_predictions(self):
        config = SpesConfig()
        values = possible_predictive_values((100, 100, 7, 300, 300), config)
        assert not values.is_empty
        assert set(values.discrete or ()) | set(
            range(values.window[0], values.window[1] + 1) if values.window else set()
        ) >= {100}

    def test_no_repeats_gives_empty(self):
        config = SpesConfig()
        assert possible_predictive_values((1, 2, 3, 4), config).is_empty

    def test_narrow_repeats_become_window(self):
        config = SpesConfig(possible_range_threshold=10)
        values = possible_predictive_values((20, 20, 24, 24), config)
        assert values.window == (20, 24)


class TestPulsedEvaluation:
    def test_one_cold_start_per_pulse(self):
        series = [1, 1, 1, 0, 0, 0, 0, 0, 0, 0, 1, 1, 0]
        outcome = evaluate_pulsed_strategy(series, theta_givenup=3)
        assert outcome.cold_starts == 2

    def test_wasted_memory_bounded_by_givenup(self):
        series = [1] + [0] * 20
        outcome = evaluate_pulsed_strategy(series, theta_givenup=5)
        assert outcome.wasted_memory == 5

    def test_no_invocations(self):
        outcome = evaluate_pulsed_strategy([0, 0, 0], theta_givenup=5)
        assert outcome == StrategyOutcome(0, 0)


class TestPossibleEvaluation:
    def test_accurate_prediction_avoids_cold_starts(self):
        series = np.zeros(100, dtype=int)
        series[::10] = 1
        predictive = PredictiveValues.from_discrete([10])
        outcome = evaluate_possible_strategy(series, predictive, theta_prewarm=2, theta_givenup=1)
        assert outcome.cold_starts <= 1

    def test_wrong_prediction_costs_cold_starts(self):
        series = np.zeros(100, dtype=int)
        series[::10] = 1
        predictive = PredictiveValues.from_discrete([50])
        outcome = evaluate_possible_strategy(series, predictive, theta_prewarm=1, theta_givenup=1)
        assert outcome.cold_starts >= 8

    def test_empty_prediction_behaves_like_pulsed(self):
        series = [1, 0, 0, 1, 0]
        possible = evaluate_possible_strategy(
            series, PredictiveValues.none(), theta_prewarm=2, theta_givenup=1
        )
        pulsed = evaluate_pulsed_strategy(series, theta_givenup=1)
        assert possible.cold_starts == pulsed.cold_starts


class TestCorrelatedEvaluation:
    def test_predictor_prewarming_avoids_cold_starts(self):
        duration = 60
        predictor = np.zeros(duration, dtype=int)
        predictor[::10] = 1
        target = np.zeros(duration, dtype=int)
        target[2::10] = 1
        outcome = evaluate_correlated_strategy(
            target, [(predictor, 2)], prewarm_window=2, theta_givenup=1
        )
        assert outcome.cold_starts == 0

    def test_unrelated_predictor_does_not_help(self):
        duration = 60
        predictor = np.zeros(duration, dtype=int)
        predictor[5] = 1
        target = np.zeros(duration, dtype=int)
        target[30::10] = 1
        outcome = evaluate_correlated_strategy(
            target, [(predictor, 2)], prewarm_window=2, theta_givenup=1
        )
        assert outcome.cold_starts == 3


class TestChoice:
    def test_double_winner_chosen_directly(self):
        outcomes = {
            FunctionCategory.PULSED: StrategyOutcome(5, 10),
            FunctionCategory.POSSIBLE: StrategyOutcome(1, 5),
        }
        assert choose_indeterminate_category(outcomes, alpha=0.5) is FunctionCategory.POSSIBLE

    def test_cold_start_winner_preferred_when_saving_is_large(self):
        outcomes = {
            FunctionCategory.PULSED: StrategyOutcome(cold_starts=50, wasted_memory=10),
            FunctionCategory.POSSIBLE: StrategyOutcome(cold_starts=1, wasted_memory=14),
        }
        assert choose_indeterminate_category(outcomes, alpha=0.5) is FunctionCategory.POSSIBLE

    def test_memory_winner_preferred_when_cs_difference_is_marginal(self):
        outcomes = {
            FunctionCategory.PULSED: StrategyOutcome(cold_starts=100, wasted_memory=10),
            FunctionCategory.CORRELATED: StrategyOutcome(cold_starts=99, wasted_memory=500),
        }
        assert choose_indeterminate_category(outcomes, alpha=0.5) is FunctionCategory.PULSED

    def test_single_candidate(self):
        outcomes = {FunctionCategory.PULSED: StrategyOutcome(1, 1)}
        assert choose_indeterminate_category(outcomes, alpha=0.5) is FunctionCategory.PULSED

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            choose_indeterminate_category({}, alpha=0.5)


class TestCorrelationLink:
    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelationLink("p", lag=-1, cor=0.5)
        with pytest.raises(ValueError):
            CorrelationLink("p", lag=1, cor=1.5)
