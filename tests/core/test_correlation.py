"""Tests for the co-occurrence-rate metrics."""

import numpy as np
import pytest

from repro.core.correlation import (
    best_lagged_cor,
    co_occurrence_rate,
    forward_trigger_rate,
    lagged_co_occurrence_rate,
    mean_pairwise_cor,
)


class TestCor:
    def test_identical_series_full_overlap(self):
        series = [1, 0, 1, 0, 1]
        assert co_occurrence_rate(series, series) == 1.0

    def test_disjoint_series_zero(self):
        assert co_occurrence_rate([1, 0, 1, 0], [0, 1, 0, 1]) == 0.0

    def test_partial_overlap(self):
        target = [1, 1, 0, 1, 0]
        candidate = [1, 0, 0, 1, 1]
        assert co_occurrence_rate(target, candidate) == pytest.approx(2 / 3)

    def test_no_target_invocations(self):
        assert co_occurrence_rate([0, 0, 0], [1, 1, 1]) == 0.0

    def test_asymmetric(self):
        target = [1, 0, 0, 0]
        candidate = [1, 1, 1, 1]
        assert co_occurrence_rate(target, candidate) == 1.0
        assert co_occurrence_rate(candidate, target) == 0.25

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            co_occurrence_rate([1, 0], [1, 0, 1])


class TestLaggedCor:
    def test_lag_zero_equals_plain_cor(self):
        target = [1, 0, 1, 0, 1]
        candidate = [1, 1, 0, 0, 1]
        assert lagged_co_occurrence_rate(target, candidate, 0) == co_occurrence_rate(
            target, candidate
        )

    def test_perfect_lagged_chain(self):
        candidate = [1, 0, 0, 1, 0, 0, 1, 0, 0]
        target = [0, 0, 1, 0, 0, 1, 0, 0, 1]
        assert lagged_co_occurrence_rate(target, candidate, 2) == 1.0
        assert lagged_co_occurrence_rate(target, candidate, 1) == 0.0

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            lagged_co_occurrence_rate([1], [1], -1)

    def test_best_lagged_cor_finds_lag(self):
        candidate = np.zeros(60, dtype=int)
        candidate[::10] = 1
        target = np.zeros(60, dtype=int)
        target[3::10] = 1
        cor, lag = best_lagged_cor(target, candidate, max_lag=5)
        assert cor == 1.0
        assert lag == 3

    def test_best_lagged_cor_prefers_smallest_lag_on_tie(self):
        target = [1, 1, 1, 1]
        candidate = [1, 1, 1, 1]
        cor, lag = best_lagged_cor(target, candidate, max_lag=2)
        assert cor == 1.0
        assert lag == 0


class TestForwardTriggerRate:
    def test_perfect_chain(self):
        predictor = [1, 0, 0, 1, 0, 0]
        target = [0, 0, 1, 0, 0, 1]
        assert forward_trigger_rate(predictor, target, max_lag=3) == 1.0

    def test_frequent_predictor_low_precision(self):
        predictor = [1] * 100
        target = [0] * 99 + [1]
        assert forward_trigger_rate(predictor, target, max_lag=2) < 0.05

    def test_no_predictor_invocations(self):
        assert forward_trigger_rate([0, 0], [1, 1], max_lag=1) == 0.0


class TestMeanPairwise:
    def test_empty_inputs(self):
        assert mean_pairwise_cor([], []) == 0.0

    def test_average_over_pairs(self):
        targets = [[1, 0, 1, 0]]
        candidates = [[1, 0, 1, 0], [0, 1, 0, 1]]
        assert mean_pairwise_cor(targets, candidates) == pytest.approx(0.5)
