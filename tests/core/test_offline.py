"""Tests for the offline categorization pipeline."""

import numpy as np
import pytest

from repro.core import OfflineCategorizer, SpesConfig
from repro.core.categories import FunctionCategory
from repro.traces import FunctionRecord, Trace, TriggerType
from repro.traces.schema import MINUTES_PER_DAY, TraceMetadata


def build_trace(counts, records, name="train"):
    duration = len(next(iter(counts.values())))
    return Trace(records, counts, TraceMetadata(name=name, duration_minutes=duration))


def periodic(duration, period, phase=0):
    series = np.zeros(duration, dtype=np.int64)
    series[phase::period] = 1
    return series


class TestDeterministicAssignment:
    def test_mixed_population(self):
        duration = 4 * MINUTES_PER_DAY
        always = np.ones(duration, dtype=np.int64)
        timer = periodic(duration, 60)
        never = np.zeros(duration, dtype=np.int64)
        records = [
            FunctionRecord("always", "a1", "o1", TriggerType.HTTP),
            FunctionRecord("timer", "a2", "o2", TriggerType.TIMER),
            FunctionRecord("never", "a3", "o3", TriggerType.HTTP),
        ]
        trace = build_trace({"always": always, "timer": timer, "never": never}, records)
        result = OfflineCategorizer().categorize(trace)
        assert result.category_of("always") is FunctionCategory.ALWAYS_WARM
        assert result.category_of("timer") is FunctionCategory.REGULAR
        assert result.category_of("never") is FunctionCategory.UNKNOWN

    def test_profiles_carry_metadata(self):
        duration = 4 * MINUTES_PER_DAY
        records = [FunctionRecord("timer", "app-x", "owner-y", TriggerType.TIMER)]
        trace = build_trace({"timer": periodic(duration, 30)}, records)
        result = OfflineCategorizer().categorize(trace)
        profile = result.profiles["timer"]
        assert profile.app_id == "app-x"
        assert profile.trigger is TriggerType.TIMER
        assert profile.offline_wt_median == pytest.approx(29.0)

    def test_category_counts(self):
        duration = 2 * MINUTES_PER_DAY
        records = [
            FunctionRecord("a", "a", "o"),
            FunctionRecord("b", "b", "o"),
        ]
        trace = build_trace(
            {"a": np.ones(duration, dtype=np.int64), "b": np.zeros(duration, dtype=np.int64)},
            records,
        )
        counts = OfflineCategorizer().categorize(trace).category_counts()
        assert counts[FunctionCategory.ALWAYS_WARM] == 1
        assert counts[FunctionCategory.UNKNOWN] == 1


class TestForgetting:
    def _drifting_trace(self):
        duration = 6 * MINUTES_PER_DAY
        series = np.zeros(duration, dtype=np.int64)
        # First three days: irregular sparse noise; last three: clean 30-min timer.
        rng = np.random.default_rng(5)
        noise_minutes = rng.choice(3 * MINUTES_PER_DAY, size=40, replace=False)
        series[noise_minutes] = 1
        series[3 * MINUTES_PER_DAY :: 30] = 1
        records = [FunctionRecord("drift", "a", "o", TriggerType.TIMER)]
        return build_trace({"drift": series}, records)

    def test_forgetting_recovers_recent_pattern(self):
        trace = self._drifting_trace()
        result = OfflineCategorizer(SpesConfig(enable_forgetting=True)).categorize(trace)
        assert result.category_of("drift") in (
            FunctionCategory.REGULAR,
            FunctionCategory.APPRO_REGULAR,
        )

    def test_without_forgetting_function_stays_indeterminate(self):
        trace = self._drifting_trace()
        result = OfflineCategorizer(SpesConfig(enable_forgetting=False)).categorize(trace)
        assert result.category_of("drift") not in (
            FunctionCategory.REGULAR,
            FunctionCategory.APPRO_REGULAR,
        )


class TestCorrelatedAssignment:
    def _chained_trace(self):
        duration = 4 * MINUTES_PER_DAY
        rng = np.random.default_rng(7)
        # Parent: irregular but frequent bursts; child follows 2 minutes later.
        parent = np.zeros(duration, dtype=np.int64)
        minutes = np.sort(rng.choice(duration - 10, size=300, replace=False))
        parent[minutes] = 1
        child = np.zeros(duration, dtype=np.int64)
        child[minutes + 2] = 1
        records = [
            FunctionRecord("parent", "app", "owner", TriggerType.ORCHESTRATION),
            FunctionRecord("child", "app", "owner", TriggerType.QUEUE),
        ]
        return build_trace({"parent": parent, "child": child}, records)

    def test_child_linked_to_parent(self):
        trace = self._chained_trace()
        result = OfflineCategorizer().categorize(trace)
        child_profile = result.profiles["child"]
        if child_profile.category is FunctionCategory.CORRELATED:
            assert child_profile.links
            assert child_profile.links[0].predictor_id == "parent"
            assert result.predictor_index()["parent"][0][0] == "child"

    def test_correlation_disabled_removes_links(self):
        trace = self._chained_trace()
        result = OfflineCategorizer(SpesConfig(enable_correlation=False)).categorize(trace)
        assert result.profiles["child"].links == ()
        assert result.category_of("child") is not FunctionCategory.CORRELATED


class TestIndeterminateAssignment:
    def test_rare_function_with_repeated_gap_becomes_possible_or_regular(self):
        duration = 6 * MINUTES_PER_DAY
        series = np.zeros(duration, dtype=np.int64)
        series[::1440] = 1  # one invocation per day
        records = [FunctionRecord("daily", "a", "o", TriggerType.HTTP)]
        trace = build_trace({"daily": series}, records)
        result = OfflineCategorizer().categorize(trace)
        assert result.category_of("daily") in (
            FunctionCategory.REGULAR,
            FunctionCategory.POSSIBLE,
        )

    def test_truly_random_rare_function_assigned_supplementary_type(self):
        duration = 4 * MINUTES_PER_DAY
        rng = np.random.default_rng(11)
        series = np.zeros(duration, dtype=np.int64)
        series[rng.choice(duration, size=6, replace=False)] = 1
        records = [FunctionRecord("rare", "a", "o", TriggerType.HTTP)]
        trace = build_trace({"rare": series}, records)
        result = OfflineCategorizer().categorize(trace)
        assert result.category_of("rare") in (
            FunctionCategory.PULSED,
            FunctionCategory.POSSIBLE,
            FunctionCategory.CORRELATED,
        )

    def test_functions_in_helper(self):
        duration = 2 * MINUTES_PER_DAY
        records = [FunctionRecord("a", "a", "o")]
        trace = build_trace({"a": np.ones(duration, dtype=np.int64)}, records)
        result = OfflineCategorizer().categorize(trace)
        assert result.functions_in(FunctionCategory.ALWAYS_WARM) == ["a"]
