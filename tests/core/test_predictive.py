"""Tests for predictive values."""

import pytest

from repro.core.predictive import PredictiveValues


class TestConstruction:
    def test_none_is_empty(self):
        assert PredictiveValues.none().is_empty

    def test_from_discrete_deduplicates_and_sorts(self):
        values = PredictiveValues.from_discrete([30, 10, 30])
        assert values.discrete == (10, 30)

    def test_from_range(self):
        values = PredictiveValues.from_range(2, 5)
        assert values.window == (2, 5)

    def test_negative_discrete_rejected(self):
        with pytest.raises(ValueError):
            PredictiveValues(discrete=(-1,))

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            PredictiveValues(window=(5, 2))

    def test_spread_rule_discrete_when_wide(self):
        values = PredictiveValues.from_values_with_spread_rule([10, 500], range_threshold=10)
        assert values.discrete == (10, 500)
        assert values.window is None

    def test_spread_rule_range_when_narrow(self):
        values = PredictiveValues.from_values_with_spread_rule([10, 14], range_threshold=10)
        assert values.window == (10, 14)

    def test_spread_rule_empty(self):
        assert PredictiveValues.from_values_with_spread_rule([], 10).is_empty


class TestPrediction:
    def test_predicted_times_discrete(self):
        values = PredictiveValues.from_discrete([10, 20])
        assert values.predicted_times(100) == [(110, 110), (120, 120)]

    def test_predicted_times_window(self):
        values = PredictiveValues.from_range(5, 8)
        assert values.predicted_times(100) == [(105, 108)]

    def test_matches_inside_prewarm_window(self):
        values = PredictiveValues.from_discrete([30])
        assert values.matches(128, last_invocation=100, theta_prewarm=2)
        assert values.matches(132, last_invocation=100, theta_prewarm=2)
        assert not values.matches(127, last_invocation=100, theta_prewarm=2)
        assert not values.matches(133, last_invocation=100, theta_prewarm=2)

    def test_matches_window_prediction(self):
        values = PredictiveValues.from_range(10, 20)
        assert values.matches(109, last_invocation=100, theta_prewarm=1)
        assert values.matches(121, last_invocation=100, theta_prewarm=1)
        assert not values.matches(122, last_invocation=100, theta_prewarm=1)

    def test_empty_never_matches(self):
        assert not PredictiveValues.none().matches(5, 0, 10)

    def test_prewarm_trigger_minutes(self):
        values = PredictiveValues.from_discrete([30, 60])
        triggers = values.prewarm_trigger_minutes(100, theta_prewarm=2)
        assert triggers == [128, 158]

    def test_prewarm_trigger_clamped_to_last_invocation(self):
        values = PredictiveValues.from_discrete([1])
        assert values.prewarm_trigger_minutes(100, theta_prewarm=5) == [100]

    def test_horizon(self):
        values = PredictiveValues(discrete=(10,), window=(20, 40))
        assert values.horizon(100, theta_prewarm=3) == 143
        assert PredictiveValues.none().horizon(100, 3) is None
