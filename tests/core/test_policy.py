"""Tests for the SPES online provisioning policy (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import SpesConfig, SpesPolicy
from repro.core.categories import FunctionCategory
from repro.simulation import simulate_policy
from repro.traces import FunctionRecord, Trace, TriggerType
from repro.traces.schema import MINUTES_PER_DAY, TraceMetadata


def build_trace(counts, records, name="t"):
    duration = len(next(iter(counts.values())))
    return Trace(records, counts, TraceMetadata(name=name, duration_minutes=duration))


def periodic(duration, period, phase=0):
    series = np.zeros(duration, dtype=np.int64)
    series[phase::period] = 1
    return series


class TestRegularProvisioning:
    def test_periodic_function_prewarmed_with_little_waste(self):
        duration_train = 4 * MINUTES_PER_DAY
        duration_sim = MINUTES_PER_DAY
        records = [FunctionRecord("timer", "a", "o", TriggerType.TIMER)]
        training = build_trace({"timer": periodic(duration_train, 60)}, records, "train")
        simulation = build_trace({"timer": periodic(duration_sim, 60)}, records, "sim")
        result = simulate_policy(SpesPolicy(), simulation, training, warmup_minutes=120)
        stats = result.per_function["timer"]
        assert stats.cold_start_rate < 0.1
        # Pre-warming costs at most ~2 * theta_prewarm + 1 idle minutes per cycle.
        assert stats.wasted_memory_time <= stats.invocations * 6

    def test_always_warm_function_never_evicted(self):
        duration = MINUTES_PER_DAY
        records = [FunctionRecord("hot", "a", "o", TriggerType.HTTP)]
        training = build_trace({"hot": np.ones(duration, dtype=np.int64)}, records, "train")
        simulation = build_trace({"hot": np.ones(duration, dtype=np.int64)}, records, "sim")
        result = simulate_policy(SpesPolicy(), simulation, training, warmup_minutes=60)
        assert result.per_function["hot"].cold_starts == 0


class TestBurstyProvisioning:
    def test_successive_function_cold_only_at_burst_heads(self):
        duration = 2 * MINUTES_PER_DAY
        series = np.zeros(duration, dtype=np.int64)
        for start in range(100, duration - 40, 700):
            series[start : start + 20] = 1
        records = [FunctionRecord("bursty", "a", "o", TriggerType.HTTP)]
        training = build_trace({"bursty": series}, records, "train")
        simulation = build_trace({"bursty": series}, records, "sim")
        result = simulate_policy(SpesPolicy(), simulation, training, warmup_minutes=0)
        stats = result.per_function["bursty"]
        bursts = max(1, round(duration / 700))
        # At most one cold start per burst (plus slack for the boundary).
        assert stats.cold_starts <= bursts + 1
        assert stats.cold_start_rate < 0.15


class TestCorrelatedProvisioning:
    def _chained_traces(self):
        duration = 4 * MINUTES_PER_DAY
        rng = np.random.default_rng(3)
        minutes = np.sort(rng.choice(duration - 10, size=400, replace=False))
        parent = np.zeros(duration, dtype=np.int64)
        parent[minutes] = 1
        child = np.zeros(duration, dtype=np.int64)
        child[minutes + 3] = 1
        records = [
            FunctionRecord("parent", "app", "owner", TriggerType.ORCHESTRATION),
            FunctionRecord("child", "app", "owner", TriggerType.QUEUE),
        ]
        training = build_trace({"parent": parent, "child": child}, records, "train")
        simulation = build_trace({"parent": parent, "child": child}, records, "sim")
        return training, simulation

    def test_correlated_child_rarely_cold(self):
        training, simulation = self._chained_traces()
        policy = SpesPolicy()
        result = simulate_policy(policy, simulation, training, warmup_minutes=0)
        child_stats = result.per_function["child"]
        assert child_stats.cold_start_rate < 0.3

    def test_disabling_correlation_hurts_child(self):
        training, simulation = self._chained_traces()
        with_corr = simulate_policy(SpesPolicy(), simulation, training, warmup_minutes=0)
        without_corr = simulate_policy(
            SpesPolicy(SpesConfig(enable_correlation=False, enable_online_correlation=False)),
            simulation,
            training,
            warmup_minutes=0,
        )
        assert (
            with_corr.per_function["child"].cold_starts
            <= without_corr.per_function["child"].cold_starts
        )


class TestUnseenFunctions:
    def test_unseen_function_tracked_online(self):
        duration = 2 * MINUTES_PER_DAY
        records = [
            FunctionRecord("known", "app", "o", TriggerType.HTTP),
            FunctionRecord("unseen", "app", "o", TriggerType.HTTP),
        ]
        training = build_trace(
            {"known": periodic(duration, 10), "unseen": np.zeros(duration, dtype=np.int64)},
            records,
            "train",
        )
        sim_unseen = periodic(MINUTES_PER_DAY, 10, phase=3)
        simulation = build_trace(
            {"known": periodic(MINUTES_PER_DAY, 10), "unseen": sim_unseen}, records, "sim"
        )
        policy = SpesPolicy()
        result = simulate_policy(policy, simulation, training, warmup_minutes=0)
        assert result.per_function["unseen"].invocations > 0
        # The unseen function should not be always cold thanks to online
        # correlation / promotion.
        assert result.per_function["unseen"].cold_start_rate < 1.0


class TestPolicyIntrospection:
    def test_category_assignments_exposed(self, small_split):
        policy = SpesPolicy()
        simulate_policy(policy, small_split.simulation, small_split.training, warmup_minutes=0)
        assignments = policy.category_assignments()
        assert assignments
        assert all(isinstance(value, FunctionCategory) for value in assignments.values())

    def test_states_and_resident_set_available(self, small_split):
        policy = SpesPolicy()
        simulate_policy(policy, small_split.simulation, small_split.training, warmup_minutes=0)
        assert policy.states
        assert isinstance(policy.resident_functions, set)

    def test_policy_without_training_still_works(self):
        duration = 600
        records = [FunctionRecord("f", "a", "o")]
        simulation = build_trace({"f": periodic(duration, 10)}, records, "sim")
        result = simulate_policy(SpesPolicy(), simulation, None, warmup_minutes=0)
        assert result.per_function["f"].invocations == 60

    def test_invocation_conservation(self, small_split):
        policy = SpesPolicy()
        result = simulate_policy(
            policy, small_split.simulation, small_split.training, warmup_minutes=0
        )
        expected = sum(
            1
            for fid in small_split.simulation.function_ids
            for count in small_split.simulation.series(fid)
            if count > 0
        )
        assert result.total_invocations == expected

    def test_cold_starts_never_exceed_invocations(self, small_split):
        result = simulate_policy(
            SpesPolicy(), small_split.simulation, small_split.training, warmup_minutes=0
        )
        for stats in result.per_function.values():
            assert 0 <= stats.cold_starts <= stats.invocations


class TestAblationFlags:
    @pytest.mark.parametrize(
        "flag",
        ["enable_correlation", "enable_online_correlation", "enable_forgetting", "enable_adjusting"],
    )
    def test_each_flag_can_be_disabled(self, small_split, flag):
        config = SpesConfig(**{flag: False})
        result = simulate_policy(
            SpesPolicy(config), small_split.simulation, small_split.training, warmup_minutes=0
        )
        assert 0.0 <= result.overall_cold_start_rate <= 1.0
