"""Tests for the SPES configuration object."""

import pytest

from repro.core import SpesConfig
from repro.core.categories import FunctionCategory


class TestDefaults:
    def test_paper_defaults(self):
        config = SpesConfig()
        assert config.theta_prewarm == 2
        assert config.theta_givenup(FunctionCategory.DENSE) == 5
        assert config.theta_givenup(FunctionCategory.PULSED) == 5
        assert config.theta_givenup(FunctionCategory.REGULAR) == 1
        assert config.tcor_threshold == 0.5
        assert config.tcor_max_lag == 10

    def test_all_ablation_flags_enabled_by_default(self):
        config = SpesConfig()
        assert config.enable_correlation
        assert config.enable_online_correlation
        assert config.enable_forgetting
        assert config.enable_adjusting


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"always_warm_idle_fraction": 0.0},
            {"regular_percentile_spread": -1},
            {"appro_regular_n_modes": 0},
            {"appro_regular_mode_coverage": 1.5},
            {"dense_p90_threshold": 0},
            {"successive_gamma1": 5, "successive_gamma2": 3},
            {"min_waiting_times": 0},
            {"tcor_threshold": 0.0},
            {"tcor_max_lag": -1},
            {"correlation_precision_threshold": 2.0},
            {"alpha": 1.0},
            {"possible_min_mode_count": 1},
            {"validation_days": 0},
            {"theta_prewarm": -1},
            {"theta_givenup_default": 0},
            {"correlated_prewarm_window": 0},
            {"adjusting_min_new_wts": 0},
            {"online_corr_max_candidates": 0},
            {"online_corr_drop_margin": 1.0},
            {"online_corr_futility_fires": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SpesConfig(**kwargs)

    def test_invalid_givenup_override_rejected(self):
        with pytest.raises(ValueError):
            SpesConfig(theta_givenup_overrides={FunctionCategory.DENSE: 0})


class TestHelpers:
    def test_replace_returns_new_instance(self):
        config = SpesConfig()
        other = config.replace(theta_prewarm=5)
        assert other.theta_prewarm == 5
        assert config.theta_prewarm == 2

    def test_scaled_givenup(self):
        config = SpesConfig()
        scaled = config.scaled_givenup(3)
        assert scaled.theta_givenup_default == 3
        assert scaled.theta_givenup(FunctionCategory.DENSE) == 15
        assert config.theta_givenup_default == 1

    def test_scaled_givenup_rejects_zero(self):
        with pytest.raises(ValueError):
            SpesConfig().scaled_givenup(0)


class TestCategories:
    def test_deterministic_priority_order(self):
        order = FunctionCategory.deterministic()
        assert order[0] is FunctionCategory.ALWAYS_WARM
        assert order[-1] is FunctionCategory.SUCCESSIVE

    def test_indeterminate_members(self):
        assert FunctionCategory.CORRELATED in FunctionCategory.indeterminate()

    def test_uses_prediction_flags(self):
        assert FunctionCategory.REGULAR.uses_prediction
        assert not FunctionCategory.SUCCESSIVE.uses_prediction
        assert not FunctionCategory.UNKNOWN.uses_prediction

    def test_is_deterministic(self):
        assert FunctionCategory.DENSE.is_deterministic
        assert not FunctionCategory.PULSED.is_deterministic
