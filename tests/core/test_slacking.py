"""Tests for the slacking rules."""

from repro.core.slacking import (
    apply_slacking_pipeline,
    merge_small_waiting_times,
    trim_boundary_waiting_times,
    waiting_time_mode,
)


class TestTrim:
    def test_trims_first_and_last(self):
        assert trim_boundary_waiting_times((5, 10, 10, 10, 7)) == (10, 10, 10)

    def test_short_sequences_unchanged(self):
        assert trim_boundary_waiting_times((5, 7)) == (5, 7)
        assert trim_boundary_waiting_times(()) == ()


class TestMode:
    def test_simple_mode(self):
        assert waiting_time_mode((3, 3, 5)) == 3

    def test_tie_breaks_toward_largest(self):
        assert waiting_time_mode((1439, 1438, 1, 1439, 1438, 1)) == 1439

    def test_empty_sequence(self):
        assert waiting_time_mode(()) is None


class TestMerge:
    def test_paper_example(self):
        merged = merge_small_waiting_times((1439, 1438, 1, 1439, 1438, 1))
        assert merged == (1439, 1439, 1439, 1439)

    def test_even_split_reassembled(self):
        # A spurious invocation splits a 360-minute gap into 100 + 259.
        merged = merge_small_waiting_times((359, 100, 259, 359, 359))
        assert merged == (359, 359, 359, 359)

    def test_unmergeable_fragments_left_alone(self):
        merged = merge_small_waiting_times((100, 7, 3, 100, 100, 100))
        assert 7 in merged or 10 in merged  # fragments kept (possibly joined)
        assert merged.count(100) >= 3

    def test_no_merge_for_small_mode(self):
        values = (1, 2, 1, 2, 1)
        assert merge_small_waiting_times(values) == values

    def test_short_sequence_unchanged(self):
        assert merge_small_waiting_times((5,)) == (5,)

    def test_irregular_sequence_not_forced_regular(self):
        values = (3, 50, 7, 200, 12, 90)
        merged = merge_small_waiting_times(values)
        # Nothing resembles a dominant mode, so little should change.
        assert len(merged) >= 4


class TestPipeline:
    def test_pipeline_variants_ordered(self):
        variants = apply_slacking_pipeline((5, 10, 10, 1, 9, 10, 7))
        assert variants[0] == (5, 10, 10, 1, 9, 10, 7)
        assert variants[1] == (10, 10, 1, 9, 10)
        assert len(variants) >= 2

    def test_pipeline_deduplicates(self):
        variants = apply_slacking_pipeline((10, 10))
        assert len(variants) == 1

    def test_pipeline_recovers_noisy_periodic_sequence(self):
        noisy = (60, 60, 20, 40, 60, 60, 59, 60)
        final = apply_slacking_pipeline(noisy)[-1]
        assert max(final) - min(final) <= 1
