"""Tests for the per-function online state."""

from repro.core.categories import FunctionCategory
from repro.core.predictive import PredictiveValues
from repro.core.state import FunctionState


def make_state(**kwargs):
    defaults = dict(function_id="f", category=FunctionCategory.REGULAR)
    defaults.update(kwargs)
    return FunctionState(**defaults)


class TestRecordInvocation:
    def test_first_invocation_produces_no_waiting_time(self):
        state = make_state()
        assert state.record_invocation(10, cold=True) is None
        assert state.invocation_count == 1
        assert state.cold_start_count == 1

    def test_gap_produces_waiting_time(self):
        state = make_state()
        state.record_invocation(10, cold=True)
        wt = state.record_invocation(15, cold=False)
        assert wt == 4
        assert state.online_waiting_times == [4]

    def test_consecutive_invocations_produce_no_waiting_time(self):
        state = make_state()
        state.record_invocation(10, cold=True)
        assert state.record_invocation(11, cold=False) is None
        assert state.online_waiting_times == []

    def test_cold_start_rate(self):
        state = make_state()
        state.record_invocation(0, cold=True)
        state.record_invocation(5, cold=False)
        assert state.cold_start_rate == 0.5


class TestIdleAndPreload:
    def test_idle_minutes_without_invocation(self):
        state = make_state()
        assert state.idle_minutes(4) == 5

    def test_idle_minutes_after_invocation(self):
        state = make_state()
        state.record_invocation(10, cold=True)
        assert state.idle_minutes(10) == 0
        assert state.idle_minutes(13) == 3

    def test_preload_due_requires_history_and_predictions(self):
        state = make_state(predictive=PredictiveValues.from_discrete([10]))
        assert not state.preload_due(5)
        state.record_invocation(0, cold=True)
        assert state.preload_due(9)
        assert not state.preload_due(20)

    def test_preload_due_empty_prediction(self):
        state = make_state()
        state.record_invocation(0, cold=True)
        assert not state.preload_due(1)
